//! End-to-end: every catalog query parses, analyzes, and executes against
//! its scenario store, and the queries that pin down attack artifacts
//! return them.

use aiql::sim::{
    build_store, case_study_queries, demo_queries, scenario_case_study, scenario_demo, Scale,
};
use aiql::{Engine, EngineConfig, StoreConfig};

fn demo_store() -> aiql::EventStore {
    build_store(&scenario_demo(Scale::test()), StoreConfig::default())
}

fn case_store() -> aiql::EventStore {
    build_store(&scenario_case_study(Scale::test()), StoreConfig::default())
}

#[test]
fn all_demo_queries_execute_and_find_evidence() {
    let store = demo_store();
    let engine = Engine::new(EngineConfig::default());
    for cq in demo_queries() {
        let table = engine
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", cq.id));
        assert!(
            !table.rows.is_empty(),
            "query {} returned no evidence:\n{}",
            cq.id,
            cq.aiql
        );
        assert!(!table.truncated, "query {} truncated", cq.id);
    }
}

#[test]
fn all_case_study_queries_execute_and_find_evidence() {
    let store = case_store();
    let engine = Engine::new(EngineConfig::default());
    for cq in case_study_queries() {
        let table = engine
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", cq.id));
        assert!(
            !table.rows.is_empty(),
            "query {} returned no evidence:\n{}",
            cq.id,
            cq.aiql
        );
    }
}

#[test]
fn query1_returns_exactly_the_exfiltration_chain() {
    let store = demo_store();
    let engine = Engine::new(EngineConfig::default());
    let a5_5 = demo_queries().into_iter().find(|q| q.id == "a5-5").unwrap();
    let table = engine.execute_text(&store, &a5_5.aiql).unwrap();
    assert_eq!(table.rows.len(), 1, "expected exactly one distinct chain");
    let rendered = table.render(store.interner());
    assert!(rendered.contains("osql.exe"));
    assert!(rendered.contains("backup1.dmp"));
    assert!(rendered.contains("sbblv.exe"));
    assert!(rendered.contains("172.16.99.129"));
}

#[test]
fn anomaly_query_detects_only_the_implant() {
    let store = demo_store();
    let engine = Engine::new(EngineConfig::default());
    let a5_1 = demo_queries().into_iter().find(|q| q.id == "a5-1").unwrap();
    let table = engine.execute_text(&store, &a5_1.aiql).unwrap();
    assert!(!table.rows.is_empty());
    let rendered = table.render(store.interner());
    assert!(rendered.contains("sbblv.exe"), "{rendered}");
    // Background processes never move megabytes per minute to one IP.
    for row in &table.rows {
        let p = row[0].render(store.interner());
        assert!(p.contains("sbblv"), "false positive: {p}");
    }
}

#[test]
fn cross_host_dependency_tracking_reaches_the_client() {
    let store = demo_store();
    let engine = Engine::new(EngineConfig::default());
    let a2_3 = demo_queries().into_iter().find(|q| q.id == "a2-3").unwrap();
    let table = engine.execute_text(&store, &a2_3.aiql).unwrap();
    let rendered = table.render(store.interner());
    // The forward track crosses from the web server (agent 1) to the
    // client (agent 0) and lands on the dropped implant copy.
    assert!(rendered.contains("sbblv.exe"), "{rendered}");
}

#[test]
fn queries_against_empty_store_return_empty_not_error() {
    let store = aiql::EventStore::default();
    let engine = Engine::new(EngineConfig::default());
    for cq in demo_queries() {
        let table = engine
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("query {} failed on empty store: {e}", cq.id));
        assert!(table.rows.is_empty());
    }
}

#[test]
fn facade_runs_the_catalog_too() {
    let mut system = aiql::AiqlSystem::new();
    system.ingest(&scenario_demo(Scale::test()).raws);
    let table = system
        .query(r#"(at "03/19/2018") agentid = 2 proc p write file f["%backup1.dmp"] as e return p"#)
        .unwrap();
    assert_eq!(table.rows.len(), 1);
    assert!(system.render(&table).contains("sqlservr.exe"));
}
