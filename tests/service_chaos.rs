//! Chaos suite for the multi-tenant query service (PR 7): 115 concurrent
//! sessions run a Zipf-skewed mix of the Figure-4 investigation catalog
//! while ~13% of the sessions misbehave — injected scan panics and
//! mid-query cancellations — and storage maintenance churns in the
//! background. The contract under test:
//!
//! * **Fault isolation**: a faulted session's failures answer only its own
//!   requests — `WorkerPanic` (or the `Internal` backstop) never reaches a
//!   healthy session, and the dispatchers keep serving.
//! * **Byte-identical results**: every healthy response equals the serial
//!   single-threaded reference run, column for column, row for row.
//! * **Explicit shedding**: a full session queue sheds with
//!   `Overloaded { retry_after_ms }`, and the client backoff helper gets
//!   the request through once capacity frees up.
//! * **Clean drain**: shutdown under load resolves every outstanding
//!   ticket — nothing hangs, nothing panics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use aiql::engine::service::retry_overloaded_with;
use aiql::engine::{
    BackoffPolicy, CancelToken, QueryService, ServiceConfig, ServiceError, SessionId,
};
use aiql::sim::{build_store, demo_queries, scenario_demo, zipf::Zipf, Scale};
use aiql::storage::SharedStore;
use aiql::{Engine, EngineConfig, EngineError, ResultTable, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario_shared() -> SharedStore {
    SharedStore::new(build_store(
        &scenario_demo(Scale::test()),
        StoreConfig::default(),
    ))
}

/// The fully serial engine: the reference every concurrent healthy
/// response must match byte for byte.
fn serial_config() -> EngineConfig {
    EngineConfig {
        parallelism: 1,
        parallel_join: false,
        join_partitions: 0,
        ..EngineConfig::default()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Healthy,
    Panic,
    Cancel,
}

#[test]
fn chaos_fault_isolation_and_byte_identical_results() {
    const HEALTHY: usize = 100;
    const PANIC: usize = 10;
    const CANCEL: usize = 5;
    const PER_SESSION: usize = 3;

    let shared = scenario_shared();
    let catalog = demo_queries();
    let reference: Vec<ResultTable> = {
        let engine = Engine::new(serial_config());
        catalog
            .iter()
            .map(|q| {
                shared
                    .read(|s| engine.execute_text(s, &q.aiql))
                    .unwrap_or_else(|e| panic!("reference run failed on {}: {e}", q.id))
            })
            .collect()
    };

    let service = Arc::new(QueryService::new(shared.clone(), ServiceConfig::default()));

    // Zipf-skewed query assignment (the catalog's head queries dominate,
    // like a real investigation), drawn up-front from a fixed seed so the
    // workload is reproducible run to run.
    let zipf = Zipf::new(catalog.len(), 1.2);
    let mut rng = StdRng::seed_from_u64(0xC4A0_5EED);
    let mut draw = |n: usize| -> Vec<Vec<usize>> {
        (0..n)
            .map(|_| (0..PER_SESSION).map(|_| zipf.sample(&mut rng)).collect())
            .collect()
    };
    let mut plans: Vec<(Kind, SessionId, Vec<usize>)> = Vec::new();
    for qs in draw(HEALTHY) {
        plans.push((Kind::Healthy, service.create_session().unwrap(), qs));
    }
    for qs in draw(PANIC) {
        // Every pooled scan in this session's engine panics; the panic
        // must stay inside the session's own requests.
        let sid = service
            .create_session_with(
                1,
                EngineConfig {
                    inject_scan_panic: true,
                    // The default parallelism degrades to 1 on single-core
                    // hosts, which would disable pooled scans (and with
                    // them the injection); force fan-out so every scan in
                    // this session actually panics.
                    parallelism: 4,
                    parallel_threshold: 0,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
        plans.push((Kind::Panic, sid, qs));
    }
    for qs in draw(CANCEL) {
        plans.push((Kind::Cancel, service.create_session().unwrap(), qs));
    }
    assert!(plans.len() >= 100, "chaos needs ≥100 concurrent sessions");
    assert!(
        (PANIC + CANCEL) * 10 >= plans.len(),
        "chaos needs ≥10% faulted sessions"
    );

    // Maintenance churn: cancellable compaction passes (one live, one
    // pre-cancelled) race the query load for the store locks throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let service = service.clone();
        let shared = shared.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let dead = CancelToken::new();
            dead.cancel();
            while !stop.load(Ordering::Relaxed) {
                let _ = service.compact_store();
                let _ = shared.write(|s| s.compact_with_cancel(&dead));
                thread::yield_now();
            }
        })
    };

    type SessionLog = (
        Kind,
        Vec<(usize, Result<aiql::engine::QueryResponse, ServiceError>)>,
    );
    let handles: Vec<thread::JoinHandle<SessionLog>> = plans
        .into_iter()
        .map(|(kind, sid, qs)| {
            let service = service.clone();
            let texts: Vec<String> = qs.iter().map(|&i| catalog[i].aiql.clone()).collect();
            thread::spawn(move || {
                let mut log = Vec::with_capacity(qs.len());
                for (&qi, text) in qs.iter().zip(&texts) {
                    let resp = match service.submit(sid, text) {
                        Ok(ticket) => {
                            if kind == Kind::Cancel {
                                // Mid-query (or pre-dispatch) cancellation.
                                ticket.cancel();
                            }
                            ticket.wait()
                        }
                        Err(e) => Err(e),
                    };
                    log.push((qi, resp));
                }
                (kind, log)
            })
        })
        .collect();
    let logs: Vec<SessionLog> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();

    let mut worker_panics = 0u64;
    let mut observed_cancels = 0u64;
    for (kind, log) in logs {
        for (qi, resp) in log {
            let qid = catalog[qi].id;
            match (kind, resp) {
                (Kind::Healthy, Ok(r)) => {
                    assert!(!r.degraded, "{qid}: ample pool must not degrade");
                    assert!(!r.table.truncated && r.table.warnings.is_empty());
                    assert_eq!(r.table.columns, reference[qi].columns);
                    assert_eq!(
                        r.table.rows, reference[qi].rows,
                        "{qid}: healthy session diverged from the serial reference"
                    );
                }
                (Kind::Healthy, Err(e)) => {
                    panic!("{qid}: healthy session failed under chaos: {e}")
                }
                (Kind::Panic, Err(ServiceError::Engine(EngineError::WorkerPanic { .. }))) => {
                    worker_panics += 1;
                }
                (Kind::Panic, Ok(r)) => {
                    // Query paths that dodge the pooled scan (e.g. the
                    // anomaly window pass) still answer exactly.
                    assert_eq!(r.table.rows, reference[qi].rows, "{qid}");
                }
                (Kind::Panic, Err(e)) => {
                    panic!("{qid}: panic session surfaced a non-panic error: {e}")
                }
                (Kind::Cancel, Err(ServiceError::Engine(EngineError::Cancelled))) => {
                    observed_cancels += 1;
                }
                (Kind::Cancel, Ok(r)) => {
                    // Finished before the cancel landed: must still be exact.
                    assert_eq!(r.table.rows, reference[qi].rows, "{qid}");
                }
                (Kind::Cancel, Err(e)) => {
                    panic!("{qid}: cancelled session surfaced an unexpected error: {e}")
                }
            }
        }
    }
    assert!(
        worker_panics > 0,
        "chaos produced no WorkerPanic: the panic-injection sessions never hit a pooled scan"
    );

    let stats = service.stats();
    let total = ((HEALTHY + PANIC + CANCEL) * PER_SESSION) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(
        stats.admitted, total,
        "clients wait between submits: no shed"
    );
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.cancelled, observed_cancels);
    assert_eq!(stats.failed, worker_panics);
    assert_eq!(stats.completed + stats.failed + stats.cancelled, total);
    service.shutdown();
}

#[test]
fn overload_sheds_explicitly_and_backoff_retry_recovers() {
    let service = QueryService::new(
        scenario_shared(),
        ServiceConfig {
            dispatchers: 0, // nothing drains: shed behavior is deterministic
            session_queue_cap: 3,
            retry_hint_ms: 7,
            ..ServiceConfig::default()
        },
    );
    let sid = service.create_session().unwrap();
    let query = &demo_queries()[0].aiql;

    let mut tickets = Vec::new();
    for _ in 0..3 {
        tickets.push(service.submit(sid, query).unwrap());
    }
    for _ in 0..2 {
        match service.submit(sid, query) {
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                // The hint scales with the queue depth that caused the shed.
                assert_eq!(retry_after_ms, 7 * 3);
            }
            other => panic!("expected a shed, got {other:?}"),
        }
    }
    assert_eq!(service.stats().shed, 2);
    assert_eq!(service.queued(), 3);

    // Client-side recovery: each backoff "sleep" is a tick in which the
    // service drains one request, so a retry eventually finds room.
    let ticket = retry_overloaded_with(
        &BackoffPolicy::default(),
        |_| {
            service.dispatch_one();
        },
        || service.submit(sid, query),
    )
    .expect("backoff retry must eventually be admitted");
    tickets.push(ticket);
    while service.dispatch_one() {}

    for t in tickets {
        let r = t.wait().expect("admitted query must complete");
        assert!(!r.table.rows.is_empty(), "catalog queries are non-empty");
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.shed, 3, "the first retry attempt sheds once more");
}

#[test]
fn shutdown_under_load_resolves_every_ticket() {
    let service = QueryService::new(
        scenario_shared(),
        ServiceConfig {
            dispatchers: 2,
            ..ServiceConfig::default()
        },
    );
    let catalog = demo_queries();
    let sids: Vec<SessionId> = (0..8).map(|_| service.create_session().unwrap()).collect();
    let mut tickets = Vec::new();
    for i in 0..40 {
        match service.submit(sids[i % sids.len()], &catalog[i % catalog.len()].aiql) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    service.shutdown();

    // Every outstanding ticket resolves: completed before the drain,
    // cancelled in flight, or answered ShuttingDown from the queue.
    for t in tickets {
        match t.wait() {
            Ok(_)
            | Err(ServiceError::ShuttingDown)
            | Err(ServiceError::Engine(EngineError::Cancelled)) => {}
            Err(e) => panic!("unexpected drain outcome: {e}"),
        }
    }
    // The drained service refuses new work, consistently.
    assert!(matches!(
        service.submit(sids[0], &catalog[0].aiql),
        Err(ServiceError::ShuttingDown)
    ));
    assert!(matches!(
        service.create_session(),
        Err(ServiceError::ShuttingDown)
    ));
    service.shutdown(); // idempotent
}
