//! Persistence: WAL replay and snapshot reload must reconstruct stores that
//! answer every investigation query identically.

use aiql::sim::{build_store, demo_queries, scenario_demo, Scale};
use aiql::storage::{snapshot, Wal};
use aiql::{Engine, EngineConfig, EventStore, StoreConfig};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aiql-it-{}-{}", std::process::id(), name));
    p
}

fn rendered_rows(store: &EventStore, table: &aiql::ResultTable) -> Vec<String> {
    let mut rows: Vec<String> = table
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.render(store.interner()))
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn wal_replay_rebuilds_an_equivalent_store() {
    let scenario = scenario_demo(Scale::test());
    let path = tmp("wal");

    // Agents stream to the WAL before commit.
    let mut wal = Wal::create(&path).unwrap();
    for raw in &scenario.raws {
        wal.append(raw).unwrap();
    }
    wal.flush().unwrap();
    drop(wal);

    // Crash. Recover by replaying the WAL into a fresh store.
    let replayed = Wal::replay(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(replayed.len(), scenario.raws.len());
    let mut recovered = EventStore::new(StoreConfig::default());
    recovered.ingest_all(&replayed);

    let original = build_store(&scenario, StoreConfig::default());
    let engine = Engine::new(EngineConfig::default());
    for cq in demo_queries() {
        let a = engine.execute_text(&original, &cq.aiql).unwrap();
        let b = engine.execute_text(&recovered, &cq.aiql).unwrap();
        assert_eq!(
            rendered_rows(&original, &a),
            rendered_rows(&recovered, &b),
            "{} diverges after WAL recovery",
            cq.id
        );
    }
}

#[test]
fn snapshot_reload_answers_identically() {
    let scenario = scenario_demo(Scale::test());
    let store = build_store(&scenario, StoreConfig::default());
    let path = tmp("snapshot");
    snapshot::save(&store, &path).unwrap();
    let loaded = snapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(store.event_count(), loaded.event_count());
    assert_eq!(store.entities().len(), loaded.entities().len());
    let engine = Engine::new(EngineConfig::default());
    for cq in demo_queries() {
        let a = engine.execute_text(&store, &cq.aiql).unwrap();
        let b = engine.execute_text(&loaded, &cq.aiql).unwrap();
        assert_eq!(
            rendered_rows(&store, &a),
            rendered_rows(&loaded, &b),
            "{} diverges after snapshot reload",
            cq.id
        );
    }
}

#[test]
fn checkpoint_plus_log_recovery() {
    // The classic pattern: snapshot at time T, WAL for the tail after T.
    let scenario = scenario_demo(Scale::test());
    let split = scenario.raws.len() / 2;
    let (head, tail) = scenario.raws.split_at(split);

    let mut head_store = EventStore::new(StoreConfig::default());
    head_store.ingest_all(head);
    let snap_path = tmp("ckpt-snap");
    snapshot::save(&head_store, &snap_path).unwrap();

    let wal_path = tmp("ckpt-wal");
    let mut wal = Wal::create(&wal_path).unwrap();
    for raw in tail {
        wal.append(raw).unwrap();
    }
    wal.flush().unwrap();
    drop(wal);

    // Recover: load checkpoint, replay log tail.
    let mut recovered = snapshot::load(&snap_path).unwrap();
    for raw in Wal::replay(&wal_path).unwrap() {
        recovered.ingest(&raw);
    }
    recovered.commit();
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&wal_path).ok();

    let full = build_store(&scenario, StoreConfig::default());
    assert_eq!(recovered.event_count(), full.event_count());

    let engine = Engine::new(EngineConfig::default());
    let probe =
        r#"(at "03/19/2018") agentid = 2 proc p write file f["%backup1.dmp"] as e return p, f"#;
    let a = engine.execute_text(&full, probe).unwrap();
    let b = engine.execute_text(&recovered, probe).unwrap();
    assert_eq!(rendered_rows(&full, &a), rendered_rows(&recovered, &b));
}
