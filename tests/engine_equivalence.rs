//! Cross-engine equivalence: the optimized AIQL engine, the relational
//! baseline (with and without optimized storage), and the graph baseline
//! must return identical result sets on every catalog query — the
//! benchmarks then compare pure execution strategy, not semantics.

use aiql::baseline::{GraphEngine, RelationalEngine};
use aiql::sim::{
    build_store, case_study_queries, demo_queries, scenario_case_study, scenario_demo, Scale,
};
use aiql::{Engine, EngineConfig, StoreConfig};

fn check_scenario(store: aiql::EventStore, queries: Vec<aiql::sim::CatalogQuery>) {
    let engine = Engine::new(EngineConfig::default());
    let rel_opt = RelationalEngine::new(true);
    let rel_unopt = RelationalEngine::new(false);
    let graph = GraphEngine::build(&store);
    for cq in queries {
        let reference = engine
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("{}: {e}", cq.id))
            .normalized();
        let r1 = rel_opt
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("{}: {e}", cq.id))
            .normalized();
        assert_eq!(
            reference.rows, r1.rows,
            "{}: relational (optimized storage) diverges",
            cq.id
        );
        let r2 = rel_unopt
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("{}: {e}", cq.id))
            .normalized();
        assert_eq!(
            reference.rows, r2.rows,
            "{}: relational (unoptimized storage) diverges",
            cq.id
        );
        let r3 = graph
            .execute_text(&store, &cq.aiql)
            .unwrap_or_else(|e| panic!("{}: {e}", cq.id))
            .normalized();
        assert_eq!(reference.rows, r3.rows, "{}: graph engine diverges", cq.id);
    }
}

#[test]
fn demo_catalog_equivalence() {
    let store = build_store(&scenario_demo(Scale::test()), StoreConfig::default());
    check_scenario(store, demo_queries());
}

#[test]
fn case_study_catalog_equivalence() {
    let store = build_store(&scenario_case_study(Scale::test()), StoreConfig::default());
    check_scenario(store, case_study_queries());
}

#[test]
fn engine_config_ablations_preserve_results() {
    let store = build_store(&scenario_demo(Scale::test()), StoreConfig::default());
    let reference = Engine::new(EngineConfig::default());
    let variants = [
        EngineConfig {
            prioritize_pruning: false,
            ..EngineConfig::default()
        },
        EngineConfig {
            partition_parallel: false,
            ..EngineConfig::default()
        },
        EngineConfig {
            entity_pushdown: false,
            ..EngineConfig::default()
        },
        EngineConfig {
            semi_join_pushdown: false,
            ..EngineConfig::default()
        },
        EngineConfig {
            temporal_narrowing: false,
            ..EngineConfig::default()
        },
        EngineConfig::unoptimized(),
    ];
    for cq in demo_queries() {
        let want = reference
            .execute_text(&store, &cq.aiql)
            .unwrap()
            .normalized();
        for (vi, variant) in variants.iter().enumerate() {
            let engine = Engine::new(variant.clone());
            let got = engine.execute_text(&store, &cq.aiql).unwrap().normalized();
            assert_eq!(want.rows, got.rows, "{} variant {vi} diverges", cq.id);
        }
    }
}

#[test]
fn dedup_off_still_equivalent_for_distinct_queries() {
    // Event dedup merges identical adjacent events; `distinct` projections
    // must be insensitive to it.
    let scenario = scenario_demo(Scale::test());
    let merged = build_store(&scenario, StoreConfig::default());
    let unmerged = build_store(
        &scenario,
        StoreConfig {
            dedup: false,
            ..StoreConfig::default()
        },
    );
    let engine = Engine::new(EngineConfig::default());
    for cq in demo_queries() {
        if !cq.aiql.contains("distinct") {
            continue;
        }
        let a = engine.execute_text(&merged, &cq.aiql).unwrap().normalized();
        let b = engine
            .execute_text(&unmerged, &cq.aiql)
            .unwrap()
            .normalized();
        // Interners differ between stores, so compare rendered rows.
        let ra: Vec<String> = a
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.render(merged.interner()))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        let rb: Vec<String> = b
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.render(unmerged.interner()))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        let mut ra = ra;
        let mut rb = rb;
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb, "{}: dedup changed distinct results", cq.id);
    }
}
