//! The live end-to-end investigation of §3 as an executable test: starting
//! with no prior knowledge of the attack, the analyst's query sequence must
//! surface each attack step's evidence in order.

use aiql::sim::{build_store, scenario_demo, Scale};
use aiql::{Engine, EngineConfig, EventStore, StoreConfig};

fn setup() -> (EventStore, Engine) {
    let store = build_store(&scenario_demo(Scale::test()), StoreConfig::default());
    (store, Engine::new(EngineConfig::default()))
}

fn rendered(store: &EventStore, table: &aiql::ResultTable) -> String {
    table.render(store.interner())
}

#[test]
fn step_a5_investigation_narrative() {
    let (store, engine) = setup();

    // 1. Anomaly hunt on the DB server: finds the implant and the drop IP.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               window = 1 min, step = 10 sec
               proc p write ip i as evt
               return p, i, avg(evt.amount) as amt
               group by p, i
               having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000"#,
        )
        .unwrap();
    let out = rendered(&store, &t);
    assert!(
        out.contains("sbblv.exe"),
        "anomaly missed the implant:\n{out}"
    );
    assert!(out.contains("172.16.99.129"), "anomaly missed the drop IP");

    // 2. What did it read? — the database dump.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p["%sbblv%"] read file f as evt return distinct f"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("backup1.dmp"));

    // 3. Who created the dump? — the legitimate SQL server process.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p write file f["%backup1.dmp"] as evt return distinct p"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("sqlservr.exe"));

    // 4. Channel established before the transfer? — yes.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p["%sbblv%"] connect ip i[dstip = "172.16.99.129"] as evt1
               proc p write ip i2[dstip = "172.16.99.129"] as evt2
               with evt1 before evt2
               return distinct p"#,
        )
        .unwrap();
    assert_eq!(t.rows.len(), 1, "connect-before-transfer not confirmed");
}

#[test]
fn step_a1_entry_point_discovery() {
    let (store, engine) = setup();
    // Inbound from the suspicious IP: the vulnerable IRC daemon.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 1
               proc p accept ip i[srcip = "172.16.99.129"] as evt return distinct p"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("ircd"));

    // What did it spawn? A shell.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 1
               proc p1["%ircd"] start proc p2 as evt return distinct p2"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("/bin/sh"));
}

#[test]
fn step_a3_and_a4_tool_discovery() {
    let (store, engine) = setup();
    // Tools the client implant launched.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 0
               proc p1["%sbblv%"] start proc p2 as evt return distinct p2"#,
        )
        .unwrap();
    let out = rendered(&store, &t);
    assert!(out.contains("mimikatz.exe"));
    assert!(out.contains("kiwi.exe"));

    // Credential dumpers on the DC.
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 3
               proc p1["%sbblv%"] start proc p2 as evt return distinct p2"#,
        )
        .unwrap();
    let out = rendered(&store, &t);
    assert!(out.contains("PwDump7.exe"));
    assert!(out.contains("WCE.exe"));
}

#[test]
fn iterative_refinement_narrows_results() {
    // The UI workflow: a broad query returns plenty; adding constraints
    // narrows it monotonically.
    let (store, engine) = setup();
    let broad = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2 proc p write file f as e return p, f"#,
        )
        .unwrap();
    let narrowed = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p["%sqlservr%"] write file f as e return p, f"#,
        )
        .unwrap();
    let pinned = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p["%sqlservr%"] write file f["%backup1.dmp"] as e return p, f"#,
        )
        .unwrap();
    assert!(broad.rows.len() > narrowed.rows.len());
    assert!(narrowed.rows.len() >= pinned.rows.len());
    assert_eq!(pinned.rows.len(), 1);
}

#[test]
fn case_study_investigation_narrative() {
    use aiql::sim::scenario_case_study;
    let store = build_store(&scenario_case_study(Scale::test()), StoreConfig::default());
    let engine = Engine::new(EngineConfig::default());

    // 1. Who delivered the dropper? — the mail client.
    let t = engine
        .execute_text(
            &store,
            r#"(at "04/02/2018") agentid = 0
               proc p write file f["%invoice_dropper%"] as e return distinct p"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("outlook.exe"));

    // 2. Shell chain from the dropper.
    let t = engine
        .execute_text(
            &store,
            r#"(at "04/02/2018") agentid = 0
               proc p1["%invoice_dropper%"] start proc p2["%cmd.exe"] as e1
               proc p2 start proc p3["%powershell%"] as e2
               with e1 before e2
               return distinct p3"#,
        )
        .unwrap();
    assert_eq!(t.rows.len(), 1);

    // 3. Lateral movement lands the implant on the server (cross-host).
    let t = engine
        .execute_text(
            &store,
            r#"(at "04/02/2018")
               forward: proc p1["%psexec%", agentid = 0] ->[connect] proc p2[agentid = 1]
               ->[write] file f["%malsvc%"]
               return f"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("malsvc.exe"));

    // 4. Staging and exfiltration chain ends at the C2 address.
    let t = engine
        .execute_text(
            &store,
            r#"(at "04/02/2018") agentid = 1
               proc p1["%rar.exe"] write file f["%stage.rar"] as e1
               proc p2["%ftp.exe"] read file f as e2
               proc p2 write ip i[dstip = "172.16.99.200"] as e3
               with e1 before e2, e2 before e3
               return distinct p2, i"#,
        )
        .unwrap();
    assert!(rendered(&store, &t).contains("172.16.99.200"));
}

#[test]
fn explain_shows_scheduling_decisions() {
    let (store, engine) = setup();
    let q = aiql::parse_query(
        r#"(at "03/19/2018") agentid = 2
           proc p3 write file f1 as big
           proc p1["%cmd.exe"] start proc p2["%osql.exe"] as rare
           return p1"#,
    )
    .unwrap();
    let plan = aiql::engine::explain(&store, &q, engine.config()).unwrap();
    let rare = plan.patterns.iter().find(|p| p.name == "rare").unwrap();
    assert_eq!(rare.position, 0, "most selective pattern runs first");
    let text = plan.render();
    assert!(text.contains("pruning priority: on"));
}

#[test]
fn results_export_to_csv() {
    let (store, engine) = setup();
    let t = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p write file f["%backup1.dmp"] as e return p, f, e.amount"#,
        )
        .unwrap();
    let csv = t.to_csv(store.interner());
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("p,f,e.amount"));
    let row = lines.next().unwrap();
    assert!(row.contains("sqlservr.exe"));
    assert!(row.contains("backup1.dmp"));
}

#[test]
fn multi_day_range_covers_single_day_data() {
    let (store, engine) = setup();
    // The scenario is one day; a surrounding range must find the same rows.
    let narrow = engine
        .execute_text(
            &store,
            r#"(at "03/19/2018") agentid = 2
               proc p write file f["%backup1.dmp"] as e return p"#,
        )
        .unwrap();
    let wide = engine
        .execute_text(
            &store,
            r#"(at "03/18/2018" to "03/20/2018") agentid = 2
               proc p write file f["%backup1.dmp"] as e return p"#,
        )
        .unwrap();
    assert_eq!(narrow.normalized().rows, wide.normalized().rows);
    // A disjoint range finds nothing.
    let miss = engine
        .execute_text(
            &store,
            r#"(at "04/01/2018" to "04/05/2018") agentid = 2
               proc p write file f["%backup1.dmp"] as e return p"#,
        )
        .unwrap();
    assert!(miss.rows.is_empty());
}

#[test]
fn syntax_errors_are_actionable() {
    let (store, engine) = setup();
    let src = "proc p read file f as e\nretrun p";
    let err = engine.execute_text(&store, src).unwrap_err();
    let text = err.to_string();
    // Points at line 2 where `return` was misspelled.
    assert!(text.contains("2:"), "{text}");
}
