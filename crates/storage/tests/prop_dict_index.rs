//! Differential property tests for the n-gram/prefix dictionary indexes.
//!
//! The trigram-intersection + verify path, the prefix range scan, and the
//! case-folded exact lookup must return *exactly* the id set of the naive
//! full-dictionary scan (the PR 1 behavior, kept behind
//! `StoreConfig::ngram_index = false`) for every pattern shape — `%`, `_`,
//! prefix, suffix, infix, degenerate — over arbitrary dictionaries.

use aiql_model::{
    AgentId, EntityAttrs, EntityKind, FileAttrs, IpV4, NetConnAttrs, ProcessAttrs, Protocol,
    StringPattern,
};
use aiql_storage::{AttrCmp, EntityConstraint, EntityStore};
use proptest::prelude::*;

/// Name fragments that deliberately share trigrams (`sql` ⊂ `osql` ⊂
/// `sqlservr`-style overlaps) so patterns collide with several entries.
fn frag() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("cmd"),
        Just("CMD"),
        Just("osql"),
        Just("sql"),
        Just("servr"),
        Just("sbblv"),
        Just("backup1"),
        Just("dmp"),
        Just("exe"),
        Just("info"),
        Just("stealer"),
        Just("a"),
        Just("ab"),
        Just(""),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    (proptest::collection::vec(frag(), 1..4), 0usize..4).prop_map(|(parts, sep)| {
        let sep = ["", ".", "/", "_"][sep % 4];
        parts.join(sep)
    })
}

/// Pattern pieces: literals sharing the name fragments, plus both wildcards.
fn arb_pattern() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        Just("%"),
        Just("_"),
        Just("cmd"),
        Just("sql"),
        Just("sbblv"),
        Just("exe"),
        Just("backup1"),
        Just("."),
        Just("/"),
        Just("a"),
        Just("b"),
    ];
    proptest::collection::vec(piece, 1..5).prop_map(|ps| ps.concat())
}

/// Builds one store with the n-gram indexes and one without, holding the
/// same names as both processes and files on alternating hosts.
fn paired_stores(names: &[String]) -> (EntityStore, EntityStore) {
    let mut indexed = EntityStore::with_ngram_index(true);
    let mut naive = EntityStore::with_ngram_index(false);
    for store in [&mut indexed, &mut naive] {
        for (i, name) in names.iter().enumerate() {
            let agent = AgentId((i % 3) as u32);
            let sym = store.interner_mut().intern(name);
            let user = store.interner_mut().intern("user");
            let empty = store.interner_mut().intern("");
            store.intern(
                agent,
                EntityAttrs::Process(ProcessAttrs {
                    pid: i as u32,
                    exe_name: sym,
                    user,
                    cmdline: empty,
                }),
            );
            store.intern(
                agent,
                EntityAttrs::File(FileAttrs {
                    name: sym,
                    owner: user,
                }),
            );
        }
    }
    (indexed, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed LIKE resolution == naive scan, for processes and files,
    /// with and without agent restrictions.
    #[test]
    fn ngram_like_matches_naive_scan(
        names in proptest::collection::vec(arb_name(), 0..24),
        patterns in proptest::collection::vec(arb_pattern(), 1..8),
        restrict in 0u32..4,
    ) {
        let (indexed, naive) = paired_stores(&names);
        let agents = [AgentId(0), AgentId(1)];
        let restriction: Option<&[AgentId]> = match restrict {
            0 => None,
            1 => Some(&agents[..1]),
            2 => Some(&agents[..2]),
            _ => Some(&[]),
        };
        for pat in &patterns {
            let c = [EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new(pat),
            ))];
            for kind in [EntityKind::Process, EntityKind::File] {
                let a = indexed.find(kind, restriction, &c);
                let b = naive.find(kind, restriction, &c);
                prop_assert!(
                    a.windows(2).all(|w| w[0] < w[1]),
                    "indexed result must be sorted+deduped for {pat:?}"
                );
                prop_assert!(
                    b.windows(2).all(|w| w[0] < w[1]),
                    "naive result must be sorted+deduped for {pat:?}"
                );
                prop_assert_eq!(a, b, "kind {:?} pattern {:?}", kind, pat);
            }
        }
    }

    /// Indexed LIKE over rendered destination IPs == naive rendering scan.
    #[test]
    fn ngram_ip_like_matches_naive_scan(
        octets in proptest::collection::vec((0u32..3, 0u32..3, 99u32..101, 0u32..256), 0..20),
        patterns in proptest::collection::vec(
            prop_oneof![
                Just("%"),
                Just("%.129"),
                Just("172.%"),
                Just("0.%"),
                Just("%.99.%"),
                Just("1.1.99.1"),
                Just("%._"),
                Just("2.2.100.255"),
            ],
            1..6,
        ),
    ) {
        let mut indexed = EntityStore::with_ngram_index(true);
        let mut naive = EntityStore::with_ngram_index(false);
        for store in [&mut indexed, &mut naive] {
            for &(a, b, c, d) in &octets {
                store.intern(
                    AgentId(1),
                    EntityAttrs::NetConn(NetConnAttrs {
                        src_ip: IpV4::from_octets(10, 0, 0, 1),
                        src_port: 1000,
                        dst_ip: IpV4::from_octets(a as u8, b as u8, c as u8, d as u8),
                        dst_port: 443,
                        protocol: Protocol::Tcp,
                    }),
                );
            }
        }
        for pat in &patterns {
            let c = [EntityConstraint::on(
                "dstip",
                AttrCmp::Like(StringPattern::new(pat)),
            )];
            let a = indexed.find(EntityKind::NetConn, None, &c);
            let b = naive.find(EntityKind::NetConn, None, &c);
            prop_assert_eq!(a, b, "pattern {:?}", pat);
        }
    }
}
