//! Crash-consistency fault injection (PR 6): kill the WAL byte stream at
//! **every** offset and prove recovery is exact.
//!
//! The differential contract: a WAL torn at offset `k` must recover to
//! precisely the batches whose commit markers fully landed within the
//! first `k` bytes — no more (uncommitted events are never acknowledged),
//! no less (committed data survives any tear) — and the rebuilt store must
//! reproduce the uncrashed store's scan results *and physical segment
//! layout* byte for byte. Sweeping the kill offset over the whole file
//! leaves no alignment, frame-boundary, or mid-varint case untested.
//!
//! The snapshot side gets the same treatment: a snapshot corrupted at an
//! arbitrary byte must never load as valid data — [`load_or_recover`]
//! detects the damage and degrades to WAL replay.

use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{
    load_or_recover, recover, snapshot, EntitySpec, EventFilter, EventStore, IoFault, RawEvent,
    StoreConfig, Wal,
};
use proptest::prelude::*;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "aiql-fault-injection-{}-{}",
        std::process::id(),
        name
    ));
    p
}

fn batch(base: i64, n: i64) -> Vec<RawEvent> {
    (0..n)
        .map(|i| {
            RawEvent::instant(
                AgentId(((base + i) % 3) as u32),
                if (base + i) % 2 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(
                    10 + ((base + i) % 5) as u32,
                    &format!("p{}.exe", base + i),
                    "svc",
                ),
                EntitySpec::file(&format!("/var/log/{}", (base + i) % 7), "svc"),
                Timestamp::from_secs((base + i) * 30),
                (base + i) as u64,
            )
        })
        .collect()
}

/// Writes `batches` to a clean WAL at `path`, recording the file length
/// after each commit — the durability horizon: a tear at or past
/// `commit_offsets[j]` preserves batches `0..=j`.
fn write_wal(path: &std::path::Path, batches: &[Vec<RawEvent>]) -> Vec<u64> {
    let mut wal = Wal::create(path).unwrap();
    let mut commit_offsets = Vec::with_capacity(batches.len());
    for b in batches {
        for e in b {
            wal.append(e).unwrap();
        }
        wal.commit().unwrap();
        wal.flush().unwrap();
        commit_offsets.push(std::fs::metadata(path).unwrap().len());
    }
    commit_offsets
}

/// The reference store for a durability horizon: the first `k` batches
/// ingested batch by batch (batch boundaries drive segment sealing, so
/// this fixes the physical layout too).
fn reference(batches: &[Vec<RawEvent>], k: usize) -> EventStore {
    let mut store = EventStore::new(StoreConfig::default());
    for b in &batches[..k] {
        store.ingest_all(b);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash-at-every-offset: for a random batch schedule, kill the write
    /// stream at each byte offset of the file and assert recovery lands
    /// exactly on the committed prefix, with scans and segment layouts
    /// identical to a store that never crashed.
    #[test]
    fn recovery_is_exact_at_every_kill_offset(
        sizes in proptest::collection::vec(1i64..6, 1..4),
    ) {
        let batches: Vec<Vec<RawEvent>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| batch(i as i64 * 10, n))
            .collect();

        let clean_path = tmpfile("sweep-clean");
        let commit_offsets = write_wal(&clean_path, &batches);
        let total_len = *commit_offsets.last().unwrap();
        std::fs::remove_file(&clean_path).ok();

        let torn_path = tmpfile("sweep-torn");
        for kill in 0..=total_len {
            {
                let mut wal = Wal::create_faulty(&torn_path, IoFault::kill_at(kill)).unwrap();
                for b in &batches {
                    for e in b {
                        wal.append(e).unwrap();
                    }
                    wal.commit().unwrap();
                }
                wal.flush().unwrap();
            }
            // Batches whose commit marker fully landed before the tear.
            let k = commit_offsets.iter().filter(|&&off| off <= kill).count();
            let (recovered, report) = recover(StoreConfig::default(), &torn_path)
                .unwrap_or_else(|e| panic!("recovery failed at kill offset {kill}: {e}"));
            prop_assert_eq!(
                report.batches.len(),
                k,
                "kill offset {} recovered {} batches, expected {}",
                kill,
                report.batches.len(),
                k
            );
            let expected = reference(&batches, k);
            prop_assert_eq!(
                recovered.scan_collect(&EventFilter::all()),
                expected.scan_collect(&EventFilter::all()),
                "scan mismatch at kill offset {}",
                kill
            );
            prop_assert_eq!(
                recovered.segment_layouts(),
                expected.segment_layouts(),
                "segment layout mismatch at kill offset {}",
                kill
            );
        }
        std::fs::remove_file(&torn_path).ok();
    }

    /// The same crash-at-every-offset sweep with the novelty overlay
    /// enabled: WAL replay lands committed batches in the overlay (sealing
    /// only when the threshold trips), and the recovered store must
    /// reproduce the uncrashed reference's sealed/overlay split exactly —
    /// crash consistency is independent of the write-path mode.
    #[test]
    fn recovery_with_novelty_overlay_is_exact_at_every_kill_offset(
        sizes in proptest::collection::vec(1i64..6, 1..4),
        flush_rows in 2usize..12,
    ) {
        let config = StoreConfig {
            novelty_flush_rows: flush_rows,
            ..StoreConfig::default()
        };
        let batches: Vec<Vec<RawEvent>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| batch(i as i64 * 10, n))
            .collect();

        let clean_path = tmpfile("novelty-sweep-clean");
        let commit_offsets = write_wal(&clean_path, &batches);
        let total_len = *commit_offsets.last().unwrap();
        std::fs::remove_file(&clean_path).ok();

        let torn_path = tmpfile("novelty-sweep-torn");
        for kill in 0..=total_len {
            {
                let mut wal = Wal::create_faulty(&torn_path, IoFault::kill_at(kill)).unwrap();
                for b in &batches {
                    for e in b {
                        wal.append(e).unwrap();
                    }
                    wal.commit().unwrap();
                }
                wal.flush().unwrap();
            }
            let k = commit_offsets.iter().filter(|&&off| off <= kill).count();
            let (recovered, report) = recover(config.clone(), &torn_path)
                .unwrap_or_else(|e| panic!("recovery failed at kill offset {kill}: {e}"));
            prop_assert_eq!(report.batches.len(), k);
            let expected = {
                let mut store = EventStore::new(config.clone());
                for b in &batches[..k] {
                    store.ingest_all(b);
                }
                store
            };
            prop_assert_eq!(
                recovered.scan_collect(&EventFilter::all()),
                expected.scan_collect(&EventFilter::all()),
                "scan mismatch at kill offset {}",
                kill
            );
            prop_assert_eq!(
                recovered.segment_layouts(),
                expected.segment_layouts(),
                "sealed layout mismatch at kill offset {}",
                kill
            );
            prop_assert_eq!(
                recovered.novelty_lens(),
                expected.novelty_lens(),
                "overlay rows mismatch at kill offset {}",
                kill
            );
        }
        std::fs::remove_file(&torn_path).ok();
    }

    /// A snapshot with any single byte corrupted never loads as valid
    /// data: `load_or_recover` detects the damage and rebuilds the exact
    /// store from the WAL instead.
    #[test]
    fn corrupted_snapshot_byte_always_falls_back_to_wal(
        nevents in 4i64..20,
        corrupt_pos in 0u32..1_000_000,
        flip in 1u8..255,
    ) {
        let wal_path = tmpfile("snapfb-wal");
        let snap_path = tmpfile("snapfb-snap");
        let raws = batch(0, nevents);
        write_wal(&wal_path, std::slice::from_ref(&raws));
        let mut store = EventStore::new(StoreConfig::default());
        store.ingest_all(&raws);
        snapshot::save(&store, &snap_path).unwrap();

        let mut bytes = std::fs::read(&snap_path).unwrap();
        let idx = corrupt_pos as usize % bytes.len();
        bytes[idx] ^= flip;
        std::fs::write(&snap_path, &bytes).unwrap();

        let (loaded, source) =
            load_or_recover(&snap_path, &wal_path, StoreConfig::default()).unwrap();
        // Either the corruption was detected (WAL fallback) or — only
        // possible if the flipped byte is outside every checked region —
        // the snapshot still decoded to the identical store. Silent
        // divergence is the one forbidden outcome.
        prop_assert_eq!(
            loaded.scan_collect(&EventFilter::all()),
            store.scan_collect(&EventFilter::all()),
            "corrupting byte {} produced a silently divergent store (fell_back: {})",
            idx,
            source.fell_back()
        );
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }
}

/// A torn tail hit by a crash *during repair-append* still recovers: the
/// open-append path truncates the tear, and a second tear over the
/// repaired file replays to the committed prefix again.
#[test]
fn double_crash_over_a_repaired_wal_recovers() {
    let path = tmpfile("double-crash");
    let batches = vec![batch(0, 4), batch(10, 3)];
    let commit_offsets = write_wal(&path, &batches);

    // First crash: tear mid-way through batch 2's records.
    let tear_1 = commit_offsets[0] + (commit_offsets[1] - commit_offsets[0]) / 2;
    {
        let mut wal = Wal::create_faulty(&path, IoFault::kill_at(tear_1)).unwrap();
        for b in &batches {
            for e in b {
                wal.append(e).unwrap();
            }
            wal.commit().unwrap();
        }
        wal.flush().unwrap();
    }

    // Repair on reopen, append one more committed batch, then crash again
    // after that commit landed. Intact-but-uncommitted survivors of the
    // tear stay pending and get sealed together with the new appends.
    let extra = batch(100, 2);
    let survivors = {
        let (mut wal, report) = Wal::open_append(&path).unwrap();
        assert_eq!(report.batches.len(), 1, "only batch 1 was committed");
        assert!(report.torn(), "the tear must be detected on reopen");
        for e in &extra {
            wal.append(e).unwrap();
        }
        wal.commit().unwrap();
        wal.flush().unwrap();
        report.uncommitted
    };

    let (recovered, report) = recover(StoreConfig::default(), &path).unwrap();
    assert_eq!(report.batches.len(), 2);
    let mut second = survivors;
    second.extend(extra.iter().cloned());
    let mut expected = EventStore::new(StoreConfig::default());
    expected.ingest_all(&batches[0]);
    expected.ingest_all(&second);
    assert_eq!(
        recovered.scan_collect(&EventFilter::all()),
        expected.scan_collect(&EventFilter::all())
    );
    assert_eq!(recovered.segment_layouts(), expected.segment_layouts());
    std::fs::remove_file(&path).ok();
}
