//! Property-based tests for the storage layer: the optimized access paths
//! must be observationally equivalent to the naive reference semantics for
//! arbitrary data and arbitrary filters.

use aiql_model::{AgentId, Operation, TimeWindow, Timestamp};
use aiql_storage::{EntitySpec, EventFilter, EventStore, OpSet, RawEvent, StoreConfig};
use proptest::prelude::*;

/// Strategy for a small random raw event.
fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..4,      // agent
        0usize..11,   // op index
        0u32..6,      // exe choice
        0u32..8,      // file choice
        0i64..86_400, // seconds within one day
        0u64..10_000, // amount
    )
        .prop_map(|(agent, op, exe, file, secs, amount)| {
            RawEvent::instant(
                AgentId(agent),
                Operation::from_index(op).unwrap(),
                EntitySpec::process(100 + exe, &format!("/usr/bin/exe{exe}"), "user"),
                EntitySpec::file(&format!("/data/file{file}"), "user"),
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

fn build_store(raws: &[RawEvent], dedup: bool, bucket_mins: i64) -> EventStore {
    let mut store = EventStore::new(StoreConfig {
        time_bucket: aiql_model::Duration::from_mins(bucket_mins),
        dedup,
        ..StoreConfig::default()
    });
    store.ingest_all(raws);
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without dedup, every raw observation becomes exactly one committed
    /// event regardless of the partitioning granularity.
    #[test]
    fn ingest_preserves_event_count(raws in proptest::collection::vec(arb_raw(), 0..200),
                                    bucket_mins in 1i64..240) {
        let store = build_store(&raws, false, bucket_mins);
        prop_assert_eq!(store.event_count(), raws.len() as u64);
    }

    /// The optimized scan (partition pruning + indexes) returns exactly the
    /// same multiset of events as the unoptimized full scan, for arbitrary
    /// filters.
    #[test]
    fn optimized_scan_equals_full_scan(
        raws in proptest::collection::vec(arb_raw(), 0..150),
        op_mask in 1u16..(1 << 11),
        agent in 0u32..4,
        use_agent in any::<bool>(),
        lo in 0i64..86_400,
        len in 0i64..86_400,
        bucket_mins in 1i64..120,
    ) {
        let store = build_store(&raws, true, bucket_mins);
        let mut filter = EventFilter::all()
            .with_ops(OpSet(op_mask))
            .with_window(TimeWindow::new(
                Timestamp::from_secs(lo),
                Timestamp::from_secs(lo + len),
            ));
        if use_agent {
            filter = filter.with_agents(vec![AgentId(agent)]);
        }
        let mut fast = store.scan_collect(&filter);
        let mut slow = store.scan_unoptimized_collect(&filter);
        fast.sort_by_key(|e| e.id);
        slow.sort_by_key(|e| e.id);
        prop_assert_eq!(fast, slow);
    }

    /// Dedup never loses data volume: the total transferred amount is
    /// invariant under event merging, and merged stores have no more events.
    #[test]
    fn dedup_preserves_total_amount(raws in proptest::collection::vec(arb_raw(), 0..150)) {
        let merged = build_store(&raws, true, 60);
        let plain = build_store(&raws, false, 60);
        let sum = |s: &EventStore| {
            let mut total: u64 = 0;
            s.for_each_event(&mut |e| total += e.amount);
            total
        };
        prop_assert_eq!(sum(&merged), sum(&plain));
        prop_assert!(merged.event_count() <= plain.event_count());
    }

    /// The statistics-based estimate never undercounts actual matches.
    #[test]
    fn estimate_is_an_upper_bound(
        raws in proptest::collection::vec(arb_raw(), 0..150),
        op_mask in 1u16..(1 << 11),
    ) {
        let store = build_store(&raws, true, 60);
        let filter = EventFilter::all().with_ops(OpSet(op_mask));
        let actual = store.scan_collect(&filter).len();
        prop_assert!(store.estimate(&filter) >= actual);
    }

    /// Entity dedup: distinct entities never exceed distinct (agent, attrs)
    /// combinations present in the input.
    #[test]
    fn entity_dedup_bound(raws in proptest::collection::vec(arb_raw(), 1..150)) {
        let store = build_store(&raws, false, 60);
        let mut distinct = std::collections::HashSet::new();
        for r in &raws {
            distinct.insert((r.agent, format!("{:?}", r.subject)));
            distinct.insert((r.agent, format!("{:?}", r.object)));
        }
        prop_assert!(store.entities().len() <= distinct.len());
    }

    /// Snapshot save/load is lossless for scans.
    #[test]
    fn snapshot_roundtrip(raws in proptest::collection::vec(arb_raw(), 0..80)) {
        let store = build_store(&raws, true, 60);
        let mut path = std::env::temp_dir();
        path.push(format!("aiql-prop-snap-{}-{}", std::process::id(), raws.len()));
        aiql_storage::snapshot::save(&store, &path).unwrap();
        let loaded = aiql_storage::snapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut a = store.scan_collect(&EventFilter::all());
        let mut b = loaded.scan_collect(&EventFilter::all());
        a.sort_by_key(|e| e.id);
        b.sort_by_key(|e| e.id);
        prop_assert_eq!(a, b);
    }
}
