//! Storage statistics, consumed by the engine's pruning-power scheduler and
//! surfaced in the benchmark reports (dataset size headers).

use aiql_model::{Timestamp, OPERATION_COUNT};

/// Per-segment statistics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentStats {
    /// Events stored.
    pub events: usize,
    /// Events per operation.
    pub per_op: [usize; OPERATION_COUNT],
    /// Distinct subject entities.
    pub distinct_subjects: usize,
    /// Distinct object entities.
    pub distinct_objects: usize,
    /// Earliest event start time.
    pub min_time: Timestamp,
    /// Latest event start time.
    pub max_time: Timestamp,
}

/// Whole-store statistics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Total committed events.
    pub events: u64,
    /// Raw observations ingested (>= `events` when event dedup merged some).
    pub raw_events: u64,
    /// Events absorbed by event-level deduplication.
    pub merged_events: u64,
    /// Distinct entities after dedup.
    pub entities: u64,
    /// Entity observations absorbed by entity dedup.
    pub entity_dedup_hits: u64,
    /// Number of hypertable partitions.
    pub partitions: u64,
    /// Number of monitored hosts seen.
    pub agents: u64,
    /// Number of batch commits performed.
    pub commits: u64,
    /// Approximate resident bytes of event columns.
    pub event_bytes: u64,
    /// Approximate resident bytes of the string dictionary.
    pub dict_bytes: u64,
    /// Total segments across partitions (== `partitions` when every
    /// partition is fully compacted; higher means fragmentation).
    pub segments: u64,
    /// Largest segments-per-partition count (the worst fragmented one).
    pub max_partition_segments: u64,
    /// Smallest segment row count (0 when the store is empty).
    pub min_segment_rows: u64,
    /// Mean segment row count (`events / segments`, 0 when empty).
    pub avg_segment_rows: u64,
    /// Events currently in novelty overlays (not yet sealed).
    pub novelty_events: u64,
    /// Approximate resident bytes of the novelty overlays.
    pub novelty_bytes: u64,
    /// Overlays sealed into the immutable run so far (threshold + explicit).
    pub novelty_flushes: u64,
    /// Snapshot acquisitions that found the publish lock contended (filled
    /// in by [`SharedStore::stats`](crate::SharedStore::stats); always 0 on
    /// a bare store).
    pub reader_stalls: u64,
}

impl StoreStats {
    /// Human-readable one-line summary for benchmark headers.
    pub fn summary(&self) -> String {
        format!(
            "{} events ({} raw, {} merged) | {} entities ({} dedup hits) | {} partitions on {} hosts | {} segments (max {}/partition, min {} / avg {} rows) | {} novelty rows ({} flushes, {} reader stalls) | ~{:.1} MB columns",
            self.events,
            self.raw_events,
            self.merged_events,
            self.entities,
            self.entity_dedup_hits,
            self.partitions,
            self.agents,
            self.segments,
            self.max_partition_segments,
            self.min_segment_rows,
            self.avg_segment_rows,
            self.novelty_events,
            self.novelty_flushes,
            self.reader_stalls,
            self.event_bytes as f64 / 1_048_576.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_counts() {
        let s = StoreStats {
            events: 1000,
            raw_events: 1200,
            merged_events: 200,
            entities: 50,
            entity_dedup_hits: 1150,
            partitions: 8,
            agents: 4,
            commits: 2,
            event_bytes: 2 * 1_048_576,
            dict_bytes: 1024,
            segments: 16,
            max_partition_segments: 3,
            min_segment_rows: 40,
            avg_segment_rows: 62,
            novelty_events: 12,
            novelty_bytes: 492,
            novelty_flushes: 5,
            reader_stalls: 1,
        };
        let text = s.summary();
        assert!(text.contains("1000 events"));
        assert!(text.contains("8 partitions"));
        assert!(text.contains("4 hosts"));
        assert!(text.contains("16 segments (max 3/partition, min 40 / avg 62 rows)"));
        assert!(text.contains("12 novelty rows (5 flushes, 1 reader stalls)"));
    }
}
