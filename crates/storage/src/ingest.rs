//! Ingestion records.
//!
//! Data collection agents report *raw* observations: the entity attributes
//! are inline strings because the agent does not know the store's interned
//! ids. [`RawEvent`] is the wire format (also what the WAL persists); the
//! store resolves it against the entity dictionary at batch commit.

use aiql_model::{
    AgentId, EntityAttrs, FileAttrs, IpV4, NetConnAttrs, Operation, ProcessAttrs, Protocol,
    Timestamp,
};

use crate::entities::EntityStore;

/// Entity attributes as reported by an agent (strings not yet interned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntitySpec {
    /// A process observation.
    Process {
        /// OS pid.
        pid: u32,
        /// Executable path.
        exe_name: String,
        /// Owning user.
        user: String,
        /// Command line.
        cmdline: String,
    },
    /// A file observation.
    File {
        /// Full path.
        name: String,
        /// Owning user.
        owner: String,
    },
    /// A network connection observation.
    NetConn {
        /// Source address.
        src_ip: IpV4,
        /// Source port.
        src_port: u16,
        /// Destination address.
        dst_ip: IpV4,
        /// Destination port.
        dst_port: u16,
        /// Transport protocol.
        protocol: Protocol,
    },
}

impl EntitySpec {
    /// Shorthand for a process spec.
    pub fn process(pid: u32, exe_name: &str, user: &str) -> Self {
        EntitySpec::Process {
            pid,
            exe_name: exe_name.to_string(),
            user: user.to_string(),
            cmdline: String::new(),
        }
    }

    /// Shorthand for a file spec.
    pub fn file(name: &str, owner: &str) -> Self {
        EntitySpec::File {
            name: name.to_string(),
            owner: owner.to_string(),
        }
    }

    /// Shorthand for a TCP connection spec.
    pub fn tcp(src_ip: IpV4, src_port: u16, dst_ip: IpV4, dst_port: u16) -> Self {
        EntitySpec::NetConn {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// Read-only counterpart of [`EntitySpec::resolve`]: produces storable
    /// attributes when every string is already interned, `None` otherwise.
    /// The copy-on-write ingest fast path uses this so batches made of
    /// already-seen entities never clone the shared dictionary.
    pub fn try_resolve(&self, entities: &EntityStore) -> Option<EntityAttrs> {
        let interner = entities.interner();
        match self {
            EntitySpec::Process {
                pid,
                exe_name,
                user,
                cmdline,
            } => Some(EntityAttrs::Process(ProcessAttrs {
                pid: *pid,
                exe_name: interner.get(exe_name)?,
                user: interner.get(user)?,
                cmdline: interner.get(cmdline)?,
            })),
            EntitySpec::File { name, owner } => Some(EntityAttrs::File(FileAttrs {
                name: interner.get(name)?,
                owner: interner.get(owner)?,
            })),
            EntitySpec::NetConn {
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                protocol,
            } => Some(EntityAttrs::NetConn(NetConnAttrs {
                src_ip: *src_ip,
                src_port: *src_port,
                dst_ip: *dst_ip,
                dst_port: *dst_port,
                protocol: *protocol,
            })),
        }
    }

    /// Interns the spec's strings and produces storable attributes.
    pub fn resolve(&self, entities: &mut EntityStore) -> EntityAttrs {
        match self {
            EntitySpec::Process {
                pid,
                exe_name,
                user,
                cmdline,
            } => {
                let exe_name = entities.interner_mut().intern(exe_name);
                let user = entities.interner_mut().intern(user);
                let cmdline = entities.interner_mut().intern(cmdline);
                EntityAttrs::Process(ProcessAttrs {
                    pid: *pid,
                    exe_name,
                    user,
                    cmdline,
                })
            }
            EntitySpec::File { name, owner } => {
                let name = entities.interner_mut().intern(name);
                let owner = entities.interner_mut().intern(owner);
                EntityAttrs::File(FileAttrs { name, owner })
            }
            EntitySpec::NetConn {
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                protocol,
            } => EntityAttrs::NetConn(NetConnAttrs {
                src_ip: *src_ip,
                src_port: *src_port,
                dst_ip: *dst_ip,
                dst_port: *dst_port,
                protocol: *protocol,
            }),
        }
    }
}

/// One raw observation from an agent: the SVO triple with inline entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// Reporting host.
    pub agent: AgentId,
    /// Operation performed.
    pub op: Operation,
    /// Subject process.
    pub subject: EntitySpec,
    /// Object entity.
    pub object: EntitySpec,
    /// Host the *object* entity lives on, when different from the
    /// reporting host — the cross-host tracking edges of dependency
    /// queries (`p1 ->[connect] p2[agentid = 2]`) record a connection whose
    /// subject runs on the reporting host while the peer process runs on
    /// another host.
    pub object_agent: Option<AgentId>,
    /// Interaction start.
    pub start_time: Timestamp,
    /// Interaction end.
    pub end_time: Timestamp,
    /// Bytes moved (0 when not applicable).
    pub amount: u64,
}

impl RawEvent {
    /// Convenience constructor with `end_time == start_time`.
    pub fn instant(
        agent: AgentId,
        op: Operation,
        subject: EntitySpec,
        object: EntitySpec,
        t: Timestamp,
        amount: u64,
    ) -> Self {
        RawEvent {
            agent,
            op,
            subject,
            object,
            object_agent: None,
            start_time: t,
            end_time: t,
            amount,
        }
    }

    /// Marks the object entity as living on another host.
    #[must_use]
    pub fn with_object_agent(mut self, agent: AgentId) -> Self {
        self.object_agent = Some(agent);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::EntityKind;

    #[test]
    fn resolve_interns_strings_once() {
        let mut store = EntityStore::new();
        let spec = EntitySpec::process(10, "/usr/bin/wget", "www");
        let a = spec.resolve(&mut store);
        let b = spec.resolve(&mut store);
        assert_eq!(a, b);
        assert_eq!(a.kind(), EntityKind::Process);
    }

    #[test]
    fn file_and_conn_specs_resolve() {
        let mut store = EntityStore::new();
        let f = EntitySpec::file("/etc/passwd", "root").resolve(&mut store);
        assert_eq!(f.kind(), EntityKind::File);
        let c = EntitySpec::tcp(
            IpV4::from_octets(10, 0, 0, 1),
            1234,
            IpV4::from_octets(10, 0, 4, 129),
            443,
        )
        .resolve(&mut store);
        assert_eq!(c.kind(), EntityKind::NetConn);
    }
}
