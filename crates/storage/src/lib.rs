//! # aiql-storage
//!
//! Domain-specific storage for system monitoring data, reproducing the
//! optimizations of §2.1 of the AIQL paper:
//!
//! * **Data deduplication** — entities are interned ([`EntityStore`]): the
//!   same process/file/connection observed many times maps to one id, and
//!   excessive event records (same ⟨subject, op, object⟩ back-to-back) are
//!   merged at commit time.
//! * **Batch commit + in-memory indexes** — events are buffered and
//!   committed in batches; each commit builds per-segment posting lists
//!   (by operation, by subject, by object) so queries avoid full scans.
//! * **Selection vectors** — predicates evaluate directly against the
//!   columns ([`Segment::select`]): access paths merge by sort-merge into
//!   sorted row-id vectors, entity id sets are dense bitmaps
//!   ([`IdSet`]), and callers read fields through cheap column accessors
//!   instead of materialized events.
//! * **Time and space partitioning / hypertable** — events live in
//!   [`Partition`]s keyed by ⟨agent id, time bucket⟩ ([`PartitionKey`]),
//!   each an ordered run of columnar [`Segment`]s (one sealed per batch
//!   commit); the engine enumerates only the partitions a query's global
//!   constraints allow and executes them in parallel.
//! * **Segment compaction** — many small commits fragment a partition into
//!   many small segments; a size-tiered merge
//!   ([`EventStore::compact`], automatic per commit by default) rewrites
//!   adjacent small segments into dense runs while preserving the flat row
//!   addresses the engine's `EventRef`s carry.
//! * **Persistence** — a write-ahead log ([`wal`]) with CRC-protected
//!   framing, and full binary [`snapshot`]s of a store.
//!
//! The paper layers these optimizations over PostgreSQL/Greenplum; here they
//! are a native embedded store (see DESIGN.md for the substitution argument).
//! Crucially the *unoptimized* access path — a full scan over one logical
//! heap, ignoring all indexes and partition pruning — is also exposed
//! ([`EventStore::scan_unoptimized`]) because Figure 5 evaluates baselines
//! without the storage optimizations.

pub mod codec;
pub mod entities;
pub mod fault;
pub mod filter;
pub mod ingest;
pub mod partition;
pub mod recovery;
pub mod segment;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod wal;

pub use entities::{AttrCmp, EntityConstraint, EntityStore};
pub use fault::{FaultWriter, IoFault};
pub use filter::{EventFilter, IdSet, OpSet};
pub use ingest::{EntitySpec, RawEvent};
pub use partition::{CompactionCancelled, Partition};
pub use recovery::{load_or_recover, recover, RecoverySource};
pub use segment::{PartitionKey, Segment};
pub use stats::{SegmentStats, StoreStats};
pub use store::{CompactionReport, EventStore, MaintenanceExecutor, SharedStore, StoreConfig};
pub use wal::{ReplayReport, Wal, WalError};
