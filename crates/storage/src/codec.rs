//! Binary encoding primitives shared by the WAL and snapshot formats.
//!
//! Little-endian fixed-width integers, LEB128 varints for counts, and a
//! table-driven CRC-32 (IEEE 802.3 polynomial) for frame integrity. Built on
//! the `bytes` crate so encoders can write into any `BufMut`.

use bytes::{Buf, BufMut};

/// Errors raised while decoding binary frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A varint ran longer than the 10-byte maximum.
    VarintOverflow,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A CRC check failed (stored, computed).
    CrcMismatch(u32, u32),
    /// The magic number or version did not match.
    BadMagic,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::CrcMismatch(want, got) => {
                write!(f, "crc mismatch: stored {want:#010x}, computed {got:#010x}")
            }
            CodecError::BadMagic => write!(f, "bad magic number or version"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Writes an unsigned LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
}

/// Reads a fixed `u32` (little endian) with an EOF check.
pub fn get_u32(buf: &mut impl Buf) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u32_le())
}

/// Reads a fixed `u64` (little endian) with an EOF check.
pub fn get_u64(buf: &mut impl Buf) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u64_le())
}

/// Reads a fixed `i64` (little endian) with an EOF check.
pub fn get_i64(buf: &mut impl Buf) -> Result<i64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_i64_le())
}

/// Reads a single byte with an EOF check.
pub fn get_u8(buf: &mut impl Buf) -> Result<u8, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

/// Reads a fixed `u16` (little endian) with an EOF check.
pub fn get_u16(buf: &mut impl Buf) -> Result<u16, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u16_le())
}

/// CRC-32 (IEEE) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    crc ^ 0xFFFF_FFFF
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_eof_detected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let truncated = &buf[..buf.len() - 1];
        let mut slice = truncated;
        assert_eq!(get_varint(&mut slice), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "C:\\Windows\\System32\\cmd.exe");
        put_str(&mut buf, "");
        let mut slice = &buf[..];
        assert_eq!(
            get_str(&mut slice).unwrap(),
            "C:\\Windows\\System32\\cmd.exe"
        );
        assert_eq!(get_str(&mut slice).unwrap(), "");
    }

    #[test]
    fn string_eof_detected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 100); // claims 100 bytes, provides none
        let mut slice = &buf[..];
        assert_eq!(get_str(&mut slice), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_corruption() {
        let a = crc32(b"system monitoring data");
        let b = crc32(b"system monitoring dat4");
        assert_ne!(a, b);
    }
}
