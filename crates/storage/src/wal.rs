//! Write-ahead log for raw observations.
//!
//! Agents stream observations continuously; the WAL makes ingestion durable
//! before batch commit. Records are framed as `[len][crc32][payload]` so a
//! torn tail (host crash mid-write) is detected and replay stops cleanly at
//! the last intact record — standard embedded-database recovery semantics.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{BufMut, BytesMut};

use aiql_model::{AgentId, IpV4, Operation, Protocol, Timestamp};

use crate::codec::{self, CodecError};
use crate::ingest::{EntitySpec, RawEvent};

const MAGIC: &[u8; 4] = b"AQW1";

/// Errors raised by WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Decoding failure (corrupt payload that passed CRC — format bug).
    Codec(CodecError),
    /// The file does not start with the WAL magic.
    BadHeader,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
            WalError::BadHeader => write!(f, "not a wal file (bad magic)"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<File>,
    records: u64,
}

impl Wal {
    /// Creates (or truncates) a WAL at `path`.
    pub fn create(path: &Path) -> Result<Self, WalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        Ok(Wal {
            writer: BufWriter::new(file),
            records: 0,
        })
    }

    /// Appends one observation.
    pub fn append(&mut self, raw: &RawEvent) -> Result<(), WalError> {
        let mut payload = BytesMut::with_capacity(128);
        encode_raw_event(&mut payload, raw);
        let crc = codec::crc32(&payload);
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc);
        frame.extend_from_slice(&payload);
        self.writer.write_all(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Records appended through this handle.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Replays a WAL file, returning all intact records. Stops (without
    /// error) at the first torn or corrupt frame, mirroring crash recovery.
    pub fn replay(path: &Path) -> Result<Vec<RawEvent>, WalError> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        if reader.read_exact(&mut magic).is_err() || &magic != MAGIC {
            return Err(WalError::BadHeader);
        }
        let mut out = Vec::new();
        loop {
            let mut header = [0u8; 8];
            match reader.read_exact(&mut header) {
                Ok(()) => {}
                Err(_) => break, // clean or torn end
            }
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            let mut payload = vec![0u8; len];
            if reader.read_exact(&mut payload).is_err() {
                break; // torn tail
            }
            let crc = codec::crc32(&payload);
            if crc != stored_crc {
                break; // corrupt frame: stop replay
            }
            let mut slice = payload.as_slice();
            out.push(decode_raw_event(&mut slice)?);
        }
        Ok(out)
    }
}

/// Encodes a raw event payload (shared with tests).
pub fn encode_raw_event(buf: &mut BytesMut, raw: &RawEvent) {
    buf.put_u32_le(raw.agent.raw());
    buf.put_u8(raw.op.index() as u8);
    encode_spec(buf, &raw.subject);
    encode_spec(buf, &raw.object);
    buf.put_i64_le(raw.start_time.micros());
    buf.put_i64_le(raw.end_time.micros());
    codec::put_varint(buf, raw.amount);
    match raw.object_agent {
        Some(a) => {
            buf.put_u8(1);
            buf.put_u32_le(a.raw());
        }
        None => buf.put_u8(0),
    }
}

/// Decodes a raw event payload.
pub fn decode_raw_event(buf: &mut &[u8]) -> Result<RawEvent, CodecError> {
    let agent = AgentId(codec::get_u32(buf)?);
    let op = Operation::from_index(codec::get_u8(buf)? as usize).ok_or(CodecError::BadMagic)?;
    let subject = decode_spec(buf)?;
    let object = decode_spec(buf)?;
    let start_time = Timestamp(codec::get_i64(buf)?);
    let end_time = Timestamp(codec::get_i64(buf)?);
    let amount = codec::get_varint(buf)?;
    let object_agent = if codec::get_u8(buf)? == 1 {
        Some(AgentId(codec::get_u32(buf)?))
    } else {
        None
    };
    Ok(RawEvent {
        agent,
        op,
        subject,
        object,
        object_agent,
        start_time,
        end_time,
        amount,
    })
}

fn encode_spec(buf: &mut BytesMut, spec: &EntitySpec) {
    match spec {
        EntitySpec::Process {
            pid,
            exe_name,
            user,
            cmdline,
        } => {
            buf.put_u8(0);
            buf.put_u32_le(*pid);
            codec::put_str(buf, exe_name);
            codec::put_str(buf, user);
            codec::put_str(buf, cmdline);
        }
        EntitySpec::File { name, owner } => {
            buf.put_u8(1);
            codec::put_str(buf, name);
            codec::put_str(buf, owner);
        }
        EntitySpec::NetConn {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            protocol,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(src_ip.0);
            buf.put_u16_le(*src_port);
            buf.put_u32_le(dst_ip.0);
            buf.put_u16_le(*dst_port);
            buf.put_u8(match protocol {
                Protocol::Tcp => 0,
                Protocol::Udp => 1,
            });
        }
    }
}

fn decode_spec(buf: &mut &[u8]) -> Result<EntitySpec, CodecError> {
    match codec::get_u8(buf)? {
        0 => Ok(EntitySpec::Process {
            pid: codec::get_u32(buf)?,
            exe_name: codec::get_str(buf)?,
            user: codec::get_str(buf)?,
            cmdline: codec::get_str(buf)?,
        }),
        1 => Ok(EntitySpec::File {
            name: codec::get_str(buf)?,
            owner: codec::get_str(buf)?,
        }),
        2 => Ok(EntitySpec::NetConn {
            src_ip: IpV4(codec::get_u32(buf)?),
            src_port: codec::get_u16(buf)?,
            dst_ip: IpV4(codec::get_u32(buf)?),
            dst_port: codec::get_u16(buf)?,
            protocol: match codec::get_u8(buf)? {
                0 => Protocol::Tcp,
                _ => Protocol::Udp,
            },
        }),
        _ => Err(CodecError::BadMagic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Seek;

    fn sample(i: i64) -> RawEvent {
        RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(42, "sqlservr.exe", "mssql"),
            EntitySpec::file("C:\\dumps\\backup1.dmp", "mssql"),
            Timestamp::from_secs(i),
            4096,
        )
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aiql-wal-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmpfile("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        let events: Vec<RawEvent> = (0..10).map(sample).collect();
        for e in &events {
            wal.append(e).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.records(), 10);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let path = tmpfile("torn");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Truncate mid-record to simulate a crash.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = tmpfile("corrupt");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3 {
            wal.append(&sample(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Flip a byte in the middle of the file (inside record payloads).
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        f.seek(std::io::SeekFrom::Start(40)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(std::io::SeekFrom::Start(40)).unwrap();
        f.write_all(&[b[0] ^ 0xFF]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert!(replayed.len() < 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_non_wal_file() {
        let path = tmpfile("badmagic");
        std::fs::write(&path, b"not a wal").unwrap();
        assert!(matches!(Wal::replay(&path), Err(WalError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_spec_kinds_roundtrip() {
        let conn = RawEvent::instant(
            AgentId(9),
            Operation::Connect,
            EntitySpec::process(7, "sbblv.exe", "system"),
            EntitySpec::tcp(
                IpV4::from_octets(10, 0, 0, 2),
                49152,
                IpV4::from_octets(10, 0, 4, 129),
                443,
            ),
            Timestamp::from_secs(1),
            0,
        );
        let mut buf = BytesMut::new();
        encode_raw_event(&mut buf, &conn);
        let mut slice = &buf[..];
        assert_eq!(decode_raw_event(&mut slice).unwrap(), conn);
    }
}
