//! Write-ahead log for raw observations.
//!
//! Agents stream observations continuously; the WAL makes ingestion durable
//! before batch commit. Records are framed as `[len][crc32][payload]` so a
//! torn tail (host crash mid-write) is detected and replay stops cleanly at
//! the last intact record — standard embedded-database recovery semantics.
//!
//! The current format (`AQW2`) tags every payload with a kind byte: event
//! frames carry one raw observation, **commit frames** seal everything
//! since the previous marker into one committed batch. Recovery replays the
//! committed-batch prefix ([`ReplayReport::batches`]) and reports intact
//! events past the last marker separately ([`ReplayReport::uncommitted`]),
//! so a crashed store rebuilds with exactly the batch boundaries — and
//! therefore the physical segment layout — of a store that never crashed.
//! Legacy `AQW1` files (bare event payloads, no markers) still replay, with
//! every intact record treated as one committed batch.
//!
//! A torn or corrupt tail is never an error: [`Wal::replay_report`] returns
//! the intact prefix plus the dropped byte count, and [`Wal::open_append`]
//! repairs the file — truncating the garbage tail — before appending.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, Write};
use std::path::Path;

use bytes::{BufMut, BytesMut};

use aiql_model::{AgentId, IpV4, Operation, Protocol, Timestamp};

use crate::codec::{self, CodecError};
use crate::fault::{FaultWriter, IoFault};
use crate::ingest::{EntitySpec, RawEvent};

/// Legacy format: every payload is a bare event, no commit markers.
const MAGIC_V1: &[u8; 4] = b"AQW1";
/// Current format: payloads are `[kind][body]` (kind 0 = event, 1 = commit).
const MAGIC: &[u8; 4] = b"AQW2";

/// Payload kind: one raw observation.
const KIND_EVENT: u8 = 0;
/// Payload kind: commit marker sealing the batch since the last marker.
/// Body is the varint event count of the sealed batch (validated on
/// replay — a mismatch means the log is corrupt at this point).
const KIND_COMMIT: u8 = 1;

/// Errors raised by WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Decoding failure (corrupt payload that passed CRC — format bug).
    Codec(CodecError),
    /// The file does not start with the WAL magic.
    BadHeader,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
            WalError::BadHeader => write!(f, "not a wal file (bad magic)"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

/// What a replay found: the committed-batch prefix, the intact-but-unsealed
/// tail, and how many bytes of torn/corrupt garbage were dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayReport {
    /// Committed batches, in commit order. Re-ingesting these batch by
    /// batch reproduces the exact commit boundaries of the original store.
    pub batches: Vec<Vec<RawEvent>>,
    /// Intact events appended after the last commit marker (durable but
    /// not yet sealed — a crash interrupted the batch).
    pub uncommitted: Vec<RawEvent>,
    /// Byte length of the intact, frame-aligned prefix (including magic).
    pub valid_len: u64,
    /// Bytes past `valid_len` dropped as torn or corrupt.
    pub dropped_bytes: u64,
}

impl ReplayReport {
    /// Total committed events across all batches.
    pub fn committed_events(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Every intact event, committed or not — the legacy [`Wal::replay`]
    /// view of the log.
    pub fn all_events(&self) -> Vec<RawEvent> {
        let mut out: Vec<RawEvent> = self.batches.iter().flatten().cloned().collect();
        out.extend(self.uncommitted.iter().cloned());
        out
    }

    /// Whether the file had a torn or corrupt tail.
    pub fn torn(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    writer: BufWriter<Box<dyn Write + Send>>,
    records: u64,
    /// Events appended since the last commit marker.
    pending: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.records)
            .field("pending", &self.pending)
            .finish()
    }
}

impl Wal {
    /// Creates (or truncates) a WAL at `path`.
    pub fn create(path: &Path) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Self::create_with(Box::new(file))
    }

    /// Creates a WAL over an arbitrary sink. This is the fault-injection
    /// entry point: wrapping the file in a [`FaultWriter`] simulates a
    /// crash that loses every byte past a chosen offset.
    pub fn create_with(mut sink: Box<dyn Write + Send>) -> Result<Self, WalError> {
        sink.write_all(MAGIC)?;
        Ok(Wal {
            writer: BufWriter::new(sink),
            records: 0,
            pending: 0,
        })
    }

    /// Creates a WAL at `path` whose writes die at byte offset
    /// `fault.kill_at` (magic included). See [`FaultWriter`].
    pub fn create_faulty(path: &Path, fault: IoFault) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Self::create_with(Box::new(FaultWriter::new(file, fault)))
    }

    /// Reopens an existing WAL for appending, repairing a torn tail first:
    /// the file is truncated to the last intact frame, so the garbage a
    /// crash left behind can never shadow future appends. Returns the
    /// replay report alongside the handle.
    pub fn open_append(path: &Path) -> Result<(Self, ReplayReport), WalError> {
        let report = Self::replay_report(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if report.dropped_bytes > 0 {
            file.set_len(report.valid_len)?;
        }
        file.seek(std::io::SeekFrom::End(0))?;
        if report.valid_len < MAGIC.len() as u64 {
            // The creating process crashed before even the magic landed:
            // restart the file as a fresh, empty WAL.
            file.write_all(MAGIC)?;
        }
        let wal = Wal {
            writer: BufWriter::new(Box::new(file)),
            records: (report.committed_events() + report.uncommitted.len()) as u64,
            pending: report.uncommitted.len() as u64,
        };
        Ok((wal, report))
    }

    /// Appends one observation.
    pub fn append(&mut self, raw: &RawEvent) -> Result<(), WalError> {
        let mut payload = BytesMut::with_capacity(128);
        payload.put_u8(KIND_EVENT);
        encode_raw_event(&mut payload, raw);
        self.write_frame(&payload)?;
        self.records += 1;
        self.pending += 1;
        Ok(())
    }

    /// Seals every event since the previous marker into one committed
    /// batch and flushes — the durability point batch commit relies on.
    /// Recovery replays exactly the batches whose markers reached disk.
    pub fn commit(&mut self) -> Result<(), WalError> {
        let mut payload = BytesMut::with_capacity(12);
        payload.put_u8(KIND_COMMIT);
        codec::put_varint(&mut payload, self.pending);
        self.write_frame(&payload)?;
        self.pending = 0;
        self.flush()
    }

    fn write_frame(&mut self, payload: &[u8]) -> Result<(), WalError> {
        let crc = codec::crc32(payload);
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc);
        frame.extend_from_slice(payload);
        self.writer.write_all(&frame)?;
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Records appended through this handle (plus, after
    /// [`Wal::open_append`], the intact records already in the file).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Replays a WAL file, returning all intact events (committed or not).
    /// Stops (without error) at the first torn or corrupt frame, mirroring
    /// crash recovery. Use [`Wal::replay_report`] for commit-boundary
    /// recovery and the dropped-byte accounting.
    pub fn replay(path: &Path) -> Result<Vec<RawEvent>, WalError> {
        Ok(Self::replay_report(path)?.all_events())
    }

    /// Replays a WAL file into a [`ReplayReport`]: committed batches, the
    /// unsealed tail, and how many trailing bytes were dropped as torn or
    /// corrupt. Only a missing/unreadable file or a bad magic is an error —
    /// any damage past the header is recovered around, never propagated.
    pub fn replay_report(path: &Path) -> Result<ReplayReport, WalError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        let mut got = 0;
        while got < magic.len() {
            match reader.read(&mut magic[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) => return Err(WalError::Io(e)),
            }
        }
        if got < magic.len() {
            // Shorter than the header: a crash during creation tore the
            // magic itself. A (possibly empty) prefix of a valid magic is
            // an empty torn WAL; anything else was never a WAL.
            if MAGIC.starts_with(&magic[..got]) || MAGIC_V1.starts_with(&magic[..got]) {
                return Ok(ReplayReport {
                    dropped_bytes: file_len,
                    ..ReplayReport::default()
                });
            }
            return Err(WalError::BadHeader);
        }
        let legacy = match &magic {
            m if m == MAGIC => false,
            m if m == MAGIC_V1 => true,
            _ => return Err(WalError::BadHeader),
        };
        let mut report = ReplayReport {
            valid_len: 4,
            ..ReplayReport::default()
        };
        loop {
            let mut header = [0u8; 8];
            if reader.read_exact(&mut header).is_err() {
                break; // clean or torn end
            }
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
            let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            // A frame that claims more bytes than the file holds is a torn
            // header — bail before trusting the length for an allocation.
            if len > file_len.saturating_sub(report.valid_len + 8) {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            if reader.read_exact(&mut payload).is_err() {
                break; // torn tail
            }
            if codec::crc32(&payload) != stored_crc {
                break; // corrupt frame: stop replay
            }
            let mut slice = payload.as_slice();
            if legacy {
                // v1: bare event payload; a decode failure on a CRC-valid
                // frame still truncates rather than aborts recovery.
                match decode_raw_event(&mut slice) {
                    Ok(e) => report.uncommitted.push(e),
                    Err(_) => break,
                }
            } else {
                match codec::get_u8(&mut slice) {
                    Ok(KIND_EVENT) => match decode_raw_event(&mut slice) {
                        Ok(e) => report.uncommitted.push(e),
                        Err(_) => break,
                    },
                    Ok(KIND_COMMIT) => {
                        let sealed = match codec::get_varint(&mut slice) {
                            Ok(n) => n,
                            Err(_) => break,
                        };
                        if sealed != report.uncommitted.len() as u64 {
                            // The marker disagrees with the events on disk:
                            // corruption. Recover the prefix before it.
                            break;
                        }
                        report.batches.push(std::mem::take(&mut report.uncommitted));
                    }
                    _ => break, // unknown kind: stop at the last good frame
                }
            }
            report.valid_len += 8 + len;
        }
        if legacy && !report.uncommitted.is_empty() {
            // Legacy logs have no markers: every intact record is treated
            // as committed (the pre-AQW2 recovery contract).
            report.batches.push(std::mem::take(&mut report.uncommitted));
        }
        report.dropped_bytes = file_len.saturating_sub(report.valid_len);
        Ok(report)
    }
}

/// Encodes a raw event payload (shared with tests).
pub fn encode_raw_event(buf: &mut BytesMut, raw: &RawEvent) {
    buf.put_u32_le(raw.agent.raw());
    buf.put_u8(raw.op.index() as u8);
    encode_spec(buf, &raw.subject);
    encode_spec(buf, &raw.object);
    buf.put_i64_le(raw.start_time.micros());
    buf.put_i64_le(raw.end_time.micros());
    codec::put_varint(buf, raw.amount);
    match raw.object_agent {
        Some(a) => {
            buf.put_u8(1);
            buf.put_u32_le(a.raw());
        }
        None => buf.put_u8(0),
    }
}

/// Decodes a raw event payload.
pub fn decode_raw_event(buf: &mut &[u8]) -> Result<RawEvent, CodecError> {
    let agent = AgentId(codec::get_u32(buf)?);
    let op = Operation::from_index(codec::get_u8(buf)? as usize).ok_or(CodecError::BadMagic)?;
    let subject = decode_spec(buf)?;
    let object = decode_spec(buf)?;
    let start_time = Timestamp(codec::get_i64(buf)?);
    let end_time = Timestamp(codec::get_i64(buf)?);
    let amount = codec::get_varint(buf)?;
    let object_agent = if codec::get_u8(buf)? == 1 {
        Some(AgentId(codec::get_u32(buf)?))
    } else {
        None
    };
    Ok(RawEvent {
        agent,
        op,
        subject,
        object,
        object_agent,
        start_time,
        end_time,
        amount,
    })
}

fn encode_spec(buf: &mut BytesMut, spec: &EntitySpec) {
    match spec {
        EntitySpec::Process {
            pid,
            exe_name,
            user,
            cmdline,
        } => {
            buf.put_u8(0);
            buf.put_u32_le(*pid);
            codec::put_str(buf, exe_name);
            codec::put_str(buf, user);
            codec::put_str(buf, cmdline);
        }
        EntitySpec::File { name, owner } => {
            buf.put_u8(1);
            codec::put_str(buf, name);
            codec::put_str(buf, owner);
        }
        EntitySpec::NetConn {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            protocol,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(src_ip.0);
            buf.put_u16_le(*src_port);
            buf.put_u32_le(dst_ip.0);
            buf.put_u16_le(*dst_port);
            buf.put_u8(match protocol {
                Protocol::Tcp => 0,
                Protocol::Udp => 1,
            });
        }
    }
}

fn decode_spec(buf: &mut &[u8]) -> Result<EntitySpec, CodecError> {
    match codec::get_u8(buf)? {
        0 => Ok(EntitySpec::Process {
            pid: codec::get_u32(buf)?,
            exe_name: codec::get_str(buf)?,
            user: codec::get_str(buf)?,
            cmdline: codec::get_str(buf)?,
        }),
        1 => Ok(EntitySpec::File {
            name: codec::get_str(buf)?,
            owner: codec::get_str(buf)?,
        }),
        2 => Ok(EntitySpec::NetConn {
            src_ip: IpV4(codec::get_u32(buf)?),
            src_port: codec::get_u16(buf)?,
            dst_ip: IpV4(codec::get_u32(buf)?),
            dst_port: codec::get_u16(buf)?,
            protocol: match codec::get_u8(buf)? {
                0 => Protocol::Tcp,
                _ => Protocol::Udp,
            },
        }),
        _ => Err(CodecError::BadMagic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: i64) -> RawEvent {
        RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(42, "sqlservr.exe", "mssql"),
            EntitySpec::file("C:\\dumps\\backup1.dmp", "mssql"),
            Timestamp::from_secs(i),
            4096,
        )
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aiql-wal-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmpfile("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        let events: Vec<RawEvent> = (0..10).map(sample).collect();
        for e in &events {
            wal.append(e).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.records(), 10);
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let path = tmpfile("torn");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Truncate mid-record to simulate a crash.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 4);
        let report = Wal::replay_report(&path).unwrap();
        assert!(report.torn());
        assert_eq!(report.valid_len + report.dropped_bytes, len - 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let path = tmpfile("corrupt");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3 {
            wal.append(&sample(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Flip a byte in the middle of the file (inside record payloads).
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        f.seek(std::io::SeekFrom::Start(40)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(std::io::SeekFrom::Start(40)).unwrap();
        f.write_all(&[b[0] ^ 0xFF]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert!(replayed.len() < 3);
        let report = Wal::replay_report(&path).unwrap();
        assert!(report.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_non_wal_file() {
        let path = tmpfile("badmagic");
        std::fs::write(&path, b"not a wal").unwrap();
        assert!(matches!(Wal::replay(&path), Err(WalError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_markers_partition_batches() {
        let path = tmpfile("batches");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3 {
            wal.append(&sample(i)).unwrap();
        }
        wal.commit().unwrap();
        for i in 3..5 {
            wal.append(&sample(i)).unwrap();
        }
        wal.commit().unwrap();
        wal.append(&sample(5)).unwrap(); // never sealed
        wal.flush().unwrap();
        drop(wal);
        let report = Wal::replay_report(&path).unwrap();
        assert_eq!(
            report.batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 2]
        );
        assert_eq!(report.uncommitted.len(), 1);
        assert!(!report.torn());
        assert_eq!(report.all_events().len(), 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_repairs_torn_tail_and_continues() {
        let path = tmpfile("repair");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..4 {
            wal.append(&sample(i)).unwrap();
        }
        wal.commit().unwrap();
        wal.append(&sample(99)).unwrap();
        wal.flush().unwrap();
        drop(wal);
        // Tear the last (uncommitted) record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut wal, report) = Wal::open_append(&path).unwrap();
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.uncommitted.len(), 0);
        assert!(report.torn());
        // Repair actually truncated the file.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), report.valid_len);
        // The handle keeps appending where the intact prefix ended.
        wal.append(&sample(5)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let after = Wal::replay_report(&path).unwrap();
        assert_eq!(
            after.batches.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 1]
        );
        assert!(!after.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_replay_as_one_committed_batch() {
        let path = tmpfile("legacy");
        // Hand-write an AQW1 file: magic + two bare event frames.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for i in 0..2 {
            let mut payload = BytesMut::new();
            encode_raw_event(&mut payload, &sample(i));
            let crc = codec::crc32(&payload);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(&path, &bytes).unwrap();
        let report = Wal::replay_report(&path).unwrap();
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].len(), 2);
        assert!(report.uncommitted.is_empty());
        assert!(!report.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_header_is_a_torn_tail_not_an_alloc() {
        let path = tmpfile("hugelen");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&sample(0)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        // Append a frame header claiming 4 GB: recovery must drop it as a
        // torn tail instead of trusting the length.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"junk").unwrap();
        drop(f);
        let report = Wal::replay_report(&path).unwrap();
        assert_eq!(report.committed_events(), 1);
        assert_eq!(report.dropped_bytes, 12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faulty_writer_loses_the_suffix() {
        let path = tmpfile("faulty");
        let mut wal = Wal::create_faulty(&path, IoFault::kill_at(40)).unwrap();
        for i in 0..5 {
            wal.append(&sample(i)).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 40);
        // Whatever survived is a clean prefix with zero committed batches
        // (the commit marker was past the kill offset).
        let report = Wal::replay_report(&path).unwrap();
        assert!(report.batches.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_spec_kinds_roundtrip() {
        let conn = RawEvent::instant(
            AgentId(9),
            Operation::Connect,
            EntitySpec::process(7, "sbblv.exe", "system"),
            EntitySpec::tcp(
                IpV4::from_octets(10, 0, 0, 2),
                49152,
                IpV4::from_octets(10, 0, 4, 129),
                443,
            ),
            Timestamp::from_secs(1),
            0,
        );
        let mut buf = BytesMut::new();
        encode_raw_event(&mut buf, &conn);
        let mut slice = &buf[..];
        assert_eq!(decode_raw_event(&mut slice).unwrap(), conn);
    }
}
