//! A hypertable partition: an ordered run of columnar [`Segment`]s.
//!
//! Batch-commit ingest (the paper's write-throughput optimization) seals
//! one new segment per commit, so a partition receiving many small commits
//! fragments into many small segments — every scan then pays per-segment
//! setup, posting-list unions across tiny lists, and sparse selection
//! vectors. [`Partition::compact`] merges adjacent small segments back into
//! dense runs under a size-tiered policy.
//!
//! The partition exposes a **flat row address space**: row `r` is the
//! `r`-th event of the concatenation of its segments in commit order.
//! Compaction rewrites the physical segments but concatenates them in the
//! same order, so flat row indices — the `row` half of the engine's
//! `EventRef` — are *invariant* under compaction: candidate lists, join
//! keys, and selection vectors built before a compaction stay valid after
//! it.

use aiql_model::{AgentId, CancelToken, Event, EventId, Operation, Timestamp};

use crate::filter::EventFilter;
use crate::segment::Segment;
use crate::stats::SegmentStats;

/// A [`CancelToken`] aborted a compaction pass before it committed.
///
/// The guarantee callers rely on: an aborted pass changed **nothing** —
/// partial merges are discarded, never spliced in, and the affected
/// partition's layout and epoch are exactly as they were. A shutdown or an
/// admission-controller drain can therefore abort a long compaction at any
/// point and retry it later from the same state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionCancelled;

impl std::fmt::Display for CompactionCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compaction cancelled before commit; layout unchanged")
    }
}

impl std::error::Error for CompactionCancelled {}

/// One partition's segment run plus its mutation epoch.
#[derive(Debug, Default)]
pub struct Partition {
    /// Sealed segments in commit order (the last one is the open tail for
    /// row-at-a-time insertion paths such as snapshot replay).
    segments: Vec<Segment>,
    /// Flat-row base of each segment: `bases[i]` is the partition-global
    /// row index of segment `i`'s first row. Ascending; `bases[0] == 0`.
    bases: Vec<u32>,
    /// Total rows across segments (== `bases.last() + segments.last().len()`).
    rows: usize,
    /// Mutation epoch of this partition: bumped on every appended event and
    /// on every layout rewrite (compaction). Plan caches scope their
    /// invalidation to the partitions a cached estimate actually read, so
    /// ingest into — or compaction of — one time bucket leaves cached plans
    /// over other buckets hot.
    epoch: u64,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Partition::default()
    }

    /// Mutation epoch of this partition (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restores a persisted epoch (snapshot loading replays events through
    /// the insertion paths, so the counter must be re-seeded afterwards to
    /// keep the vector monotone across save/load cycles).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Total events across all segments.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the partition holds no events.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of segments (the fragmentation measure: 1 = fully dense).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments in commit order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Earliest event start time (None when empty).
    pub fn min_time(&self) -> Option<Timestamp> {
        self.segments.iter().filter_map(Segment::min_time).min()
    }

    /// Latest event start time (None when empty).
    pub fn max_time(&self) -> Option<Timestamp> {
        self.segments.iter().filter_map(Segment::max_time).max()
    }

    /// Appends one batch commit as a freshly sealed segment (empty batches
    /// seal nothing). Bumps the epoch once per appended event, matching the
    /// per-event granularity row-at-a-time insertion has.
    pub(crate) fn append_commit(&mut self, agent: AgentId, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let mut seg = Segment::new();
        for e in events {
            seg.push(agent, e);
        }
        self.bases.push(self.rows as u32);
        self.rows += seg.len();
        self.epoch += events.len() as u64;
        self.segments.push(seg);
    }

    /// Appends one event to the open tail segment (creating it when the
    /// partition is empty). Snapshot replay uses this so a loaded partition
    /// starts as one dense run; [`Partition::apply_layout`] re-splits it
    /// when the snapshot recorded a fragmented layout.
    pub(crate) fn push_tail(&mut self, agent: AgentId, event: &Event) {
        if self.segments.is_empty() {
            self.segments.push(Segment::new());
            self.bases.push(0);
        }
        self.segments
            .last_mut()
            .expect("tail exists")
            .push(agent, event);
        self.rows += 1;
        self.epoch += 1;
    }

    /// Locates the segment owning flat row `row`: ⟨segment index, local
    /// row⟩. Single-segment partitions (the compacted steady state) resolve
    /// without the search.
    #[inline]
    fn locate(&self, row: u32) -> (usize, u32) {
        if self.segments.len() == 1 {
            return (0, row);
        }
        let i = match self.bases.binary_search(&row) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (i, row - self.bases[i])
    }

    /// Materializes the event at flat row `row`.
    #[inline]
    pub fn event_at(&self, agent: AgentId, row: usize) -> Event {
        let (seg, local) = self.locate(row as u32);
        self.segments[seg].event_at(agent, local as usize)
    }

    /// Event id column accessor (flat row).
    #[inline]
    pub fn id_at(&self, row: u32) -> EventId {
        let (seg, local) = self.locate(row);
        self.segments[seg].id_at(local)
    }

    /// Operation column accessor (flat row).
    #[inline]
    pub fn op_at(&self, row: u32) -> Operation {
        let (seg, local) = self.locate(row);
        self.segments[seg].op_at(local)
    }

    /// Subject entity column accessor (flat row).
    #[inline]
    pub fn subject_at(&self, row: u32) -> aiql_model::EntityId {
        let (seg, local) = self.locate(row);
        self.segments[seg].subject_at(local)
    }

    /// Object entity column accessor (flat row).
    #[inline]
    pub fn object_at(&self, row: u32) -> aiql_model::EntityId {
        let (seg, local) = self.locate(row);
        self.segments[seg].object_at(local)
    }

    /// Both entity columns, resolving the owning segment once (the join
    /// emits both bindings for every appended tuple).
    #[inline]
    pub fn subject_object_at(&self, row: u32) -> (aiql_model::EntityId, aiql_model::EntityId) {
        let (seg, local) = self.locate(row);
        let seg = &self.segments[seg];
        (seg.subject_at(local), seg.object_at(local))
    }

    /// Start-time column accessor (flat row).
    #[inline]
    pub fn start_at(&self, row: u32) -> Timestamp {
        let (seg, local) = self.locate(row);
        self.segments[seg].start_at(local)
    }

    /// End-time column accessor (flat row).
    #[inline]
    pub fn end_at(&self, row: u32) -> Timestamp {
        let (seg, local) = self.locate(row);
        self.segments[seg].end_at(local)
    }

    /// Both time columns of one flat row, resolving the owning segment
    /// once. The engine's join-index build reads start and end for every
    /// candidate; on fragmented partitions this halves the per-row
    /// segment-search cost of separate `start_at`/`end_at` calls.
    #[inline]
    pub fn start_end_at(&self, row: u32) -> (Timestamp, Timestamp) {
        let (seg, local) = self.locate(row);
        self.segments[seg].start_end_at(local)
    }

    /// Min/max event start time across segments (None when empty): the
    /// partition-level zone map time-bucketed join indexes seed their grid
    /// candidates from.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.min_time()?, self.max_time()?))
    }

    /// Amount column accessor (flat row).
    #[inline]
    pub fn amount_at(&self, row: u32) -> u64 {
        let (seg, local) = self.locate(row);
        self.segments[seg].amount_at(local)
    }

    /// Events with the given operation, summed across segments.
    pub fn op_count(&self, op: Operation) -> usize {
        self.segments.iter().map(|s| s.op_count(op)).sum()
    }

    /// Whether any segment can contain matches for the filter's window.
    pub fn overlaps_window(&self, filter: &EventFilter) -> bool {
        self.segments.iter().any(|s| s.overlaps_window(filter))
    }

    /// Selection-vector scan over every segment: per-segment sorted row ids
    /// are offset by the segment base and concatenated, which keeps the
    /// partition-global output sorted (bases ascend in commit order).
    pub fn select(
        &self,
        agent: AgentId,
        filter: &EventFilter,
        cost_based: bool,
        vectorized: bool,
    ) -> Vec<u32> {
        match self.segments.as_slice() {
            [] => Vec::new(),
            [seg] => seg.select(agent, filter, cost_based, vectorized),
            segs => {
                let mut out = Vec::new();
                for (seg, &base) in segs.iter().zip(&self.bases) {
                    let rows = seg.select(agent, filter, cost_based, vectorized);
                    out.extend(rows.into_iter().map(|r| r + base));
                }
                out
            }
        }
    }

    /// Index-assisted scan across segments in commit order.
    pub fn scan(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for seg in &self.segments {
            seg.scan(agent, filter, f);
        }
    }

    /// Unconditional per-row scan across segments in commit order (the
    /// unoptimized access path).
    pub fn scan_full(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for seg in &self.segments {
            seg.scan_full(agent, filter, f);
        }
    }

    /// Estimated match count for a filter, summed across segments.
    pub fn estimate(&self, filter: &EventFilter) -> usize {
        self.segments.iter().map(|s| s.estimate(filter)).sum()
    }

    /// Partition-level statistics: per-segment stats summed. Distinct
    /// subject/object counts are summed too — an upper bound when entities
    /// repeat across segments (exact again once compacted to one segment).
    pub fn stats(&self) -> SegmentStats {
        let mut agg = SegmentStats {
            events: 0,
            per_op: [0; aiql_model::OPERATION_COUNT],
            distinct_subjects: 0,
            distinct_objects: 0,
            min_time: self.min_time().unwrap_or(Timestamp(0)),
            max_time: self.max_time().unwrap_or(Timestamp(0)),
        };
        for seg in &self.segments {
            let s = seg.stats();
            agg.events += s.events;
            for (a, b) in agg.per_op.iter_mut().zip(s.per_op) {
                *a += b;
            }
            agg.distinct_subjects += s.distinct_subjects;
            agg.distinct_objects += s.distinct_objects;
        }
        agg
    }

    /// Size-tiered compaction: greedily merges adjacent runs of segments
    /// whose combined rows fit `max_rows` into one dense segment, left to
    /// right. Returns whether the layout changed; a change bumps the epoch
    /// once (the rewrite invalidates plan-cache entries over this partition
    /// only — the compaction guarantee the engine's partition-scoped
    /// invalidation relies on). Flat row indices are preserved (see the
    /// module docs), so no reader-visible state changes besides density.
    pub(crate) fn compact(&mut self, max_rows: usize) -> bool {
        // Without a token the pass can't be cancelled.
        self.compact_cancellable(max_rows, None).unwrap_or(false)
    }

    /// [`Partition::compact`] with cooperative cancellation: the token is
    /// polled before each run merge (the unit of real work). The pass is
    /// **plan-then-merge** — run boundaries are planned read-only, merges
    /// build into a side buffer, and the live layout is replaced only after
    /// every merge completed — so a cancelled pass discards its partial
    /// output and leaves segments, flat-row bases, and the epoch exactly as
    /// they were.
    pub(crate) fn compact_cancellable(
        &mut self,
        max_rows: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<bool, CompactionCancelled> {
        if self.segments.len() < 2 {
            return Ok(false);
        }
        // Phase 1 — plan: greedy left-to-right run boundaries over the
        // current layout (read-only; same tiering rule as the original
        // in-place algorithm, so singleton oversized segments stand alone).
        let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut run_rows = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            if i > start && run_rows + seg.len() > max_rows {
                runs.push(start..i);
                start = i;
                run_rows = 0;
            }
            run_rows += seg.len();
        }
        runs.push(start..self.segments.len());
        if runs.iter().all(|r| r.len() < 2) {
            return Ok(false);
        }
        // Phase 2 — merge into a side buffer, polling the token before
        // each run merge. Nothing in the live layout has moved yet, so a
        // cancel here simply drops the partial buffer.
        let mut merged: Vec<Option<Segment>> = Vec::with_capacity(runs.len());
        for run in &runs {
            if run.len() < 2 {
                merged.push(None);
                continue;
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(CompactionCancelled);
            }
            merged.push(Some(Segment::merge(&self.segments[run.clone()])));
        }
        // Phase 3 — commit: splice merged runs over the originals they
        // replace, keeping singleton runs' segments as they are.
        let mut old = std::mem::take(&mut self.segments).into_iter();
        let mut out: Vec<Segment> = Vec::with_capacity(runs.len());
        for (run, m) in runs.iter().zip(merged) {
            match m {
                Some(seg) => {
                    old.by_ref().take(run.len()).for_each(drop);
                    out.push(seg);
                }
                None => out.extend(old.by_ref().take(1)),
            }
        }
        self.segments = out;
        self.rebuild_bases();
        self.epoch += 1;
        Ok(true)
    }

    /// Re-splits the partition's flat rows into segments of the given
    /// lengths (snapshot loading restores the persisted physical layout
    /// with this — replay first lands everything in one tail segment).
    /// Lengths must sum to the current row count; a mismatched layout is
    /// ignored (the dense single-segment replay layout stands).
    pub(crate) fn apply_layout(&mut self, agent: AgentId, lens: &[u32]) {
        let total: u64 = lens.iter().map(|&l| u64::from(l)).sum();
        if total != self.rows as u64 || lens.contains(&0) || lens.len() <= 1 {
            return;
        }
        let mut segments = Vec::with_capacity(lens.len());
        let mut row = 0usize;
        for &len in lens {
            let mut seg = Segment::new();
            for _ in 0..len {
                seg.push(agent, &self.event_at(agent, row));
                row += 1;
            }
            segments.push(seg);
        }
        self.segments = segments;
        self.rebuild_bases();
    }

    fn rebuild_bases(&mut self) {
        self.bases.clear();
        let mut base = 0u32;
        for seg in &self.segments {
            self.bases.push(base);
            base += seg.len() as u32;
        }
        self.rows = base as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{EventFilter, OpSet};
    use aiql_model::{EntityId, TimeWindow};

    fn mk_event(id: u64, op: Operation, subj: u32, obj: u32, t: i64) -> Event {
        Event {
            id: EventId(id),
            agent: AgentId(1),
            op,
            subject: EntityId(subj),
            object: EntityId(obj),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 10),
            amount: id * 3,
        }
    }

    fn fragmented(commits: usize, per_commit: usize) -> Partition {
        let mut p = Partition::new();
        let mut id = 0u64;
        for _ in 0..commits {
            let events: Vec<Event> = (0..per_commit)
                .map(|_| {
                    let e = mk_event(
                        id,
                        match id % 3 {
                            0 => Operation::Read,
                            1 => Operation::Write,
                            _ => Operation::Connect,
                        },
                        (id % 5) as u32,
                        10 + (id % 4) as u32,
                        id as i64 * 7,
                    );
                    id += 1;
                    e
                })
                .collect();
            p.append_commit(AgentId(1), &events);
        }
        p
    }

    #[test]
    fn commits_seal_segments_and_flat_rows_concatenate() {
        let p = fragmented(5, 4);
        assert_eq!(p.segment_count(), 5);
        assert_eq!(p.len(), 20);
        for row in 0..20u32 {
            assert_eq!(p.id_at(row), EventId(u64::from(row)), "row {row}");
        }
    }

    #[test]
    fn compaction_preserves_flat_rows_and_scans() {
        let mut p = fragmented(7, 3);
        let filter = EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Read]));
        let before_select = p.select(AgentId(1), &filter, true, true);
        let before: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        let epoch_before = p.epoch();
        assert!(p.compact(usize::MAX));
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.epoch(), epoch_before + 1, "layout rewrite bumps once");
        let after: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, after, "flat rows invariant under compaction");
        assert_eq!(before_select, p.select(AgentId(1), &filter, true, true));
        assert!(!p.compact(usize::MAX), "already dense: no-op");
    }

    #[test]
    fn tiered_compaction_respects_max_rows() {
        let mut p = fragmented(6, 10); // 60 rows in 6 segments
        assert!(p.compact(25));
        // Greedy runs of ≤25 rows: 2+2+2 segments → 3 merged runs of 20.
        assert_eq!(p.segment_count(), 3);
        assert!(p.segments().iter().all(|s| s.len() <= 25));
        assert_eq!(p.len(), 60);
    }

    #[test]
    fn oversized_segment_survives_compaction_alone() {
        let mut p = Partition::new();
        let big: Vec<Event> = (0..30)
            .map(|i| mk_event(i, Operation::Read, 1, 2, i as i64))
            .collect();
        p.append_commit(AgentId(1), &big);
        let small: Vec<Event> = (30..34)
            .map(|i| mk_event(i, Operation::Write, 1, 2, i as i64))
            .collect();
        p.append_commit(AgentId(1), &small);
        p.append_commit(
            AgentId(1),
            &small
                .iter()
                .map(|e| {
                    let mut e = *e;
                    e.id = EventId(e.id.raw() + 4);
                    e
                })
                .collect::<Vec<_>>(),
        );
        assert!(p.compact(10));
        // The 30-row segment exceeds the tier but must stand; the two small
        // commits merge.
        assert_eq!(p.segment_count(), 2);
        assert_eq!(p.segments()[0].len(), 30);
        assert_eq!(p.segments()[1].len(), 8);
    }

    #[test]
    fn cancelled_compaction_changes_nothing() {
        let mut p = fragmented(7, 3);
        let before: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        let segs_before = p.segment_count();
        let epoch_before = p.epoch();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            p.compact_cancellable(usize::MAX, Some(&cancel)),
            Err(CompactionCancelled)
        );
        // The guarantee: an aborted pass is a no-op — layout, rows, epoch.
        assert_eq!(p.segment_count(), segs_before);
        assert_eq!(p.epoch(), epoch_before);
        let after: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, after);
        // The same pass retried with a live token completes normally.
        assert_eq!(
            p.compact_cancellable(usize::MAX, Some(&CancelToken::new())),
            Ok(true)
        );
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.epoch(), epoch_before + 1);
        let merged: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, merged, "flat rows invariant after retry");
    }

    #[test]
    fn uncancelled_token_matches_plain_compact() {
        let mut a = fragmented(6, 10);
        let mut b = fragmented(6, 10);
        assert_eq!(
            a.compact_cancellable(25, Some(&CancelToken::new())),
            Ok(b.compact(25))
        );
        assert_eq!(a.segment_count(), b.segment_count());
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn select_matches_scan_full_across_fragmentation() {
        let p = fragmented(9, 5);
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(30), Timestamp(200))),
        ];
        for filter in filters {
            let rows = p.select(AgentId(1), &filter, true, true);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted flat rows");
            let got: Vec<EventId> = rows.iter().map(|&r| p.id_at(r)).collect();
            let mut want = Vec::new();
            p.scan_full(AgentId(1), &filter, &mut |e| want.push(e.id));
            assert_eq!(got, want, "filter {filter:?}");
        }
    }

    #[test]
    fn apply_layout_resplits_tail() {
        let mut replay = Partition::new();
        let frag = fragmented(4, 3);
        for r in 0..frag.len() {
            replay.push_tail(AgentId(1), &frag.event_at(AgentId(1), r));
        }
        assert_eq!(replay.segment_count(), 1);
        replay.apply_layout(AgentId(1), &[3, 3, 3, 3]);
        assert_eq!(replay.segment_count(), 4);
        for r in 0..frag.len() as u32 {
            assert_eq!(replay.id_at(r), frag.id_at(r));
        }
        // Mismatched layouts are ignored.
        replay.apply_layout(AgentId(1), &[5, 5]);
        assert_eq!(replay.segment_count(), 4);
    }
}
