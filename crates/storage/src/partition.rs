//! A hypertable partition: an ordered run of columnar [`Segment`]s.
//!
//! Batch-commit ingest (the paper's write-throughput optimization) seals
//! one new segment per commit, so a partition receiving many small commits
//! fragments into many small segments — every scan then pays per-segment
//! setup, posting-list unions across tiny lists, and sparse selection
//! vectors. [`Partition::compact`] merges adjacent small segments back into
//! dense runs under a size-tiered policy.
//!
//! The partition exposes a **flat row address space**: row `r` is the
//! `r`-th event of the concatenation of its segments in commit order.
//! Compaction rewrites the physical segments but concatenates them in the
//! same order, so flat row indices — the `row` half of the engine's
//! `EventRef` — are *invariant* under compaction: candidate lists, join
//! keys, and selection vectors built before a compaction stay valid after
//! it.

use std::sync::Arc;

use aiql_model::{AgentId, CancelToken, Event, EventId, Operation, Timestamp};

use crate::filter::EventFilter;
use crate::segment::Segment;
use crate::stats::SegmentStats;

/// A [`CancelToken`] aborted a compaction pass before it committed.
///
/// The guarantee callers rely on: an aborted pass changed **nothing** —
/// partial merges are discarded, never spliced in, and the affected
/// partition's layout and epoch are exactly as they were. A shutdown or an
/// admission-controller drain can therefore abort a long compaction at any
/// point and retry it later from the same state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionCancelled;

impl std::fmt::Display for CompactionCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compaction cancelled before commit; layout unchanged")
    }
}

impl std::error::Error for CompactionCancelled {}

/// One partition's segment run plus its mutation epoch.
///
/// Segments come in two flavors: **sealed** segments are immutable and
/// shared (`Arc`), so cloning a partition — the snapshot-publish path —
/// costs one pointer clone per segment; the **novelty overlay** is the
/// single open tail segment absorbing recent batch commits. Novelty rows
/// occupy the end of the flat row space, so sealing the overlay into the
/// sealed run (an `Arc` move) never renumbers a row.
#[derive(Debug, Default, Clone)]
pub struct Partition {
    /// Sealed (immutable) segments in commit order.
    segments: Vec<Arc<Segment>>,
    /// Flat-row base of each sealed segment: `bases[i]` is the
    /// partition-global row index of segment `i`'s first row. Ascending;
    /// `bases[0] == 0`.
    bases: Vec<u32>,
    /// The novelty overlay: one open tail segment holding events committed
    /// since the last flush. Mutated through `Arc::make_mut`, so a clone
    /// held by a published snapshot keeps reading the pre-mutation overlay
    /// while the writer appends — the copy cost is bounded by the flush
    /// threshold. Empty when the overlay is disabled (flush threshold 0
    /// seals every commit immediately).
    novelty: Arc<Segment>,
    /// Total rows across sealed segments *and* the novelty overlay.
    rows: usize,
    /// Mutation epoch of this partition: bumped once per batch commit and
    /// on every layout rewrite (compaction). Plan caches scope their
    /// invalidation to the partitions a cached estimate actually read, so
    /// ingest into — or compaction of — one time bucket leaves cached plans
    /// over other buckets hot.
    epoch: u64,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Partition::default()
    }

    /// Mutation epoch of this partition (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restores a persisted epoch (snapshot loading replays events through
    /// the insertion paths, so the counter must be re-seeded afterwards to
    /// keep the vector monotone across save/load cycles).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Total events across all segments.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the partition holds no events.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of segments (the fragmentation measure: 1 = fully dense). A
    /// non-empty novelty overlay counts as one segment — scans pay its
    /// per-segment setup like any other.
    pub fn segment_count(&self) -> usize {
        self.segments.len() + usize::from(!self.novelty.is_empty())
    }

    /// Number of *sealed* segments — what the automatic compaction trigger
    /// watches (the overlay is flushed by its own threshold, not merged).
    pub fn sealed_segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The sealed segments in commit order (excludes the novelty overlay;
    /// see [`Partition::novelty_len`]).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Events currently in the novelty overlay (0 = fully sealed).
    pub fn novelty_len(&self) -> usize {
        self.novelty.len()
    }

    /// Rows in sealed segments (the flat-row base of the novelty overlay).
    #[inline]
    fn sealed_rows(&self) -> usize {
        self.rows - self.novelty.len()
    }

    /// Earliest event start time (None when empty).
    pub fn min_time(&self) -> Option<Timestamp> {
        self.segments
            .iter()
            .filter_map(|s| s.min_time())
            .chain(self.novelty.min_time())
            .min()
    }

    /// Latest event start time (None when empty).
    pub fn max_time(&self) -> Option<Timestamp> {
        self.segments
            .iter()
            .filter_map(|s| s.max_time())
            .chain(self.novelty.max_time())
            .max()
    }

    /// Appends one batch commit as a freshly sealed segment (empty batches
    /// seal nothing). Bumps the epoch once per batch — the granularity plan
    /// caches invalidate at.
    pub(crate) fn append_commit(&mut self, agent: AgentId, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        debug_assert!(
            self.novelty.is_empty(),
            "sealed commits and the novelty overlay do not interleave"
        );
        let mut seg = Segment::new();
        for e in events {
            seg.push(agent, e);
        }
        self.bases.push(self.sealed_rows() as u32);
        self.rows += seg.len();
        self.epoch += 1;
        self.segments.push(Arc::new(seg));
    }

    /// Appends one batch commit into the novelty overlay, sealing the
    /// overlay into the sealed run once it reaches `flush_rows`. Returns
    /// whether a flush happened. Bumps the epoch once per batch.
    pub(crate) fn append_novelty(
        &mut self,
        agent: AgentId,
        events: &[Event],
        flush_rows: usize,
    ) -> bool {
        if events.is_empty() {
            return false;
        }
        let novelty = Arc::make_mut(&mut self.novelty);
        for e in events {
            novelty.push(agent, e);
        }
        self.rows += events.len();
        self.epoch += 1;
        if self.novelty.len() >= flush_rows {
            self.flush_novelty()
        } else {
            false
        }
    }

    /// Seals the novelty overlay into the sealed run (an `Arc` move — no
    /// rows are copied or renumbered). Returns whether anything flushed.
    pub(crate) fn flush_novelty(&mut self) -> bool {
        if self.novelty.is_empty() {
            return false;
        }
        self.bases.push(self.sealed_rows() as u32);
        let sealed = std::mem::replace(&mut self.novelty, Arc::new(Segment::new()));
        self.segments.push(sealed);
        true
    }

    /// Appends one event to the novelty overlay. Snapshot replay uses this
    /// so a loaded partition starts as one dense run;
    /// [`Partition::apply_layout`] re-splits it into the persisted sealed
    /// layout (and residual overlay) afterwards.
    pub(crate) fn push_tail(&mut self, agent: AgentId, event: &Event) {
        Arc::make_mut(&mut self.novelty).push(agent, event);
        self.rows += 1;
        self.epoch += 1;
    }

    /// Locates the segment owning flat row `row`: ⟨segment, local row⟩.
    /// Novelty rows sit past every sealed base; single-sealed-segment
    /// partitions (the compacted steady state) resolve without the search.
    #[inline]
    fn locate(&self, row: u32) -> (&Segment, u32) {
        let sealed = self.sealed_rows() as u32;
        if row >= sealed {
            return (&self.novelty, row - sealed);
        }
        if self.segments.len() == 1 {
            return (&self.segments[0], row);
        }
        let i = match self.bases.binary_search(&row) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (&self.segments[i], row - self.bases[i])
    }

    /// Materializes the event at flat row `row`.
    #[inline]
    pub fn event_at(&self, agent: AgentId, row: usize) -> Event {
        let (seg, local) = self.locate(row as u32);
        seg.event_at(agent, local as usize)
    }

    /// Event id column accessor (flat row).
    #[inline]
    pub fn id_at(&self, row: u32) -> EventId {
        let (seg, local) = self.locate(row);
        seg.id_at(local)
    }

    /// Operation column accessor (flat row).
    #[inline]
    pub fn op_at(&self, row: u32) -> Operation {
        let (seg, local) = self.locate(row);
        seg.op_at(local)
    }

    /// Subject entity column accessor (flat row).
    #[inline]
    pub fn subject_at(&self, row: u32) -> aiql_model::EntityId {
        let (seg, local) = self.locate(row);
        seg.subject_at(local)
    }

    /// Object entity column accessor (flat row).
    #[inline]
    pub fn object_at(&self, row: u32) -> aiql_model::EntityId {
        let (seg, local) = self.locate(row);
        seg.object_at(local)
    }

    /// Both entity columns, resolving the owning segment once (the join
    /// emits both bindings for every appended tuple).
    #[inline]
    pub fn subject_object_at(&self, row: u32) -> (aiql_model::EntityId, aiql_model::EntityId) {
        let (seg, local) = self.locate(row);
        (seg.subject_at(local), seg.object_at(local))
    }

    /// Start-time column accessor (flat row).
    #[inline]
    pub fn start_at(&self, row: u32) -> Timestamp {
        let (seg, local) = self.locate(row);
        seg.start_at(local)
    }

    /// End-time column accessor (flat row).
    #[inline]
    pub fn end_at(&self, row: u32) -> Timestamp {
        let (seg, local) = self.locate(row);
        seg.end_at(local)
    }

    /// Both time columns of one flat row, resolving the owning segment
    /// once. The engine's join-index build reads start and end for every
    /// candidate; on fragmented partitions this halves the per-row
    /// segment-search cost of separate `start_at`/`end_at` calls.
    #[inline]
    pub fn start_end_at(&self, row: u32) -> (Timestamp, Timestamp) {
        let (seg, local) = self.locate(row);
        seg.start_end_at(local)
    }

    /// Min/max event start time across segments (None when empty): the
    /// partition-level zone map time-bucketed join indexes seed their grid
    /// candidates from.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.min_time()?, self.max_time()?))
    }

    /// Amount column accessor (flat row).
    #[inline]
    pub fn amount_at(&self, row: u32) -> u64 {
        let (seg, local) = self.locate(row);
        seg.amount_at(local)
    }

    /// Sealed segments ⊕ novelty overlay, in flat-row order (the union every
    /// whole-partition read path walks).
    fn all_segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments
            .iter()
            .map(|s| s.as_ref())
            .chain((!self.novelty.is_empty()).then(|| self.novelty.as_ref()))
    }

    /// Events with the given operation, summed across segments.
    pub fn op_count(&self, op: Operation) -> usize {
        self.all_segments().map(|s| s.op_count(op)).sum()
    }

    /// Whether any segment can contain matches for the filter's window.
    pub fn overlaps_window(&self, filter: &EventFilter) -> bool {
        self.all_segments().any(|s| s.overlaps_window(filter))
    }

    /// Selection-vector scan over every segment (sealed ⊕ novelty):
    /// per-segment sorted row ids are offset by the segment base and
    /// concatenated, which keeps the partition-global output sorted (bases
    /// ascend in commit order; novelty rows occupy the end).
    pub fn select(
        &self,
        agent: AgentId,
        filter: &EventFilter,
        cost_based: bool,
        vectorized: bool,
    ) -> Vec<u32> {
        if self.novelty.is_empty() {
            if let [seg] = self.segments.as_slice() {
                return seg.select(agent, filter, cost_based, vectorized);
            }
        } else if self.segments.is_empty() {
            return self.novelty.select(agent, filter, cost_based, vectorized);
        }
        let mut out = Vec::new();
        let novelty_base = self.sealed_rows() as u32;
        for (seg, base) in self
            .segments
            .iter()
            .map(|s| s.as_ref())
            .zip(self.bases.iter().copied())
            .chain((!self.novelty.is_empty()).then(|| (self.novelty.as_ref(), novelty_base)))
        {
            let rows = seg.select(agent, filter, cost_based, vectorized);
            out.extend(rows.into_iter().map(|r| r + base));
        }
        out
    }

    /// Index-assisted scan across segments in commit order.
    pub fn scan(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for seg in self.all_segments() {
            seg.scan(agent, filter, f);
        }
    }

    /// Unconditional per-row scan across segments in commit order (the
    /// unoptimized access path).
    pub fn scan_full(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for seg in self.all_segments() {
            seg.scan_full(agent, filter, f);
        }
    }

    /// Estimated match count for a filter, summed across segments.
    pub fn estimate(&self, filter: &EventFilter) -> usize {
        self.all_segments().map(|s| s.estimate(filter)).sum()
    }

    /// Partition-level statistics: per-segment stats summed. Distinct
    /// subject/object counts are summed too — an upper bound when entities
    /// repeat across segments (exact again once compacted to one segment).
    pub fn stats(&self) -> SegmentStats {
        let mut agg = SegmentStats {
            events: 0,
            per_op: [0; aiql_model::OPERATION_COUNT],
            distinct_subjects: 0,
            distinct_objects: 0,
            min_time: self.min_time().unwrap_or(Timestamp(0)),
            max_time: self.max_time().unwrap_or(Timestamp(0)),
        };
        for seg in self.all_segments() {
            let s = seg.stats();
            agg.events += s.events;
            for (a, b) in agg.per_op.iter_mut().zip(s.per_op) {
                *a += b;
            }
            agg.distinct_subjects += s.distinct_subjects;
            agg.distinct_objects += s.distinct_objects;
        }
        agg
    }

    /// Size-tiered compaction: greedily merges adjacent runs of segments
    /// whose combined rows fit `max_rows` into one dense segment, left to
    /// right. Returns whether the layout changed; a change bumps the epoch
    /// once (the rewrite invalidates plan-cache entries over this partition
    /// only — the compaction guarantee the engine's partition-scoped
    /// invalidation relies on). Flat row indices are preserved (see the
    /// module docs), so no reader-visible state changes besides density.
    pub(crate) fn compact(&mut self, max_rows: usize) -> bool {
        // Without a token the pass can't be cancelled.
        self.compact_cancellable(max_rows, None).unwrap_or(false)
    }

    /// [`Partition::compact`] with cooperative cancellation: the token is
    /// polled before each run merge (the unit of real work). The pass is
    /// **plan-then-merge** — run boundaries are planned read-only, merges
    /// build into a side buffer, and the live layout is replaced only after
    /// every merge completed — so a cancelled pass discards its partial
    /// output and leaves segments, flat-row bases, and the epoch exactly as
    /// they were.
    pub(crate) fn compact_cancellable(
        &mut self,
        max_rows: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<bool, CompactionCancelled> {
        if self.segments.len() < 2 {
            return Ok(false);
        }
        // Phase 1 — plan: greedy left-to-right run boundaries over the
        // current layout (read-only; same tiering rule as the original
        // in-place algorithm, so singleton oversized segments stand alone).
        let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut run_rows = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            if i > start && run_rows + seg.len() > max_rows {
                runs.push(start..i);
                start = i;
                run_rows = 0;
            }
            run_rows += seg.len();
        }
        runs.push(start..self.segments.len());
        if runs.iter().all(|r| r.len() < 2) {
            return Ok(false);
        }
        // Phase 2 — merge into a side buffer, polling the token before
        // each run merge. Nothing in the live layout has moved yet, so a
        // cancel here simply drops the partial buffer.
        let mut merged: Vec<Option<Segment>> = Vec::with_capacity(runs.len());
        for run in &runs {
            if run.len() < 2 {
                merged.push(None);
                continue;
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(CompactionCancelled);
            }
            merged.push(Some(Segment::merge(&self.segments[run.clone()])));
        }
        // Phase 3 — commit: splice merged runs over the originals they
        // replace, keeping singleton runs' segments as they are.
        let mut old = std::mem::take(&mut self.segments).into_iter();
        let mut out: Vec<Arc<Segment>> = Vec::with_capacity(runs.len());
        for (run, m) in runs.iter().zip(merged) {
            match m {
                Some(seg) => {
                    old.by_ref().take(run.len()).for_each(drop);
                    out.push(Arc::new(seg));
                }
                None => out.extend(old.by_ref().take(1)),
            }
        }
        self.segments = out;
        self.rebuild_bases();
        self.epoch += 1;
        Ok(true)
    }

    /// Re-splits the partition's flat rows into sealed segments of the
    /// given lengths plus a trailing novelty overlay of `novelty_rows`
    /// (snapshot loading restores the persisted physical layout with this —
    /// replay first lands everything in the overlay). The lengths plus
    /// `novelty_rows` must sum to the current row count; a mismatched
    /// layout is ignored (the dense replay layout stands).
    pub(crate) fn apply_layout(&mut self, agent: AgentId, lens: &[u32], novelty_rows: u32) {
        let total: u64 = lens.iter().map(|&l| u64::from(l)).sum::<u64>() + u64::from(novelty_rows);
        if total != self.rows as u64 || lens.contains(&0) {
            return;
        }
        if self.segments.is_empty() && lens.is_empty() {
            // Replay already landed everything in the overlay.
            return;
        }
        if self.segments.is_empty() && novelty_rows == 0 && lens.len() == 1 {
            // One dense sealed segment: seal the replay overlay wholesale.
            self.flush_novelty();
            return;
        }
        let mut segments = Vec::with_capacity(lens.len());
        let mut row = 0usize;
        for &len in lens {
            let mut seg = Segment::new();
            for _ in 0..len {
                seg.push(agent, &self.event_at(agent, row));
                row += 1;
            }
            segments.push(Arc::new(seg));
        }
        let mut novelty = Segment::new();
        for _ in 0..novelty_rows {
            novelty.push(agent, &self.event_at(agent, row));
            row += 1;
        }
        self.segments = segments;
        self.novelty = Arc::new(novelty);
        self.rebuild_bases();
    }

    fn rebuild_bases(&mut self) {
        self.bases.clear();
        let mut base = 0u32;
        for seg in &self.segments {
            self.bases.push(base);
            base += seg.len() as u32;
        }
        self.rows = base as usize + self.novelty.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{EventFilter, OpSet};
    use aiql_model::{EntityId, TimeWindow};

    fn mk_event(id: u64, op: Operation, subj: u32, obj: u32, t: i64) -> Event {
        Event {
            id: EventId(id),
            agent: AgentId(1),
            op,
            subject: EntityId(subj),
            object: EntityId(obj),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 10),
            amount: id * 3,
        }
    }

    fn fragmented(commits: usize, per_commit: usize) -> Partition {
        let mut p = Partition::new();
        let mut id = 0u64;
        for _ in 0..commits {
            let events: Vec<Event> = (0..per_commit)
                .map(|_| {
                    let e = mk_event(
                        id,
                        match id % 3 {
                            0 => Operation::Read,
                            1 => Operation::Write,
                            _ => Operation::Connect,
                        },
                        (id % 5) as u32,
                        10 + (id % 4) as u32,
                        id as i64 * 7,
                    );
                    id += 1;
                    e
                })
                .collect();
            p.append_commit(AgentId(1), &events);
        }
        p
    }

    #[test]
    fn commits_seal_segments_and_flat_rows_concatenate() {
        let p = fragmented(5, 4);
        assert_eq!(p.segment_count(), 5);
        assert_eq!(p.len(), 20);
        for row in 0..20u32 {
            assert_eq!(p.id_at(row), EventId(u64::from(row)), "row {row}");
        }
    }

    #[test]
    fn compaction_preserves_flat_rows_and_scans() {
        let mut p = fragmented(7, 3);
        let filter = EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Read]));
        let before_select = p.select(AgentId(1), &filter, true, true);
        let before: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        let epoch_before = p.epoch();
        assert!(p.compact(usize::MAX));
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.epoch(), epoch_before + 1, "layout rewrite bumps once");
        let after: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, after, "flat rows invariant under compaction");
        assert_eq!(before_select, p.select(AgentId(1), &filter, true, true));
        assert!(!p.compact(usize::MAX), "already dense: no-op");
    }

    #[test]
    fn tiered_compaction_respects_max_rows() {
        let mut p = fragmented(6, 10); // 60 rows in 6 segments
        assert!(p.compact(25));
        // Greedy runs of ≤25 rows: 2+2+2 segments → 3 merged runs of 20.
        assert_eq!(p.segment_count(), 3);
        assert!(p.segments().iter().all(|s| s.len() <= 25));
        assert_eq!(p.len(), 60);
    }

    #[test]
    fn oversized_segment_survives_compaction_alone() {
        let mut p = Partition::new();
        let big: Vec<Event> = (0..30)
            .map(|i| mk_event(i, Operation::Read, 1, 2, i as i64))
            .collect();
        p.append_commit(AgentId(1), &big);
        let small: Vec<Event> = (30..34)
            .map(|i| mk_event(i, Operation::Write, 1, 2, i as i64))
            .collect();
        p.append_commit(AgentId(1), &small);
        p.append_commit(
            AgentId(1),
            &small
                .iter()
                .map(|e| {
                    let mut e = *e;
                    e.id = EventId(e.id.raw() + 4);
                    e
                })
                .collect::<Vec<_>>(),
        );
        assert!(p.compact(10));
        // The 30-row segment exceeds the tier but must stand; the two small
        // commits merge.
        assert_eq!(p.segment_count(), 2);
        assert_eq!(p.segments()[0].len(), 30);
        assert_eq!(p.segments()[1].len(), 8);
    }

    #[test]
    fn cancelled_compaction_changes_nothing() {
        let mut p = fragmented(7, 3);
        let before: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        let segs_before = p.segment_count();
        let epoch_before = p.epoch();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            p.compact_cancellable(usize::MAX, Some(&cancel)),
            Err(CompactionCancelled)
        );
        // The guarantee: an aborted pass is a no-op — layout, rows, epoch.
        assert_eq!(p.segment_count(), segs_before);
        assert_eq!(p.epoch(), epoch_before);
        let after: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, after);
        // The same pass retried with a live token completes normally.
        assert_eq!(
            p.compact_cancellable(usize::MAX, Some(&CancelToken::new())),
            Ok(true)
        );
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.epoch(), epoch_before + 1);
        let merged: Vec<Event> = (0..p.len()).map(|r| p.event_at(AgentId(1), r)).collect();
        assert_eq!(before, merged, "flat rows invariant after retry");
    }

    #[test]
    fn uncancelled_token_matches_plain_compact() {
        let mut a = fragmented(6, 10);
        let mut b = fragmented(6, 10);
        assert_eq!(
            a.compact_cancellable(25, Some(&CancelToken::new())),
            Ok(b.compact(25))
        );
        assert_eq!(a.segment_count(), b.segment_count());
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn select_matches_scan_full_across_fragmentation() {
        let p = fragmented(9, 5);
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(30), Timestamp(200))),
        ];
        for filter in filters {
            let rows = p.select(AgentId(1), &filter, true, true);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted flat rows");
            let got: Vec<EventId> = rows.iter().map(|&r| p.id_at(r)).collect();
            let mut want = Vec::new();
            p.scan_full(AgentId(1), &filter, &mut |e| want.push(e.id));
            assert_eq!(got, want, "filter {filter:?}");
        }
    }

    #[test]
    fn apply_layout_resplits_tail() {
        let mut replay = Partition::new();
        let frag = fragmented(4, 3);
        for r in 0..frag.len() {
            replay.push_tail(AgentId(1), &frag.event_at(AgentId(1), r));
        }
        assert_eq!(replay.segment_count(), 1);
        replay.apply_layout(AgentId(1), &[3, 3, 3, 3], 0);
        assert_eq!(replay.segment_count(), 4);
        assert_eq!(replay.novelty_len(), 0);
        for r in 0..frag.len() as u32 {
            assert_eq!(replay.id_at(r), frag.id_at(r));
        }
        // Mismatched layouts are ignored.
        replay.apply_layout(AgentId(1), &[5, 5], 0);
        assert_eq!(replay.segment_count(), 4);
    }

    #[test]
    fn apply_layout_restores_residual_overlay() {
        let frag = fragmented(4, 3);
        let mut replay = Partition::new();
        for r in 0..frag.len() {
            replay.push_tail(AgentId(1), &frag.event_at(AgentId(1), r));
        }
        // 8 sealed rows in two segments + 4 rows left in the overlay.
        replay.apply_layout(AgentId(1), &[5, 3], 4);
        assert_eq!(replay.sealed_segment_count(), 2);
        assert_eq!(replay.novelty_len(), 4);
        assert_eq!(replay.len(), 12);
        for r in 0..frag.len() as u32 {
            assert_eq!(replay.id_at(r), frag.id_at(r));
        }
    }

    #[test]
    fn novelty_overlay_reads_match_sealed_commits() {
        let sealed = fragmented(7, 3);
        let mut overlay = Partition::new();
        let mut id = 0u64;
        let mut flushes = 0;
        for _ in 0..7 {
            let events: Vec<Event> = (0..3)
                .map(|_| {
                    let e = sealed.event_at(AgentId(1), id as usize);
                    id += 1;
                    e
                })
                .collect();
            // Threshold of 6: flushes happen mid-stream (sealing several
            // segments), leaving a residual overlay at the end.
            if overlay.append_novelty(AgentId(1), &events, 6) {
                flushes += 1;
            }
        }
        assert!(flushes >= 2, "threshold must have sealed several times");
        assert!(overlay.novelty_len() > 0, "a residual overlay remains");
        assert_eq!(overlay.len(), sealed.len());
        // Flat rows, column accessors, and every scan path agree with the
        // seal-per-commit layout.
        for r in 0..sealed.len() as u32 {
            assert_eq!(overlay.id_at(r), sealed.id_at(r), "row {r}");
            assert_eq!(overlay.start_end_at(r), sealed.start_end_at(r));
            assert_eq!(overlay.subject_object_at(r), sealed.subject_object_at(r));
        }
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(30), Timestamp(100))),
        ];
        for filter in filters {
            assert_eq!(
                overlay.select(AgentId(1), &filter, true, true),
                sealed.select(AgentId(1), &filter, true, true),
                "filter {filter:?}"
            );
            let mut a = Vec::new();
            overlay.scan(AgentId(1), &filter, &mut |e| a.push(e.id));
            let mut b = Vec::new();
            sealed.scan(AgentId(1), &filter, &mut |e| b.push(e.id));
            assert_eq!(a, b);
            assert_eq!(overlay.estimate(&filter) > 0, sealed.estimate(&filter) > 0);
        }
        assert_eq!(overlay.stats().events, sealed.stats().events);
        assert_eq!(overlay.min_time(), sealed.min_time());
        assert_eq!(overlay.max_time(), sealed.max_time());
        // Compaction merges only sealed segments; the overlay is untouched
        // and flat rows stay invariant.
        let novelty_before = overlay.novelty_len();
        let before: Vec<Event> = (0..overlay.len())
            .map(|r| overlay.event_at(AgentId(1), r))
            .collect();
        assert!(overlay.compact(usize::MAX));
        assert_eq!(overlay.sealed_segment_count(), 1);
        assert_eq!(overlay.novelty_len(), novelty_before);
        let after: Vec<Event> = (0..overlay.len())
            .map(|r| overlay.event_at(AgentId(1), r))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn explicit_flush_is_an_arc_move() {
        let mut p = Partition::new();
        let events: Vec<Event> = (0..6)
            .map(|i| mk_event(i, Operation::Read, 1, 2, i as i64))
            .collect();
        assert!(!p.append_novelty(AgentId(1), &events, 100));
        assert_eq!(p.novelty_len(), 6);
        assert_eq!(p.sealed_segment_count(), 0);
        assert!(p.flush_novelty());
        assert_eq!(p.novelty_len(), 0);
        assert_eq!(p.sealed_segment_count(), 1);
        assert!(!p.flush_novelty(), "empty overlay: no-op");
        for r in 0..6u32 {
            assert_eq!(p.id_at(r), EventId(u64::from(r)));
        }
    }
}
