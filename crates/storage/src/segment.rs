//! Partition segments — the hypertable leaves.
//!
//! A segment holds the events of one ⟨agent, time-bucket⟩ partition in
//! columnar form, plus the in-memory indexes rebuilt at each batch commit:
//! per-operation posting lists and subject/object hash indexes. Column
//! min/max statistics let the planner skip segments wholesale.

use std::collections::HashMap;

use aiql_model::{AgentId, EntityId, Event, EventId, Operation, Timestamp, OPERATION_COUNT};

use crate::filter::EventFilter;
use crate::stats::SegmentStats;

/// Key of one hypertable partition: host × time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionKey {
    /// Host dimension (spatial).
    pub agent: AgentId,
    /// Time-bucket index: `start_time.micros() / bucket_micros`
    /// (euclidean division, so negative timestamps bucket correctly).
    pub bucket: i64,
}

impl PartitionKey {
    /// Computes the partition key for an event timestamp.
    pub fn for_event(agent: AgentId, t: Timestamp, bucket_micros: i64) -> Self {
        PartitionKey {
            agent,
            bucket: t.micros().div_euclid(bucket_micros),
        }
    }
}

/// Columnar storage for one partition.
#[derive(Debug, Clone)]
pub struct Segment {
    ids: Vec<EventId>,
    ops: Vec<u8>,
    subjects: Vec<EntityId>,
    objects: Vec<EntityId>,
    start_times: Vec<i64>,
    end_times: Vec<i64>,
    amounts: Vec<u64>,
    /// Row indexes per operation, in insertion order.
    op_postings: Vec<Vec<u32>>,
    /// Rows per subject entity.
    subj_index: HashMap<EntityId, Vec<u32>>,
    /// Rows per object entity.
    obj_index: HashMap<EntityId, Vec<u32>>,
    min_time: i64,
    max_time: i64,
}

impl Default for Segment {
    fn default() -> Self {
        Self::new()
    }
}

impl Segment {
    /// Creates an empty segment.
    pub fn new() -> Self {
        Segment {
            ids: Vec::new(),
            ops: Vec::new(),
            subjects: Vec::new(),
            objects: Vec::new(),
            start_times: Vec::new(),
            end_times: Vec::new(),
            amounts: Vec::new(),
            op_postings: vec![Vec::new(); OPERATION_COUNT],
            subj_index: HashMap::new(),
            obj_index: HashMap::new(),
            min_time: i64::MAX,
            max_time: i64::MIN,
        }
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Earliest event start time (None when empty).
    pub fn min_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(Timestamp(self.min_time))
    }

    /// Latest event start time (None when empty).
    pub fn max_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(Timestamp(self.max_time))
    }

    /// Appends one committed event (indexes are maintained inline; the store
    /// calls this from batch commit so amortized cost stays low).
    pub fn push(&mut self, agent: AgentId, e: &Event) {
        debug_assert_eq!(e.agent, agent);
        let row = self.ids.len() as u32;
        self.ids.push(e.id);
        self.ops.push(e.op.index() as u8);
        self.subjects.push(e.subject);
        self.objects.push(e.object);
        self.start_times.push(e.start_time.micros());
        self.end_times.push(e.end_time.micros());
        self.amounts.push(e.amount);
        self.op_postings[e.op.index()].push(row);
        self.subj_index.entry(e.subject).or_default().push(row);
        self.obj_index.entry(e.object).or_default().push(row);
        self.min_time = self.min_time.min(e.start_time.micros());
        self.max_time = self.max_time.max(e.start_time.micros());
    }

    /// Merges adjacent segments of one partition into a single dense
    /// segment. Columns are rewritten in commit order (the concatenation of
    /// the inputs), so an event's partition-global row index — its position
    /// in the concatenation — is unchanged: `EventRef` candidate lists and
    /// join keys built before the merge stay valid. Posting lists and the
    /// subject/object hash indexes are rebuilt by offsetting each input's
    /// (already sorted) row lists, which keeps every merged list sorted
    /// without a comparison pass.
    pub(crate) fn merge<S: std::borrow::Borrow<Segment>>(parts: &[S]) -> Segment {
        let parts: Vec<&Segment> = parts.iter().map(std::borrow::Borrow::borrow).collect();
        let parts = parts.as_slice();
        let total: usize = parts.iter().map(|s| s.len()).sum();
        let mut out = Segment::new();
        out.ids.reserve_exact(total);
        out.ops.reserve_exact(total);
        out.subjects.reserve_exact(total);
        out.objects.reserve_exact(total);
        out.start_times.reserve_exact(total);
        out.end_times.reserve_exact(total);
        out.amounts.reserve_exact(total);
        let mut base = 0u32;
        for p in parts {
            out.ids.extend_from_slice(&p.ids);
            out.ops.extend_from_slice(&p.ops);
            out.subjects.extend_from_slice(&p.subjects);
            out.objects.extend_from_slice(&p.objects);
            out.start_times.extend_from_slice(&p.start_times);
            out.end_times.extend_from_slice(&p.end_times);
            out.amounts.extend_from_slice(&p.amounts);
            for (op, rows) in p.op_postings.iter().enumerate() {
                out.op_postings[op].extend(rows.iter().map(|&r| r + base));
            }
            for (index, src) in [
                (&mut out.subj_index, &p.subj_index),
                (&mut out.obj_index, &p.obj_index),
            ] {
                for (&id, rows) in src {
                    index
                        .entry(id)
                        .or_default()
                        .extend(rows.iter().map(|&r| r + base));
                }
            }
            out.min_time = out.min_time.min(p.min_time);
            out.max_time = out.max_time.max(p.max_time);
            base += p.len() as u32;
        }
        out
    }

    /// Materializes the event at `row`.
    #[inline]
    pub fn event_at(&self, agent: AgentId, row: usize) -> Event {
        Event {
            id: self.ids[row],
            agent,
            op: Operation::from_index(self.ops[row] as usize).expect("valid op in column"),
            subject: self.subjects[row],
            object: self.objects[row],
            start_time: Timestamp(self.start_times[row]),
            end_time: Timestamp(self.end_times[row]),
            amount: self.amounts[row],
        }
    }

    /// Event id column accessor.
    #[inline]
    pub fn id_at(&self, row: u32) -> EventId {
        self.ids[row as usize]
    }

    /// Operation column accessor.
    #[inline]
    pub fn op_at(&self, row: u32) -> Operation {
        Operation::from_index(self.ops[row as usize] as usize).expect("valid op in column")
    }

    /// Subject entity column accessor.
    #[inline]
    pub fn subject_at(&self, row: u32) -> EntityId {
        self.subjects[row as usize]
    }

    /// Object entity column accessor.
    #[inline]
    pub fn object_at(&self, row: u32) -> EntityId {
        self.objects[row as usize]
    }

    /// Start-time column accessor.
    #[inline]
    pub fn start_at(&self, row: u32) -> Timestamp {
        Timestamp(self.start_times[row as usize])
    }

    /// End-time column accessor.
    #[inline]
    pub fn end_at(&self, row: u32) -> Timestamp {
        Timestamp(self.end_times[row as usize])
    }

    /// Both time columns of one row in a single call (one bounds check per
    /// column, no repeated row resolution at the partition layer).
    #[inline]
    pub fn start_end_at(&self, row: u32) -> (Timestamp, Timestamp) {
        (
            Timestamp(self.start_times[row as usize]),
            Timestamp(self.end_times[row as usize]),
        )
    }

    /// Amount column accessor.
    #[inline]
    pub fn amount_at(&self, row: u32) -> u64 {
        self.amounts[row as usize]
    }

    /// Number of events with the given operation (for selectivity
    /// estimation).
    pub fn op_count(&self, op: Operation) -> usize {
        self.op_postings[op.index()].len()
    }

    /// Rows matching a subject id.
    pub fn subject_rows(&self, id: EntityId) -> Option<&[u32]> {
        self.subj_index.get(&id).map(Vec::as_slice)
    }

    /// Rows matching an object id.
    pub fn object_rows(&self, id: EntityId) -> Option<&[u32]> {
        self.obj_index.get(&id).map(Vec::as_slice)
    }

    /// Segment-level statistics snapshot.
    pub fn stats(&self) -> SegmentStats {
        let mut per_op = [0usize; OPERATION_COUNT];
        for (i, p) in self.op_postings.iter().enumerate() {
            per_op[i] = p.len();
        }
        SegmentStats {
            events: self.len(),
            per_op,
            distinct_subjects: self.subj_index.len(),
            distinct_objects: self.obj_index.len(),
            min_time: self.min_time().unwrap_or(Timestamp(0)),
            max_time: self.max_time().unwrap_or(Timestamp(0)),
        }
    }

    /// Whether the segment can possibly contain matches for the filter's
    /// time window (zone-map pruning).
    pub fn overlaps_window(&self, filter: &EventFilter) -> bool {
        if self.is_empty() {
            return false;
        }
        self.min_time < filter.window.end.micros() && self.max_time >= filter.window.start.micros()
    }

    /// Index-assisted scan of this segment: picks the cheapest available
    /// access path, verifies residual predicates, and invokes `f` for every
    /// matching event. `agent` is the partition's host (segments do not
    /// duplicate it per row).
    ///
    /// This is the *materializing* access path kept for ablation; the
    /// selection-vector path ([`Segment::select`]) avoids building `Event`s
    /// for rows that fail residual predicates.
    pub fn scan(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        if !self.overlaps_window(filter) {
            return;
        }
        // Access path selection: smallest candidate row list wins.
        let subj_rows = filter.subjects.as_ref().and_then(|ids| {
            if ids.len() <= 64 {
                let mut rows: Vec<u32> = Vec::new();
                for id in ids.iter() {
                    if let Some(r) = self.subject_rows(id) {
                        rows.extend_from_slice(r);
                    }
                }
                Some(rows)
            } else {
                None
            }
        });
        let obj_rows = filter.objects.as_ref().and_then(|ids| {
            if ids.len() <= 64 {
                let mut rows: Vec<u32> = Vec::new();
                for id in ids.iter() {
                    if let Some(r) = self.object_rows(id) {
                        rows.extend_from_slice(r);
                    }
                }
                Some(rows)
            } else {
                None
            }
        });
        let op_rows = if filter.ops.is_all() {
            None
        } else {
            let total: usize = filter.ops.iter().map(|op| self.op_count(op)).sum();
            // Only worth using when it actually prunes.
            if total * 2 < self.len() {
                let mut rows: Vec<u32> = Vec::with_capacity(total);
                for op in filter.ops.iter() {
                    rows.extend_from_slice(&self.op_postings[op.index()]);
                }
                Some(rows)
            } else {
                None
            }
        };
        let candidates: Option<Vec<u32>> = [subj_rows, obj_rows, op_rows]
            .into_iter()
            .flatten()
            .min_by_key(Vec::len);
        match candidates {
            Some(mut rows) => {
                // Candidate lists concatenated from several posting lists
                // arrive unsorted; visiting rows out of order defeats cache
                // locality and breaks the sorted-output contract.
                rows.sort_unstable();
                rows.dedup();
                for row in rows {
                    let e = self.event_at(agent, row as usize);
                    if filter.matches(&e) {
                        f(&e);
                    }
                }
            }
            None => self.scan_full(agent, filter, f),
        }
    }

    /// Selection-vector scan: evaluates every predicate directly against
    /// the columns and returns the sorted, deduped row ids that match —
    /// no `Event` is materialized. Access paths (operation postings,
    /// subject/object posting lists) are combined by sort-merge
    /// intersection; with `cost_based` the posting-list paths are chosen by
    /// estimated candidate count instead of the fixed 64-id cutoff. With
    /// `vectorized`, the no-access-path case runs the residual predicates
    /// as chunked columnar mask passes ([`Segment::residual_mask_scan`])
    /// instead of a branchy per-row closure.
    pub fn select(
        &self,
        agent: AgentId,
        filter: &EventFilter,
        cost_based: bool,
        vectorized: bool,
    ) -> Vec<u32> {
        if !self.overlaps_window(filter) {
            return Vec::new();
        }
        if let Some(agents) = &filter.agents {
            if !agents.contains(&agent) {
                return Vec::new();
            }
        }
        // Build each applicable access path as a sorted row-id list.
        let budget = self.len() / 2;
        let mut paths: Vec<Vec<u32>> = Vec::new();
        for (ids, index) in [
            (filter.subjects.as_ref(), &self.subj_index),
            (filter.objects.as_ref(), &self.obj_index),
        ] {
            let Some(ids) = ids else { continue };
            if let Some(rows) = self.entity_rows(ids, index, cost_based, budget) {
                paths.push(rows);
            }
        }
        if !filter.ops.is_all() {
            let total: usize = filter.ops.iter().map(|op| self.op_count(op)).sum();
            // The op path only pays for itself when it prunes; an
            // unselective op set is cheaper as a direct column loop below.
            if total * 2 < self.len() {
                let lists: Vec<&[u32]> = filter
                    .ops
                    .iter()
                    .map(|op| self.op_postings[op.index()].as_slice())
                    .collect();
                paths.push(merge_sorted(&lists));
            }
        }
        // Residual verification straight off the columns. With no index
        // path the row loop runs directly over the columns — no candidate
        // vector is materialized. The window/op tests are unconditional
        // (they are almost always the deciding predicates); the entity and
        // amount tests only run when the filter carries them.
        let (win_lo, win_hi) = (filter.window.start.micros(), filter.window.end.micros());
        let ops_mask = filter.ops.0;
        let residual = |r: usize| -> bool {
            let t = self.start_times[r];
            if t < win_lo || t >= win_hi {
                return false;
            }
            if ops_mask & (1u16 << self.ops[r]) == 0 {
                return false;
            }
            if let Some(s) = &filter.subjects {
                if !s.contains(self.subjects[r]) {
                    return false;
                }
            }
            if let Some(o) = &filter.objects {
                if !o.contains(self.objects[r]) {
                    return false;
                }
            }
            if let Some(min) = filter.min_amount {
                if self.amounts[r] < min {
                    return false;
                }
            }
            true
        };
        match paths.into_iter().reduce(|a, b| intersect_sorted(&a, &b)) {
            Some(mut rows) => {
                // Index-pruned candidates are sparse; a gather-style mask
                // pass would touch the same scattered cache lines, so the
                // scalar verify stays the right shape here.
                rows.retain(|&row| residual(row as usize));
                rows
            }
            None if vectorized => self.residual_mask_scan(filter),
            None => {
                let mut out = Vec::new();
                for row in 0..self.len() {
                    if residual(row) {
                        out.push(row as u32);
                    }
                }
                out
            }
        }
    }

    /// Chunked columnar residual pass: each predicate runs as its own loop
    /// over a contiguous column, writing 64-row bitmask blocks that are
    /// AND-combined and finally compacted into the selection vector. The
    /// per-block inner loops are branch-free compare-and-shift reductions
    /// over `i64`/`u8` columns, which the compiler auto-vectorizes; the
    /// scalar per-row closure this replaces re-branched on every predicate
    /// for every row.
    fn residual_mask_scan(&self, filter: &EventFilter) -> Vec<u32> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut masks = vec![0u64; n.div_ceil(64)];
        // Window pass over the start-time column (after zone-map pruning
        // this is almost always the deciding predicate, so it seeds the
        // masks instead of AND-ing into them).
        let (lo, hi) = (filter.window.start.micros(), filter.window.end.micros());
        for (b, chunk) in self.start_times.chunks(64).enumerate() {
            let mut m = 0u64;
            for (j, &t) in chunk.iter().enumerate() {
                m |= u64::from(t >= lo && t < hi) << j;
            }
            masks[b] = m;
        }
        // Operation pass over the u8 op column.
        if !filter.ops.is_all() {
            let ops_mask = filter.ops.0;
            for (b, chunk) in self.ops.chunks(64).enumerate() {
                let mut m = 0u64;
                for (j, &op) in chunk.iter().enumerate() {
                    m |= u64::from(ops_mask & (1u16 << op) != 0) << j;
                }
                masks[b] &= m;
            }
        }
        // Entity-bitmap membership passes, skipping fully-masked blocks.
        if let Some(ids) = &filter.subjects {
            for (b, chunk) in self.subjects.chunks(64).enumerate() {
                if masks[b] == 0 {
                    continue;
                }
                let mut m = 0u64;
                for (j, &id) in chunk.iter().enumerate() {
                    m |= u64::from(ids.contains(id)) << j;
                }
                masks[b] &= m;
            }
        }
        if let Some(ids) = &filter.objects {
            for (b, chunk) in self.objects.chunks(64).enumerate() {
                if masks[b] == 0 {
                    continue;
                }
                let mut m = 0u64;
                for (j, &id) in chunk.iter().enumerate() {
                    m |= u64::from(ids.contains(id)) << j;
                }
                masks[b] &= m;
            }
        }
        if let Some(min) = filter.min_amount {
            for (b, chunk) in self.amounts.chunks(64).enumerate() {
                if masks[b] == 0 {
                    continue;
                }
                let mut m = 0u64;
                for (j, &a) in chunk.iter().enumerate() {
                    m |= u64::from(a >= min) << j;
                }
                masks[b] &= m;
            }
        }
        // Compact the surviving bits into the sorted selection vector.
        let mut out = Vec::new();
        for (b, &mask) in masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let j = m.trailing_zeros();
                out.push((b * 64) as u32 + j);
                m &= m - 1;
            }
        }
        out
    }

    /// Sorted candidate rows for an entity id set via its posting index, or
    /// `None` when a column scan is estimated cheaper.
    fn entity_rows(
        &self,
        ids: &crate::filter::IdSet,
        index: &HashMap<EntityId, Vec<u32>>,
        cost_based: bool,
        budget: usize,
    ) -> Option<Vec<u32>> {
        if !cost_based && ids.len() > 64 {
            return None;
        }
        let mut lists: Vec<&[u32]> = Vec::new();
        let mut total = 0usize;
        if ids.len() <= index.len() {
            for id in ids.iter() {
                if let Some(r) = index.get(&id) {
                    total += r.len();
                    if cost_based && total > budget {
                        return None;
                    }
                    lists.push(r);
                }
            }
        } else {
            // Fewer distinct entities in the segment than ids in the set:
            // probe the bitmap from the index side instead.
            for (id, r) in index {
                if ids.contains(*id) {
                    total += r.len();
                    if cost_based && total > budget {
                        return None;
                    }
                    lists.push(r);
                }
            }
        }
        Some(merge_sorted(&lists))
    }

    /// Unconditional column scan verifying every predicate per row — the
    /// access path of the *unoptimized* storage configuration.
    pub fn scan_full(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for row in 0..self.len() {
            let e = self.event_at(agent, row);
            if filter.matches(&e) {
                f(&e);
            }
        }
    }

    /// Estimated number of matches for a filter, from segment statistics.
    pub fn estimate(&self, filter: &EventFilter) -> usize {
        if !self.overlaps_window(filter) {
            return 0;
        }
        let by_op: usize = filter.ops.iter().map(|op| self.op_count(op)).sum();
        let by_subj = filter.subjects.as_ref().map(|ids| {
            ids.iter()
                .map(|id| self.subject_rows(id).map_or(0, <[u32]>::len))
                .sum::<usize>()
        });
        let by_obj = filter.objects.as_ref().map(|ids| {
            ids.iter()
                .map(|id| self.object_rows(id).map_or(0, <[u32]>::len))
                .sum::<usize>()
        });
        let mut est = by_op;
        if let Some(s) = by_subj {
            est = est.min(s);
        }
        if let Some(o) = by_obj {
            est = est.min(o);
        }
        est
    }
}

/// K-way sort-merge union of sorted, pairwise-disjoint row lists (posting
/// lists for distinct entities or operations never share a row, so no dedup
/// pass is needed — only ordering).
///
/// The ≥3-list case is a single-pass k-way merge over a min-heap of list
/// cursors: one output buffer sized to the total, one heap of at most `k`
/// entries. The pairwise-merge tournament this replaces allocated (and then
/// threw away) a fresh `Vec` per pairwise merge — O(k) intermediate buffers
/// re-copying every element O(log k) times.
pub(crate) fn merge_sorted(lists: &[&[u32]]) -> Vec<u32> {
    match lists.len() {
        0 => Vec::new(),
        1 => lists[0].to_vec(),
        2 => merge_two(lists[0], lists[1]),
        _ => {
            let total: usize = lists.iter().map(|l| l.len()).sum();
            let mut out = Vec::with_capacity(total);
            // Heap entries are ⟨head value, list index⟩; `Reverse` turns the
            // max-heap into the min-heap a merge needs. Cursors track each
            // list's next unconsumed position.
            let mut cursors = vec![0usize; lists.len()];
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> = lists
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_empty())
                .map(|(i, l)| std::cmp::Reverse((l[0], i)))
                .collect();
            while let Some(std::cmp::Reverse((v, i))) = heap.pop() {
                out.push(v);
                cursors[i] += 1;
                if let Some(&next) = lists[i].get(cursors[i]) {
                    heap.push(std::cmp::Reverse((next, i)));
                }
            }
            out
        }
    }
}

fn merge_two(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sort-merge intersection of two sorted row lists.
pub(crate) fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdSet, OpSet};
    use aiql_model::TimeWindow;

    fn mk_event(id: u64, op: Operation, subj: u32, obj: u32, t: i64) -> Event {
        Event {
            id: EventId(id),
            agent: AgentId(1),
            op,
            subject: EntityId(subj),
            object: EntityId(obj),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 10),
            amount: 100,
        }
    }

    fn seg_with_events() -> Segment {
        let mut s = Segment::new();
        s.push(AgentId(1), &mk_event(0, Operation::Read, 1, 10, 100));
        s.push(AgentId(1), &mk_event(1, Operation::Write, 1, 11, 200));
        s.push(AgentId(1), &mk_event(2, Operation::Read, 2, 10, 300));
        s.push(AgentId(1), &mk_event(3, Operation::Connect, 2, 12, 400));
        s
    }

    #[test]
    fn push_maintains_columns_and_indexes() {
        let s = seg_with_events();
        assert_eq!(s.len(), 4);
        assert_eq!(s.op_count(Operation::Read), 2);
        assert_eq!(s.op_count(Operation::Write), 1);
        assert_eq!(s.subject_rows(EntityId(1)).unwrap(), &[0, 1]);
        assert_eq!(s.object_rows(EntityId(10)).unwrap(), &[0, 2]);
        assert_eq!(s.min_time(), Some(Timestamp(100)));
        assert_eq!(s.max_time(), Some(Timestamp(400)));
    }

    #[test]
    fn event_roundtrips_through_columns() {
        let s = seg_with_events();
        let e = s.event_at(AgentId(1), 3);
        assert_eq!(e, mk_event(3, Operation::Connect, 2, 12, 400));
    }

    #[test]
    fn scan_by_op_postings() {
        let s = seg_with_events();
        let filter = EventFilter::all().with_ops(OpSet::single(Operation::Read));
        let mut got = Vec::new();
        s.scan(AgentId(1), &filter, &mut |e| got.push(e.id.raw()));
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn scan_by_subject_index() {
        let s = seg_with_events();
        let filter = EventFilter::all().with_subjects(IdSet::from_iter([EntityId(2)]));
        let mut got = Vec::new();
        s.scan(AgentId(1), &filter, &mut |e| got.push(e.id.raw()));
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn scan_agrees_with_full_scan() {
        let s = seg_with_events();
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Read, Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(150), Timestamp(350))),
            EventFilter::all()
                .with_subjects(IdSet::from_iter([EntityId(1)]))
                .with_objects(IdSet::from_iter([EntityId(11)])),
        ];
        for filter in filters {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            s.scan(AgentId(1), &filter, &mut |e| fast.push(e.id));
            s.scan_full(AgentId(1), &filter, &mut |e| slow.push(e.id));
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow, "filter {filter:?}");
        }
    }

    #[test]
    fn zone_map_pruning() {
        let s = seg_with_events();
        let filter =
            EventFilter::all().with_window(TimeWindow::new(Timestamp(1000), Timestamp(2000)));
        assert!(!s.overlaps_window(&filter));
        assert_eq!(s.estimate(&filter), 0);
        let mut n = 0;
        s.scan(AgentId(1), &filter, &mut |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn estimate_uses_cheapest_index() {
        let s = seg_with_events();
        let filter = EventFilter::all()
            .with_ops(OpSet::single(Operation::Read))
            .with_subjects(IdSet::from_iter([EntityId(2)]));
        // op count 2, subject postings 2 → estimate <= 2
        assert!(s.estimate(&filter) <= 2);
    }

    #[test]
    fn select_agrees_with_full_scan_and_is_sorted() {
        let s = seg_with_events();
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Read, Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(150), Timestamp(350))),
            EventFilter::all()
                .with_subjects(IdSet::from_iter([EntityId(1)]))
                .with_objects(IdSet::from_iter([EntityId(11)])),
            EventFilter::all()
                .with_ops(OpSet::single(Operation::Read))
                .with_subjects(IdSet::from_iter([EntityId(2)])),
            EventFilter::all().with_agents(vec![AgentId(9)]), // wrong agent
        ];
        for filter in filters {
            for cost_based in [false, true] {
                for vectorized in [false, true] {
                    let rows = s.select(AgentId(1), &filter, cost_based, vectorized);
                    assert!(rows.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
                    let mut slow = Vec::new();
                    s.scan_full(AgentId(1), &filter, &mut |e| slow.push(e.id));
                    let got: Vec<EventId> = rows.iter().map(|&r| s.id_at(r)).collect();
                    assert_eq!(
                        got, slow,
                        "filter {filter:?} cost_based={cost_based} vectorized={vectorized}"
                    );
                }
            }
        }
    }

    /// The mask scan must agree with the scalar residual across block
    /// boundaries (tail blocks, >64 rows) and every predicate combination.
    #[test]
    fn residual_mask_scan_agrees_across_blocks() {
        let mut s = Segment::new();
        for i in 0..200u32 {
            let op = match i % 3 {
                0 => Operation::Read,
                1 => Operation::Write,
                _ => Operation::Connect,
            };
            let mut e = mk_event(u64::from(i), op, i % 7, 10 + i % 5, i64::from(i) * 10);
            e.amount = u64::from(i % 50);
            s.push(AgentId(1), &e);
        }
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(333), Timestamp(1501))),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Write])),
            EventFilter::all()
                .with_subjects(IdSet::from_iter([EntityId(2), EntityId(4)]))
                .with_objects(IdSet::from_iter([EntityId(11)])),
            {
                let mut f = EventFilter::all();
                f.min_amount = Some(25);
                f
            },
        ];
        for filter in filters {
            let fast = s.residual_mask_scan(&filter);
            let slow = s.select(AgentId(1), &filter, true, false);
            assert_eq!(fast, slow, "filter {filter:?}");
        }
    }

    #[test]
    fn column_accessors_match_materialized_event() {
        let s = seg_with_events();
        for row in 0..s.len() as u32 {
            let e = s.event_at(AgentId(1), row as usize);
            assert_eq!(s.id_at(row), e.id);
            assert_eq!(s.op_at(row), e.op);
            assert_eq!(s.subject_at(row), e.subject);
            assert_eq!(s.object_at(row), e.object);
            assert_eq!(s.start_at(row), e.start_time);
            assert_eq!(s.end_at(row), e.end_time);
            assert_eq!(s.amount_at(row), e.amount);
        }
    }

    #[test]
    fn legacy_scan_visits_rows_in_order() {
        // Two candidate posting lists that interleave: subject 1 hits rows
        // {0, 1} and subject 2 hits rows {2, 3}; requesting both subjects
        // must still visit rows ascending (the seed concatenated unsorted).
        let s = seg_with_events();
        let filter = EventFilter::all().with_subjects(IdSet::from_iter([EntityId(1), EntityId(2)]));
        let mut got = Vec::new();
        s.scan(AgentId(1), &filter, &mut |e| got.push(e.id.raw()));
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_and_intersect_helpers() {
        assert_eq!(merge_sorted(&[]), Vec::<u32>::new());
        assert_eq!(merge_sorted(&[&[1, 5, 9]]), vec![1, 5, 9]);
        assert_eq!(
            merge_sorted(&[&[1, 5], &[2, 6], &[0, 9]]),
            vec![0, 1, 2, 5, 6, 9]
        );
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 8]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn partition_key_bucketing() {
        let hour = 3_600_000_000i64;
        let k = PartitionKey::for_event(AgentId(2), Timestamp(hour + 5), hour);
        assert_eq!(k.bucket, 1);
        let neg = PartitionKey::for_event(AgentId(2), Timestamp(-1), hour);
        assert_eq!(neg.bucket, -1);
    }
}
