//! Partition segments — the hypertable leaves.
//!
//! A segment holds the events of one ⟨agent, time-bucket⟩ partition in
//! columnar form, plus the in-memory indexes rebuilt at each batch commit:
//! per-operation posting lists and subject/object hash indexes. Column
//! min/max statistics let the planner skip segments wholesale.

use std::collections::HashMap;

use aiql_model::{AgentId, EntityId, Event, EventId, Operation, Timestamp, OPERATION_COUNT};

use crate::filter::EventFilter;
use crate::stats::SegmentStats;

/// Key of one hypertable partition: host × time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionKey {
    /// Host dimension (spatial).
    pub agent: AgentId,
    /// Time-bucket index: `start_time.micros() / bucket_micros`
    /// (euclidean division, so negative timestamps bucket correctly).
    pub bucket: i64,
}

impl PartitionKey {
    /// Computes the partition key for an event timestamp.
    pub fn for_event(agent: AgentId, t: Timestamp, bucket_micros: i64) -> Self {
        PartitionKey {
            agent,
            bucket: t.micros().div_euclid(bucket_micros),
        }
    }
}

/// Columnar storage for one partition.
#[derive(Debug)]
pub struct Segment {
    ids: Vec<EventId>,
    ops: Vec<u8>,
    subjects: Vec<EntityId>,
    objects: Vec<EntityId>,
    start_times: Vec<i64>,
    end_times: Vec<i64>,
    amounts: Vec<u64>,
    /// Row indexes per operation, in insertion order.
    op_postings: Vec<Vec<u32>>,
    /// Rows per subject entity.
    subj_index: HashMap<EntityId, Vec<u32>>,
    /// Rows per object entity.
    obj_index: HashMap<EntityId, Vec<u32>>,
    min_time: i64,
    max_time: i64,
}

impl Default for Segment {
    fn default() -> Self {
        Self::new()
    }
}

impl Segment {
    /// Creates an empty segment.
    pub fn new() -> Self {
        Segment {
            ids: Vec::new(),
            ops: Vec::new(),
            subjects: Vec::new(),
            objects: Vec::new(),
            start_times: Vec::new(),
            end_times: Vec::new(),
            amounts: Vec::new(),
            op_postings: vec![Vec::new(); OPERATION_COUNT],
            subj_index: HashMap::new(),
            obj_index: HashMap::new(),
            min_time: i64::MAX,
            max_time: i64::MIN,
        }
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Earliest event start time (None when empty).
    pub fn min_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(Timestamp(self.min_time))
    }

    /// Latest event start time (None when empty).
    pub fn max_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(Timestamp(self.max_time))
    }

    /// Appends one committed event (indexes are maintained inline; the store
    /// calls this from batch commit so amortized cost stays low).
    pub fn push(&mut self, agent: AgentId, e: &Event) {
        debug_assert_eq!(e.agent, agent);
        let row = self.ids.len() as u32;
        self.ids.push(e.id);
        self.ops.push(e.op.index() as u8);
        self.subjects.push(e.subject);
        self.objects.push(e.object);
        self.start_times.push(e.start_time.micros());
        self.end_times.push(e.end_time.micros());
        self.amounts.push(e.amount);
        self.op_postings[e.op.index()].push(row);
        self.subj_index.entry(e.subject).or_default().push(row);
        self.obj_index.entry(e.object).or_default().push(row);
        self.min_time = self.min_time.min(e.start_time.micros());
        self.max_time = self.max_time.max(e.start_time.micros());
    }

    /// Materializes the event at `row`.
    #[inline]
    pub fn event_at(&self, agent: AgentId, row: usize) -> Event {
        Event {
            id: self.ids[row],
            agent,
            op: Operation::from_index(self.ops[row] as usize).expect("valid op in column"),
            subject: self.subjects[row],
            object: self.objects[row],
            start_time: Timestamp(self.start_times[row]),
            end_time: Timestamp(self.end_times[row]),
            amount: self.amounts[row],
        }
    }

    /// Number of events with the given operation (for selectivity
    /// estimation).
    pub fn op_count(&self, op: Operation) -> usize {
        self.op_postings[op.index()].len()
    }

    /// Rows matching a subject id.
    pub fn subject_rows(&self, id: EntityId) -> Option<&[u32]> {
        self.subj_index.get(&id).map(Vec::as_slice)
    }

    /// Rows matching an object id.
    pub fn object_rows(&self, id: EntityId) -> Option<&[u32]> {
        self.obj_index.get(&id).map(Vec::as_slice)
    }

    /// Segment-level statistics snapshot.
    pub fn stats(&self) -> SegmentStats {
        let mut per_op = [0usize; OPERATION_COUNT];
        for (i, p) in self.op_postings.iter().enumerate() {
            per_op[i] = p.len();
        }
        SegmentStats {
            events: self.len(),
            per_op,
            distinct_subjects: self.subj_index.len(),
            distinct_objects: self.obj_index.len(),
            min_time: self.min_time().unwrap_or(Timestamp(0)),
            max_time: self.max_time().unwrap_or(Timestamp(0)),
        }
    }

    /// Whether the segment can possibly contain matches for the filter's
    /// time window (zone-map pruning).
    pub fn overlaps_window(&self, filter: &EventFilter) -> bool {
        if self.is_empty() {
            return false;
        }
        self.min_time < filter.window.end.micros() && self.max_time >= filter.window.start.micros()
    }

    /// Index-assisted scan of this segment: picks the cheapest available
    /// access path, verifies residual predicates, and invokes `f` for every
    /// matching event. `agent` is the partition's host (segments do not
    /// duplicate it per row).
    pub fn scan(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        if !self.overlaps_window(filter) {
            return;
        }
        // Access path selection: smallest candidate row list wins.
        let subj_rows = filter.subjects.as_ref().and_then(|ids| {
            if ids.len() <= 64 {
                let mut rows: Vec<u32> = Vec::new();
                for id in ids.iter() {
                    if let Some(r) = self.subject_rows(id) {
                        rows.extend_from_slice(r);
                    }
                }
                Some(rows)
            } else {
                None
            }
        });
        let obj_rows = filter.objects.as_ref().and_then(|ids| {
            if ids.len() <= 64 {
                let mut rows: Vec<u32> = Vec::new();
                for id in ids.iter() {
                    if let Some(r) = self.object_rows(id) {
                        rows.extend_from_slice(r);
                    }
                }
                Some(rows)
            } else {
                None
            }
        });
        let op_rows = if filter.ops.is_all() {
            None
        } else {
            let total: usize = filter.ops.iter().map(|op| self.op_count(op)).sum();
            // Only worth using when it actually prunes.
            if total * 2 < self.len() {
                let mut rows: Vec<u32> = Vec::with_capacity(total);
                for op in filter.ops.iter() {
                    rows.extend_from_slice(&self.op_postings[op.index()]);
                }
                Some(rows)
            } else {
                None
            }
        };
        let candidates: Option<Vec<u32>> = [subj_rows, obj_rows, op_rows]
            .into_iter()
            .flatten()
            .min_by_key(Vec::len);
        match candidates {
            Some(rows) => {
                for row in rows {
                    let e = self.event_at(agent, row as usize);
                    if filter.matches(&e) {
                        f(&e);
                    }
                }
            }
            None => self.scan_full(agent, filter, f),
        }
    }

    /// Unconditional column scan verifying every predicate per row — the
    /// access path of the *unoptimized* storage configuration.
    pub fn scan_full(&self, agent: AgentId, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for row in 0..self.len() {
            let e = self.event_at(agent, row);
            if filter.matches(&e) {
                f(&e);
            }
        }
    }

    /// Estimated number of matches for a filter, from segment statistics.
    pub fn estimate(&self, filter: &EventFilter) -> usize {
        if !self.overlaps_window(filter) {
            return 0;
        }
        let by_op: usize = filter.ops.iter().map(|op| self.op_count(op)).sum();
        let by_subj = filter.subjects.as_ref().map(|ids| {
            ids.iter()
                .map(|id| self.subject_rows(id).map_or(0, <[u32]>::len))
                .sum::<usize>()
        });
        let by_obj = filter.objects.as_ref().map(|ids| {
            ids.iter()
                .map(|id| self.object_rows(id).map_or(0, <[u32]>::len))
                .sum::<usize>()
        });
        let mut est = by_op;
        if let Some(s) = by_subj {
            est = est.min(s);
        }
        if let Some(o) = by_obj {
            est = est.min(o);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdSet, OpSet};
    use aiql_model::TimeWindow;

    fn mk_event(id: u64, op: Operation, subj: u32, obj: u32, t: i64) -> Event {
        Event {
            id: EventId(id),
            agent: AgentId(1),
            op,
            subject: EntityId(subj),
            object: EntityId(obj),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 10),
            amount: 100,
        }
    }

    fn seg_with_events() -> Segment {
        let mut s = Segment::new();
        s.push(AgentId(1), &mk_event(0, Operation::Read, 1, 10, 100));
        s.push(AgentId(1), &mk_event(1, Operation::Write, 1, 11, 200));
        s.push(AgentId(1), &mk_event(2, Operation::Read, 2, 10, 300));
        s.push(AgentId(1), &mk_event(3, Operation::Connect, 2, 12, 400));
        s
    }

    #[test]
    fn push_maintains_columns_and_indexes() {
        let s = seg_with_events();
        assert_eq!(s.len(), 4);
        assert_eq!(s.op_count(Operation::Read), 2);
        assert_eq!(s.op_count(Operation::Write), 1);
        assert_eq!(s.subject_rows(EntityId(1)).unwrap(), &[0, 1]);
        assert_eq!(s.object_rows(EntityId(10)).unwrap(), &[0, 2]);
        assert_eq!(s.min_time(), Some(Timestamp(100)));
        assert_eq!(s.max_time(), Some(Timestamp(400)));
    }

    #[test]
    fn event_roundtrips_through_columns() {
        let s = seg_with_events();
        let e = s.event_at(AgentId(1), 3);
        assert_eq!(e, mk_event(3, Operation::Connect, 2, 12, 400));
    }

    #[test]
    fn scan_by_op_postings() {
        let s = seg_with_events();
        let filter = EventFilter::all().with_ops(OpSet::single(Operation::Read));
        let mut got = Vec::new();
        s.scan(AgentId(1), &filter, &mut |e| got.push(e.id.raw()));
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn scan_by_subject_index() {
        let s = seg_with_events();
        let filter = EventFilter::all().with_subjects(IdSet::from_iter([EntityId(2)]));
        let mut got = Vec::new();
        s.scan(AgentId(1), &filter, &mut |e| got.push(e.id.raw()));
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn scan_agrees_with_full_scan() {
        let s = seg_with_events();
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::from_ops(&[Operation::Read, Operation::Write])),
            EventFilter::all().with_window(TimeWindow::new(Timestamp(150), Timestamp(350))),
            EventFilter::all()
                .with_subjects(IdSet::from_iter([EntityId(1)]))
                .with_objects(IdSet::from_iter([EntityId(11)])),
        ];
        for filter in filters {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            s.scan(AgentId(1), &filter, &mut |e| fast.push(e.id));
            s.scan_full(AgentId(1), &filter, &mut |e| slow.push(e.id));
            fast.sort_unstable();
            slow.sort_unstable();
            assert_eq!(fast, slow, "filter {filter:?}");
        }
    }

    #[test]
    fn zone_map_pruning() {
        let s = seg_with_events();
        let filter = EventFilter::all().with_window(TimeWindow::new(Timestamp(1000), Timestamp(2000)));
        assert!(!s.overlaps_window(&filter));
        assert_eq!(s.estimate(&filter), 0);
        let mut n = 0;
        s.scan(AgentId(1), &filter, &mut |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn estimate_uses_cheapest_index() {
        let s = seg_with_events();
        let filter = EventFilter::all()
            .with_ops(OpSet::single(Operation::Read))
            .with_subjects(IdSet::from_iter([EntityId(2)]));
        // op count 2, subject postings 2 → estimate <= 2
        assert!(s.estimate(&filter) <= 2);
    }

    #[test]
    fn partition_key_bucketing() {
        let hour = 3_600_000_000i64;
        let k = PartitionKey::for_event(AgentId(2), Timestamp(hour + 5), hour);
        assert_eq!(k.bucket, 1);
        let neg = PartitionKey::for_event(AgentId(2), Timestamp(-1), hour);
        assert_eq!(neg.bucket, -1);
    }
}
