//! Injectable I/O faults for crash-consistency testing.
//!
//! Durability claims are only as good as the crash scenarios they were
//! tested against. [`FaultWriter`] wraps any [`Write`] sink and kills the
//! byte stream at an arbitrary offset: every byte up to `kill_at` reaches
//! the inner writer, every byte after it is silently dropped while the
//! writer keeps reporting success — exactly what a power loss looks like to
//! an application whose buffered writes never reached the platter. The
//! fault-injection suites drive the WAL through a killed writer at every
//! possible offset and assert recovery lands on a committed-batch prefix.

use std::io::Write;

/// A write-kill fault: the byte offset at which the sink "loses power".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Total bytes allowed through before writes start disappearing.
    pub kill_at: u64,
}

impl IoFault {
    /// A fault that kills writes after `kill_at` bytes.
    pub fn kill_at(kill_at: u64) -> Self {
        IoFault { kill_at }
    }
}

/// A [`Write`] adapter that applies an [`IoFault`]: bytes past the kill
/// offset are dropped without error, mirroring a crash that loses the
/// un-synced suffix of the file.
#[derive(Debug)]
pub struct FaultWriter<W: Write> {
    inner: W,
    fault: IoFault,
    written: u64,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: W, fault: IoFault) -> Self {
        FaultWriter {
            inner,
            fault,
            written: 0,
        }
    }

    /// Total bytes the caller has attempted to write (including lost ones).
    pub fn attempted(&self) -> u64 {
        self.written
    }

    /// Whether any write has been dropped by the fault.
    pub fn tripped(&self) -> bool {
        self.written > self.fault.kill_at
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let remaining = self.fault.kill_at.saturating_sub(self.written);
        let pass = (buf.len() as u64).min(remaining) as usize;
        if pass > 0 {
            self.inner.write_all(&buf[..pass])?;
        }
        // Report full success: the process believes the write landed, the
        // disk disagrees. That is the torn-write contract under test.
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_prefix_and_drops_suffix() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::new(&mut sink, IoFault::kill_at(5));
            w.write_all(b"abc").unwrap();
            w.write_all(b"defg").unwrap();
            w.flush().unwrap();
            assert_eq!(w.attempted(), 7);
            assert!(w.tripped());
        }
        assert_eq!(sink, b"abcde");
    }

    #[test]
    fn straddling_write_is_split_at_the_kill_offset() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::new(&mut sink, IoFault::kill_at(2));
            w.write_all(b"hello").unwrap(); // 2 land, 3 lost
            w.write_all(b"world").unwrap(); // all lost
            assert!(w.tripped());
        }
        assert_eq!(sink, b"he");
    }

    #[test]
    fn kill_at_zero_drops_everything() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::new(&mut sink, IoFault::kill_at(0));
            w.write_all(b"gone").unwrap();
        }
        assert!(sink.is_empty());
    }

    #[test]
    fn untripped_writer_is_transparent() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::new(&mut sink, IoFault::kill_at(1 << 20));
            w.write_all(b"all of it").unwrap();
            assert!(!w.tripped());
        }
        assert_eq!(sink, b"all of it");
    }
}
