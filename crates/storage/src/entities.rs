//! Deduplicated entity dictionary.
//!
//! System monitoring data repeats the same entities (processes, files,
//! connections) across millions of events. The paper's storage layer
//! deduplicates them; we intern every distinct ⟨agent, attributes⟩
//! combination into a dense [`EntityId`] and maintain *dictionary-level*
//! indexes so query constraints are resolved against the (small) entity
//! dictionary instead of the (huge) event table. That asymmetry is the
//! foundation of the engine's pruning-power scheduling: a `LIKE` pattern is
//! evaluated once against a few thousand distinct names, yielding an id set
//! that prunes event scans via posting lists.

use std::collections::HashMap;

use aiql_model::{
    AgentId, Entity, EntityAttrs, EntityId, EntityKind, Interner, StringPattern, Symbol, Value,
};

/// Comparison operator of an entity attribute constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrCmp {
    /// Equality against a value.
    Eq(Value),
    /// Inequality against a value.
    Ne(Value),
    /// Strictly less than.
    Lt(Value),
    /// Less than or equal.
    Le(Value),
    /// Strictly greater than.
    Gt(Value),
    /// Greater than or equal.
    Ge(Value),
    /// SQL-LIKE pattern match (string attributes; IPs match their dotted
    /// rendering so `dstip = "10.0.4.%"`-style investigations work).
    Like(StringPattern),
}

/// A single constraint over one entity attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityConstraint {
    /// Attribute name (`exe_name`, `dstip`, …). The empty string means the
    /// entity kind's default attribute (context-aware shortcut).
    pub attr: String,
    /// The comparison to apply.
    pub cmp: AttrCmp,
}

impl EntityConstraint {
    /// Constraint on the kind's default attribute.
    pub fn on_default(cmp: AttrCmp) -> Self {
        EntityConstraint {
            attr: String::new(),
            cmp,
        }
    }

    /// Constraint on a named attribute.
    pub fn on(attr: &str, cmp: AttrCmp) -> Self {
        EntityConstraint {
            attr: attr.to_string(),
            cmp,
        }
    }

    fn resolved_attr(&self, kind: EntityKind) -> &str {
        if self.attr.is_empty() {
            kind.default_attr()
        } else {
            &self.attr
        }
    }

    /// A rough selectivity estimate in `[0, 1]` used by the scheduler.
    pub fn selectivity_hint(&self) -> f64 {
        match &self.cmp {
            AttrCmp::Eq(_) => 0.002,
            AttrCmp::Like(p) => p.selectivity_hint(),
            AttrCmp::Ne(_) => 0.9,
            _ => 0.3,
        }
    }
}

/// The deduplicating entity dictionary, including the string interner shared
/// by the whole store.
#[derive(Debug)]
pub struct EntityStore {
    interner: Interner,
    entities: Vec<Entity>,
    dedup: HashMap<(AgentId, EntityAttrs), EntityId>,
    by_kind: [Vec<EntityId>; 3],
    /// Process entities grouped by executable-name symbol.
    proc_by_name: HashMap<Symbol, Vec<EntityId>>,
    /// File entities grouped by path symbol.
    file_by_name: HashMap<Symbol, Vec<EntityId>>,
    /// Network connections grouped by destination IP.
    conn_by_dst: HashMap<u32, Vec<EntityId>>,
    /// Count of observations that hit an existing entity (dedup savings).
    dedup_hits: u64,
}

impl Default for EntityStore {
    fn default() -> Self {
        Self::new()
    }
}

fn kind_slot(kind: EntityKind) -> usize {
    match kind {
        EntityKind::Process => 0,
        EntityKind::File => 1,
        EntityKind::NetConn => 2,
    }
}

impl EntityStore {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        EntityStore {
            interner: Interner::new(),
            entities: Vec::new(),
            dedup: HashMap::new(),
            by_kind: [Vec::new(), Vec::new(), Vec::new()],
            proc_by_name: HashMap::new(),
            file_by_name: HashMap::new(),
            conn_by_dst: HashMap::new(),
            dedup_hits: 0,
        }
    }

    /// The shared string dictionary.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the string dictionary (used by ingestion and by
    /// engines interning query literals).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns an entity observation, returning its stable id. Repeated
    /// observations of identical attributes on the same host dedup to the
    /// same id.
    pub fn intern(&mut self, agent: AgentId, attrs: EntityAttrs) -> EntityId {
        if let Some(&id) = self.dedup.get(&(agent, attrs)) {
            self.dedup_hits += 1;
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        let entity = Entity { id, agent, attrs };
        self.entities.push(entity);
        self.dedup.insert((agent, attrs), id);
        self.by_kind[kind_slot(attrs.kind())].push(id);
        match attrs {
            EntityAttrs::Process(p) => self.proc_by_name.entry(p.exe_name).or_default().push(id),
            EntityAttrs::File(f) => self.file_by_name.entry(f.name).or_default().push(id),
            EntityAttrs::NetConn(n) => self.conn_by_dst.entry(n.dst_ip.0).or_default().push(id),
        }
        id
    }

    /// Fetches an entity by id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this store.
    #[inline]
    pub fn get(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Number of distinct entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Number of distinct entities of one kind.
    pub fn count_kind(&self, kind: EntityKind) -> usize {
        self.by_kind[kind_slot(kind)].len()
    }

    /// Observations that were absorbed by deduplication.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// All entities of a kind, in id order.
    pub fn ids_of_kind(&self, kind: EntityKind) -> &[EntityId] {
        &self.by_kind[kind_slot(kind)]
    }

    /// Iterates all entities in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// Resolves the set of entity ids of `kind` satisfying all `constraints`
    /// (and, if given, restricted to `agents`). Uses the dictionary indexes
    /// when a constraint targets the kind's indexed attribute; otherwise
    /// falls back to a scan of the (small) per-kind dictionary.
    pub fn find(
        &self,
        kind: EntityKind,
        agents: Option<&[AgentId]>,
        constraints: &[EntityConstraint],
    ) -> Vec<EntityId> {
        // Try to seed the candidate set from a dictionary index.
        let mut candidates: Option<Vec<EntityId>> = None;
        for c in constraints {
            if let Some(seed) = self.index_lookup(kind, c) {
                candidates = Some(seed);
                break;
            }
        }
        let check = |id: &EntityId| -> bool {
            let e = self.get(*id);
            if e.kind() != kind {
                return false;
            }
            if let Some(agents) = agents {
                if !agents.contains(&e.agent) {
                    return false;
                }
            }
            constraints.iter().all(|c| self.eval(e, c))
        };
        match candidates {
            Some(seed) => seed.into_iter().filter(|id| check(id)).collect(),
            None => self.by_kind[kind_slot(kind)]
                .iter()
                .copied()
                .filter(|id| check(id))
                .collect(),
        }
    }

    /// Attempts an index-assisted candidate lookup for one constraint.
    fn index_lookup(&self, kind: EntityKind, c: &EntityConstraint) -> Option<Vec<EntityId>> {
        let attr = c.resolved_attr(kind);
        match (kind, attr) {
            (EntityKind::Process, "exe_name" | "name") => {
                self.sym_index_lookup(&self.proc_by_name, c)
            }
            (EntityKind::File, "name" | "path") => self.sym_index_lookup(&self.file_by_name, c),
            (EntityKind::NetConn, "dst_ip" | "dstip") => match &c.cmp {
                AttrCmp::Eq(Value::Ip(ip)) => {
                    Some(self.conn_by_dst.get(&ip.0).cloned().unwrap_or_default())
                }
                AttrCmp::Like(p) => {
                    // Evaluate the pattern over distinct destination IPs.
                    let mut out = Vec::new();
                    for (raw, ids) in &self.conn_by_dst {
                        let rendered = aiql_model::IpV4(*raw).to_string();
                        if p.matches(&rendered) {
                            out.extend_from_slice(ids);
                        }
                    }
                    Some(out)
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn sym_index_lookup(
        &self,
        index: &HashMap<Symbol, Vec<EntityId>>,
        c: &EntityConstraint,
    ) -> Option<Vec<EntityId>> {
        match &c.cmp {
            AttrCmp::Eq(Value::Str(sym)) => Some(index.get(sym).cloned().unwrap_or_default()),
            AttrCmp::Like(p) => {
                // Evaluate the pattern once per *distinct* string — the core
                // dictionary-vs-events asymmetry.
                let mut out = Vec::new();
                for (sym, ids) in index {
                    if p.matches(self.interner.resolve(*sym)) {
                        out.extend_from_slice(ids);
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Evaluates one constraint against one entity.
    pub fn eval(&self, entity: &Entity, c: &EntityConstraint) -> bool {
        let attr = c.resolved_attr(entity.kind());
        let Ok(actual) = entity.get(attr) else {
            return false;
        };
        self.eval_value(actual, &c.cmp)
    }

    /// Evaluates a comparison against a concrete attribute value.
    pub fn eval_value(&self, actual: Value, cmp: &AttrCmp) -> bool {
        use std::cmp::Ordering::*;
        match cmp {
            AttrCmp::Eq(v) => actual.compare(*v) == Some(Equal),
            AttrCmp::Ne(v) => matches!(actual.compare(*v), Some(Less) | Some(Greater)),
            AttrCmp::Lt(v) => actual.compare(*v) == Some(Less),
            AttrCmp::Le(v) => matches!(actual.compare(*v), Some(Less) | Some(Equal)),
            AttrCmp::Gt(v) => actual.compare(*v) == Some(Greater),
            AttrCmp::Ge(v) => matches!(actual.compare(*v), Some(Greater) | Some(Equal)),
            AttrCmp::Like(p) => match actual {
                Value::Str(sym) => p.matches(self.interner.resolve(sym)),
                Value::Ip(ip) => p.matches(&ip.to_string()),
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{FileAttrs, IpV4, NetConnAttrs, ProcessAttrs, Protocol};

    fn store_with_procs(names: &[&str]) -> EntityStore {
        let mut s = EntityStore::new();
        for (i, name) in names.iter().enumerate() {
            let exe = s.interner_mut().intern(name);
            let user = s.interner_mut().intern("alice");
            let cmd = s.interner_mut().intern("");
            s.intern(
                AgentId(1),
                EntityAttrs::Process(ProcessAttrs {
                    pid: 1000 + i as u32,
                    exe_name: exe,
                    user,
                    cmdline: cmd,
                }),
            );
        }
        s
    }

    #[test]
    fn interning_dedups_identical_entities() {
        let mut s = EntityStore::new();
        let exe = s.interner_mut().intern("cmd.exe");
        let user = s.interner_mut().intern("bob");
        let cmd = s.interner_mut().intern("");
        let attrs = EntityAttrs::Process(ProcessAttrs {
            pid: 42,
            exe_name: exe,
            user,
            cmdline: cmd,
        });
        let a = s.intern(AgentId(1), attrs);
        let b = s.intern(AgentId(1), attrs);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dedup_hits(), 1);
        // Same attrs on another host is a different entity.
        let c = s.intern(AgentId(2), attrs);
        assert_ne!(a, c);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn like_lookup_uses_name_dictionary() {
        let s = store_with_procs(&[
            "C:\\Windows\\cmd.exe",
            "C:\\Windows\\powershell.exe",
            "/usr/bin/bash",
        ]);
        let found = s.find(
            EntityKind::Process,
            None,
            &[EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new("%cmd.exe"),
            ))],
        );
        assert_eq!(found.len(), 1);
        let e = s.get(found[0]);
        assert_eq!(e.kind(), EntityKind::Process);
    }

    #[test]
    fn agent_filter_applies() {
        let mut s = store_with_procs(&["a.exe"]);
        let exe = s.interner_mut().intern("a.exe");
        let user = s.interner_mut().intern("alice");
        let cmd = s.interner_mut().intern("");
        s.intern(
            AgentId(2),
            EntityAttrs::Process(ProcessAttrs {
                pid: 7,
                exe_name: exe,
                user,
                cmdline: cmd,
            }),
        );
        let only_agent2 = s.find(EntityKind::Process, Some(&[AgentId(2)]), &[]);
        assert_eq!(only_agent2.len(), 1);
        assert_eq!(s.get(only_agent2[0]).agent, AgentId(2));
    }

    #[test]
    fn netconn_dst_ip_index() {
        let mut s = EntityStore::new();
        for d in [1u8, 2, 129] {
            s.intern(
                AgentId(1),
                EntityAttrs::NetConn(NetConnAttrs {
                    src_ip: IpV4::from_octets(10, 0, 0, 5),
                    src_port: 5000,
                    dst_ip: IpV4::from_octets(10, 0, 4, d),
                    dst_port: 443,
                    protocol: Protocol::Tcp,
                }),
            );
        }
        let hit = s.find(
            EntityKind::NetConn,
            None,
            &[EntityConstraint::on(
                "dstip",
                AttrCmp::Eq(Value::Ip(IpV4::from_octets(10, 0, 4, 129))),
            )],
        );
        assert_eq!(hit.len(), 1);
        // LIKE over rendered IPs also works (`%.129`).
        let like = s.find(
            EntityKind::NetConn,
            None,
            &[EntityConstraint::on(
                "dstip",
                AttrCmp::Like(StringPattern::new("%.129")),
            )],
        );
        assert_eq!(like, hit);
    }

    #[test]
    fn numeric_constraints_scan_dictionary() {
        let s = store_with_procs(&["a", "b", "c"]);
        let found = s.find(
            EntityKind::Process,
            None,
            &[EntityConstraint::on("pid", AttrCmp::Ge(Value::Int(1001)))],
        );
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn file_name_index() {
        let mut s = EntityStore::new();
        for name in ["/var/www/info_stealer.sh", "/etc/passwd", "/tmp/x"] {
            let n = s.interner_mut().intern(name);
            let o = s.interner_mut().intern("root");
            s.intern(
                AgentId(3),
                EntityAttrs::File(FileAttrs { name: n, owner: o }),
            );
        }
        let found = s.find(
            EntityKind::File,
            None,
            &[EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new("%info_stealer%"),
            ))],
        );
        assert_eq!(found.len(), 1);
        assert_eq!(s.count_kind(EntityKind::File), 3);
    }

    #[test]
    fn kind_mismatch_yields_empty() {
        let s = store_with_procs(&["x"]);
        assert!(s.find(EntityKind::File, None, &[]).is_empty());
    }
}
