//! Deduplicated entity dictionary.
//!
//! System monitoring data repeats the same entities (processes, files,
//! connections) across millions of events. The paper's storage layer
//! deduplicates them; we intern every distinct ⟨agent, attributes⟩
//! combination into a dense [`EntityId`] and maintain *dictionary-level*
//! indexes so query constraints are resolved against the (small) entity
//! dictionary instead of the (huge) event table. That asymmetry is the
//! foundation of the engine's pruning-power scheduling: a `LIKE` pattern is
//! evaluated once against a few thousand distinct names, yielding an id set
//! that prunes event scans via posting lists.

use std::collections::{BTreeMap, HashMap};

use aiql_model::{
    AgentId, Entity, EntityAttrs, EntityId, EntityKind, Interner, PatternShape, StringPattern,
    Symbol, Value,
};

/// Inserts `key` into a posting list kept in ascending order. Keys arrive
/// mostly ascending (dictionary interning order), so this is an append in
/// the common case and a binary-search insert otherwise.
fn sorted_insert(list: &mut Vec<u32>, key: u32) {
    match list.last() {
        Some(&last) if last < key => list.push(key),
        _ => {
            if let Err(pos) = list.binary_search(&key) {
                list.insert(pos, key);
            }
        }
    }
}

/// Sort-merge intersection of two ascending key lists.
fn intersect_keys(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Candidate keys produced by a [`DictIndex`] pattern lookup.
enum DictCandidates {
    /// Definitive match set — no per-string verification needed.
    Definitive(Vec<u32>),
    /// Superset of the matching keys; verify the pattern per candidate.
    Verify(Vec<u32>),
    /// The index cannot narrow this pattern (no trigram-length literal run);
    /// fall back to scanning the distinct dictionary strings.
    Scan,
}

/// N-gram + prefix index over one dictionary's distinct renderings.
///
/// Maps each distinct (ASCII-lowercased) string to an opaque `u32` key — a
/// [`Symbol`] for name dictionaries, a raw IPv4 for the destination-IP
/// dictionary. `LIKE` patterns resolve by intersecting trigram posting
/// lists (then verifying the survivors) instead of matching the pattern
/// against every distinct string; `prefix%` and wildcard-free patterns
/// resolve definitively from the sorted rendering map.
#[derive(Debug, Default, Clone)]
struct DictIndex {
    /// Lowercased rendering → keys sharing it (distinct original casings of
    /// one name are distinct symbols). Sorted, so prefix lookups are range
    /// scans.
    by_lower: BTreeMap<Box<str>, Vec<u32>>,
    /// Byte trigram of a lowercased rendering → keys containing it.
    trigrams: HashMap<[u8; 3], Vec<u32>>,
}

impl DictIndex {
    /// Indexes one new dictionary entry. Call once per distinct key.
    fn insert(&mut self, key: u32, rendered: &str) {
        let lowered = rendered.to_ascii_lowercase();
        let bytes = lowered.as_bytes();
        let mut grams: Vec<[u8; 3]> = bytes.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
        grams.sort_unstable();
        grams.dedup();
        for g in grams {
            sorted_insert(self.trigrams.entry(g).or_default(), key);
        }
        match self.by_lower.get_mut(lowered.as_str()) {
            Some(keys) => sorted_insert(keys, key),
            None => {
                self.by_lower.insert(lowered.into_boxed_str(), vec![key]);
            }
        }
    }

    /// Resolves a `LIKE` pattern to candidate keys.
    fn resolve(&self, p: &StringPattern) -> DictCandidates {
        match p.shape() {
            PatternShape::Exact => {
                let lowered = p.exact_lowered().expect("exact shape");
                DictCandidates::Definitive(
                    self.by_lower
                        .get(lowered.as_str())
                        .cloned()
                        .unwrap_or_default(),
                )
            }
            PatternShape::Prefix => {
                let prefix = p.literal_prefix().expect("prefix shape");
                let mut keys = Vec::new();
                for (_, k) in self
                    .by_lower
                    .range::<str, _>((
                        std::ops::Bound::Included(prefix.as_str()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take_while(|(s, _)| s.starts_with(prefix.as_str()))
                {
                    keys.extend_from_slice(k);
                }
                keys.sort_unstable();
                keys.dedup();
                DictCandidates::Definitive(keys)
            }
            PatternShape::Suffix | PatternShape::Scan => {
                // Every literal run must appear in a matching string, so each
                // run's trigrams gate the candidate set. Intersect
                // smallest-first and bail as soon as the set empties.
                let mut lists: Vec<&[u32]> = Vec::new();
                for run in p.literal_runs() {
                    for w in run.as_bytes().windows(3) {
                        match self.trigrams.get(&[w[0], w[1], w[2]]) {
                            Some(l) => lists.push(l.as_slice()),
                            // A required trigram no string contains: nothing
                            // can match.
                            None => return DictCandidates::Definitive(Vec::new()),
                        }
                    }
                }
                if lists.is_empty() {
                    return DictCandidates::Scan;
                }
                lists.sort_by_key(|l| l.len());
                let mut keys = lists[0].to_vec();
                for l in &lists[1..] {
                    if keys.is_empty() {
                        break;
                    }
                    keys = intersect_keys(&keys, l);
                }
                DictCandidates::Verify(keys)
            }
        }
    }
}

/// Comparison operator of an entity attribute constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrCmp {
    /// Equality against a value.
    Eq(Value),
    /// Inequality against a value.
    Ne(Value),
    /// Strictly less than.
    Lt(Value),
    /// Less than or equal.
    Le(Value),
    /// Strictly greater than.
    Gt(Value),
    /// Greater than or equal.
    Ge(Value),
    /// SQL-LIKE pattern match (string attributes; IPs match their dotted
    /// rendering so `dstip = "10.0.4.%"`-style investigations work).
    Like(StringPattern),
}

/// A single constraint over one entity attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityConstraint {
    /// Attribute name (`exe_name`, `dstip`, …). The empty string means the
    /// entity kind's default attribute (context-aware shortcut).
    pub attr: String,
    /// The comparison to apply.
    pub cmp: AttrCmp,
}

impl EntityConstraint {
    /// Constraint on the kind's default attribute.
    pub fn on_default(cmp: AttrCmp) -> Self {
        EntityConstraint {
            attr: String::new(),
            cmp,
        }
    }

    /// Constraint on a named attribute.
    pub fn on(attr: &str, cmp: AttrCmp) -> Self {
        EntityConstraint {
            attr: attr.to_string(),
            cmp,
        }
    }

    fn resolved_attr(&self, kind: EntityKind) -> &str {
        if self.attr.is_empty() {
            kind.default_attr()
        } else {
            &self.attr
        }
    }

    /// A rough selectivity estimate in `[0, 1]` used by the scheduler.
    pub fn selectivity_hint(&self) -> f64 {
        match &self.cmp {
            AttrCmp::Eq(_) => 0.002,
            AttrCmp::Like(p) => p.selectivity_hint(),
            AttrCmp::Ne(_) => 0.9,
            _ => 0.3,
        }
    }
}

/// The deduplicating entity dictionary, including the string interner shared
/// by the whole store.
#[derive(Debug)]
pub struct EntityStore {
    interner: Interner,
    entities: Vec<Entity>,
    dedup: HashMap<(AgentId, EntityAttrs), EntityId>,
    by_kind: [Vec<EntityId>; 3],
    /// Process entities grouped by executable-name symbol.
    proc_by_name: HashMap<Symbol, Vec<EntityId>>,
    /// File entities grouped by path symbol.
    file_by_name: HashMap<Symbol, Vec<EntityId>>,
    /// Network connections grouped by destination IP.
    conn_by_dst: HashMap<u32, Vec<EntityId>>,
    /// Trigram/prefix index over distinct process executable names.
    proc_dict: DictIndex,
    /// Trigram/prefix index over distinct file paths.
    file_dict: DictIndex,
    /// Trigram/prefix index over rendered destination IPs.
    conn_dict: DictIndex,
    /// Whether `LIKE` resolution may use the n-gram/prefix indexes (the
    /// naive full-dictionary scan is kept for ablation and as the
    /// differential-test oracle).
    ngram_index: bool,
    /// Distinct hosts observed, ascending (the `find` agent-restriction
    /// fast path: a restriction covering every host is a no-op).
    agents_seen: Vec<AgentId>,
    /// Count of observations that hit an existing entity (dedup savings).
    /// Atomic so the copy-on-write ingest fast path ([`Self::lookup`]) can
    /// record hits through a shared reference without cloning the
    /// dictionary.
    dedup_hits: std::sync::atomic::AtomicU64,
}

impl Clone for EntityStore {
    fn clone(&self) -> Self {
        EntityStore {
            interner: self.interner.clone(),
            entities: self.entities.clone(),
            dedup: self.dedup.clone(),
            by_kind: self.by_kind.clone(),
            proc_by_name: self.proc_by_name.clone(),
            file_by_name: self.file_by_name.clone(),
            conn_by_dst: self.conn_by_dst.clone(),
            proc_dict: self.proc_dict.clone(),
            file_dict: self.file_dict.clone(),
            conn_dict: self.conn_dict.clone(),
            ngram_index: self.ngram_index,
            agents_seen: self.agents_seen.clone(),
            dedup_hits: std::sync::atomic::AtomicU64::new(
                self.dedup_hits.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl EntityStore {
    /// Clone for publication into a read-only snapshot: identical
    /// query-visible state (entities, interner, name and n-gram indexes),
    /// but the dedup map — consulted only by the ingest path, which never
    /// runs against a snapshot — stays empty. Skipping it roughly halves
    /// the copy a dictionary-changing publish pays, and the copy itself is
    /// what keeps the writer's dictionary `Arc` unique so commits never
    /// hit `Arc::make_mut`'s copy-on-write slow path.
    pub(crate) fn clone_for_read(&self) -> Self {
        EntityStore {
            interner: self.interner.clone(),
            entities: self.entities.clone(),
            dedup: HashMap::new(),
            by_kind: self.by_kind.clone(),
            proc_by_name: self.proc_by_name.clone(),
            file_by_name: self.file_by_name.clone(),
            conn_by_dst: self.conn_by_dst.clone(),
            proc_dict: self.proc_dict.clone(),
            file_dict: self.file_dict.clone(),
            conn_dict: self.conn_dict.clone(),
            ngram_index: self.ngram_index,
            agents_seen: self.agents_seen.clone(),
            dedup_hits: std::sync::atomic::AtomicU64::new(
                self.dedup_hits.load(std::sync::atomic::Ordering::Relaxed),
            ),
        }
    }
}

impl Default for EntityStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Sorts and dedups an id vector assembled from per-key posting lists.
fn finish_ids(mut ids: Vec<EntityId>) -> Vec<EntityId> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Whether sorted `restriction` contains every element of sorted `seen`.
fn covers(restriction: &[AgentId], seen: &[AgentId]) -> bool {
    seen.iter().all(|a| restriction.binary_search(a).is_ok())
}

fn kind_slot(kind: EntityKind) -> usize {
    match kind {
        EntityKind::Process => 0,
        EntityKind::File => 1,
        EntityKind::NetConn => 2,
    }
}

impl EntityStore {
    /// Creates an empty dictionary with the n-gram indexes enabled.
    pub fn new() -> Self {
        Self::with_ngram_index(true)
    }

    /// Creates an empty dictionary, optionally without the n-gram/prefix
    /// indexes (`LIKE` constraints then scan the distinct strings — the
    /// pre-index behavior, kept for ablation).
    pub fn with_ngram_index(ngram_index: bool) -> Self {
        EntityStore {
            interner: Interner::new(),
            entities: Vec::new(),
            dedup: HashMap::new(),
            by_kind: [Vec::new(), Vec::new(), Vec::new()],
            proc_by_name: HashMap::new(),
            file_by_name: HashMap::new(),
            conn_by_dst: HashMap::new(),
            proc_dict: DictIndex::default(),
            file_dict: DictIndex::default(),
            conn_dict: DictIndex::default(),
            ngram_index,
            agents_seen: Vec::new(),
            dedup_hits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shared string dictionary.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the string dictionary (used by ingestion and by
    /// engines interning query literals).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns an entity observation, returning its stable id. Repeated
    /// observations of identical attributes on the same host dedup to the
    /// same id.
    pub fn intern(&mut self, agent: AgentId, attrs: EntityAttrs) -> EntityId {
        if let Some(&id) = self.dedup.get(&(agent, attrs)) {
            self.note_dedup_hit();
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        let entity = Entity { id, agent, attrs };
        self.entities.push(entity);
        self.dedup.insert((agent, attrs), id);
        self.by_kind[kind_slot(attrs.kind())].push(id);
        if let Err(pos) = self.agents_seen.binary_search(&agent) {
            self.agents_seen.insert(pos, agent);
        }
        // Group the entity under its dictionary key; the first observation
        // of a distinct key also enters the n-gram/prefix index.
        match attrs {
            EntityAttrs::Process(p) => {
                let ids = self.proc_by_name.entry(p.exe_name).or_default();
                if ids.is_empty() && self.ngram_index {
                    self.proc_dict
                        .insert(p.exe_name.raw(), self.interner.resolve(p.exe_name));
                }
                ids.push(id);
            }
            EntityAttrs::File(f) => {
                let ids = self.file_by_name.entry(f.name).or_default();
                if ids.is_empty() && self.ngram_index {
                    self.file_dict
                        .insert(f.name.raw(), self.interner.resolve(f.name));
                }
                ids.push(id);
            }
            EntityAttrs::NetConn(n) => {
                let ids = self.conn_by_dst.entry(n.dst_ip.0).or_default();
                if ids.is_empty() && self.ngram_index {
                    self.conn_dict.insert(n.dst_ip.0, &n.dst_ip.to_string());
                }
                ids.push(id);
            }
        }
        id
    }

    /// Fetches an entity by id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this store.
    #[inline]
    pub fn get(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Number of distinct entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Number of distinct entities of one kind.
    pub fn count_kind(&self, kind: EntityKind) -> usize {
        self.by_kind[kind_slot(kind)].len()
    }

    /// Read-only dedup probe: the id of an already-interned ⟨agent, attrs⟩
    /// combination, or `None` when the observation is genuinely new. The
    /// copy-on-write ingest fast path probes this through the shared
    /// dictionary `Arc` — an all-hits batch never clones the dictionary.
    pub fn lookup(&self, agent: AgentId, attrs: EntityAttrs) -> Option<EntityId> {
        self.dedup.get(&(agent, attrs)).copied()
    }

    /// Records a dedup hit observed through [`Self::lookup`] (interning
    /// through `intern` records its own hits).
    pub fn note_dedup_hit(&self) {
        self.dedup_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Observations that were absorbed by deduplication.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// All entities of a kind, in id order.
    pub fn ids_of_kind(&self, kind: EntityKind) -> &[EntityId] {
        &self.by_kind[kind_slot(kind)]
    }

    /// Iterates all entities in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// Resolves the set of entity ids of `kind` satisfying all `constraints`
    /// (and, if given, restricted to `agents`). Uses the dictionary indexes
    /// when a constraint targets the kind's indexed attribute; otherwise
    /// falls back to a scan of the (small) per-kind dictionary.
    pub fn find(
        &self,
        kind: EntityKind,
        agents: Option<&[AgentId]>,
        constraints: &[EntityConstraint],
    ) -> Vec<EntityId> {
        // Sort the agent restriction once so the per-candidate test is a
        // binary search; a restriction covering every observed host is a
        // no-op and is dropped entirely.
        let sorted_agents: Option<Vec<AgentId>> = agents.map(|a| {
            let mut v = a.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        });
        let agent_filter: Option<&[AgentId]> = match &sorted_agents {
            Some(v) if covers(v, &self.agents_seen) => None,
            Some(v) => Some(v.as_slice()),
            None => None,
        };
        // Seed the candidate set from the most selective dictionary index
        // hit (every constraint is re-verified below, so any seed is sound).
        let candidates: Option<Vec<EntityId>> = constraints
            .iter()
            .filter_map(|c| self.index_lookup(kind, c))
            .min_by_key(Vec::len);
        let check = |id: &EntityId| -> bool {
            let e = self.get(*id);
            if e.kind() != kind {
                return false;
            }
            if let Some(agents) = agent_filter {
                if agents.binary_search(&e.agent).is_err() {
                    return false;
                }
            }
            constraints.iter().all(|c| self.eval(e, c))
        };
        match candidates {
            Some(seed) => seed.into_iter().filter(|id| check(id)).collect(),
            None => self.by_kind[kind_slot(kind)]
                .iter()
                .copied()
                .filter(|id| check(id))
                .collect(),
        }
    }

    /// Attempts an index-assisted candidate lookup for one constraint. The
    /// returned id vector is **sorted and deduped** (dictionary-assigned ids
    /// ascend, so downstream posting-list merges can sort-merge).
    fn index_lookup(&self, kind: EntityKind, c: &EntityConstraint) -> Option<Vec<EntityId>> {
        let attr = c.resolved_attr(kind);
        match (kind, attr) {
            (EntityKind::Process, "exe_name" | "name") => {
                self.sym_index_lookup(&self.proc_by_name, &self.proc_dict, c)
            }
            (EntityKind::File, "name" | "path") => {
                self.sym_index_lookup(&self.file_by_name, &self.file_dict, c)
            }
            (EntityKind::NetConn, "dst_ip" | "dstip") => match &c.cmp {
                AttrCmp::Eq(Value::Ip(ip)) => Some(finish_ids(
                    self.conn_by_dst.get(&ip.0).cloned().unwrap_or_default(),
                )),
                AttrCmp::Like(p) => {
                    let resolve_keys = |keys: &[u32]| -> Vec<EntityId> {
                        let mut out = Vec::new();
                        for raw in keys {
                            if let Some(ids) = self.conn_by_dst.get(raw) {
                                out.extend_from_slice(ids);
                            }
                        }
                        finish_ids(out)
                    };
                    if self.ngram_index {
                        match self.conn_dict.resolve(p) {
                            DictCandidates::Definitive(keys) => return Some(resolve_keys(&keys)),
                            DictCandidates::Verify(keys) => {
                                let verified: Vec<u32> = keys
                                    .into_iter()
                                    .filter(|raw| p.matches(&aiql_model::IpV4(*raw).to_string()))
                                    .collect();
                                return Some(resolve_keys(&verified));
                            }
                            DictCandidates::Scan => {}
                        }
                    }
                    // Evaluate the pattern over distinct destination IPs.
                    let mut out = Vec::new();
                    for (raw, ids) in &self.conn_by_dst {
                        let rendered = aiql_model::IpV4(*raw).to_string();
                        if p.matches(&rendered) {
                            out.extend_from_slice(ids);
                        }
                    }
                    Some(finish_ids(out))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn sym_index_lookup(
        &self,
        index: &HashMap<Symbol, Vec<EntityId>>,
        dict: &DictIndex,
        c: &EntityConstraint,
    ) -> Option<Vec<EntityId>> {
        match &c.cmp {
            AttrCmp::Eq(Value::Str(sym)) => {
                Some(finish_ids(index.get(sym).cloned().unwrap_or_default()))
            }
            AttrCmp::Like(p) => {
                let resolve_keys = |keys: &[u32]| -> Vec<EntityId> {
                    let mut out = Vec::new();
                    for &raw in keys {
                        if let Some(ids) = index.get(&Symbol(raw)) {
                            out.extend_from_slice(ids);
                        }
                    }
                    finish_ids(out)
                };
                if self.ngram_index {
                    match dict.resolve(p) {
                        DictCandidates::Definitive(keys) => return Some(resolve_keys(&keys)),
                        DictCandidates::Verify(keys) => {
                            let verified: Vec<u32> = keys
                                .into_iter()
                                .filter(|&raw| p.matches(self.interner.resolve(Symbol(raw))))
                                .collect();
                            return Some(resolve_keys(&verified));
                        }
                        DictCandidates::Scan => {}
                    }
                }
                // Evaluate the pattern once per *distinct* string — the core
                // dictionary-vs-events asymmetry (and the n-gram fallback
                // when no literal run is trigram-sized).
                let mut out = Vec::new();
                for (sym, ids) in index {
                    if p.matches(self.interner.resolve(*sym)) {
                        out.extend_from_slice(ids);
                    }
                }
                Some(finish_ids(out))
            }
            _ => None,
        }
    }

    /// Evaluates one constraint against one entity.
    pub fn eval(&self, entity: &Entity, c: &EntityConstraint) -> bool {
        let attr = c.resolved_attr(entity.kind());
        let Ok(actual) = entity.get(attr) else {
            return false;
        };
        self.eval_value(actual, &c.cmp)
    }

    /// Evaluates a comparison against a concrete attribute value.
    pub fn eval_value(&self, actual: Value, cmp: &AttrCmp) -> bool {
        use std::cmp::Ordering::*;
        match cmp {
            AttrCmp::Eq(v) => actual.compare(*v) == Some(Equal),
            AttrCmp::Ne(v) => matches!(actual.compare(*v), Some(Less) | Some(Greater)),
            AttrCmp::Lt(v) => actual.compare(*v) == Some(Less),
            AttrCmp::Le(v) => matches!(actual.compare(*v), Some(Less) | Some(Equal)),
            AttrCmp::Gt(v) => actual.compare(*v) == Some(Greater),
            AttrCmp::Ge(v) => matches!(actual.compare(*v), Some(Greater) | Some(Equal)),
            AttrCmp::Like(p) => match actual {
                Value::Str(sym) => p.matches(self.interner.resolve(sym)),
                Value::Ip(ip) => p.matches(&ip.to_string()),
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{FileAttrs, IpV4, NetConnAttrs, ProcessAttrs, Protocol};

    fn store_with_procs(names: &[&str]) -> EntityStore {
        let mut s = EntityStore::new();
        for (i, name) in names.iter().enumerate() {
            let exe = s.interner_mut().intern(name);
            let user = s.interner_mut().intern("alice");
            let cmd = s.interner_mut().intern("");
            s.intern(
                AgentId(1),
                EntityAttrs::Process(ProcessAttrs {
                    pid: 1000 + i as u32,
                    exe_name: exe,
                    user,
                    cmdline: cmd,
                }),
            );
        }
        s
    }

    #[test]
    fn interning_dedups_identical_entities() {
        let mut s = EntityStore::new();
        let exe = s.interner_mut().intern("cmd.exe");
        let user = s.interner_mut().intern("bob");
        let cmd = s.interner_mut().intern("");
        let attrs = EntityAttrs::Process(ProcessAttrs {
            pid: 42,
            exe_name: exe,
            user,
            cmdline: cmd,
        });
        let a = s.intern(AgentId(1), attrs);
        let b = s.intern(AgentId(1), attrs);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dedup_hits(), 1);
        // Same attrs on another host is a different entity.
        let c = s.intern(AgentId(2), attrs);
        assert_ne!(a, c);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn like_lookup_uses_name_dictionary() {
        let s = store_with_procs(&[
            "C:\\Windows\\cmd.exe",
            "C:\\Windows\\powershell.exe",
            "/usr/bin/bash",
        ]);
        let found = s.find(
            EntityKind::Process,
            None,
            &[EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new("%cmd.exe"),
            ))],
        );
        assert_eq!(found.len(), 1);
        let e = s.get(found[0]);
        assert_eq!(e.kind(), EntityKind::Process);
    }

    #[test]
    fn agent_filter_applies() {
        let mut s = store_with_procs(&["a.exe"]);
        let exe = s.interner_mut().intern("a.exe");
        let user = s.interner_mut().intern("alice");
        let cmd = s.interner_mut().intern("");
        s.intern(
            AgentId(2),
            EntityAttrs::Process(ProcessAttrs {
                pid: 7,
                exe_name: exe,
                user,
                cmdline: cmd,
            }),
        );
        let only_agent2 = s.find(EntityKind::Process, Some(&[AgentId(2)]), &[]);
        assert_eq!(only_agent2.len(), 1);
        assert_eq!(s.get(only_agent2[0]).agent, AgentId(2));
    }

    #[test]
    fn netconn_dst_ip_index() {
        let mut s = EntityStore::new();
        for d in [1u8, 2, 129] {
            s.intern(
                AgentId(1),
                EntityAttrs::NetConn(NetConnAttrs {
                    src_ip: IpV4::from_octets(10, 0, 0, 5),
                    src_port: 5000,
                    dst_ip: IpV4::from_octets(10, 0, 4, d),
                    dst_port: 443,
                    protocol: Protocol::Tcp,
                }),
            );
        }
        let hit = s.find(
            EntityKind::NetConn,
            None,
            &[EntityConstraint::on(
                "dstip",
                AttrCmp::Eq(Value::Ip(IpV4::from_octets(10, 0, 4, 129))),
            )],
        );
        assert_eq!(hit.len(), 1);
        // LIKE over rendered IPs also works (`%.129`).
        let like = s.find(
            EntityKind::NetConn,
            None,
            &[EntityConstraint::on(
                "dstip",
                AttrCmp::Like(StringPattern::new("%.129")),
            )],
        );
        assert_eq!(like, hit);
    }

    #[test]
    fn numeric_constraints_scan_dictionary() {
        let s = store_with_procs(&["a", "b", "c"]);
        let found = s.find(
            EntityKind::Process,
            None,
            &[EntityConstraint::on("pid", AttrCmp::Ge(Value::Int(1001)))],
        );
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn file_name_index() {
        let mut s = EntityStore::new();
        for name in ["/var/www/info_stealer.sh", "/etc/passwd", "/tmp/x"] {
            let n = s.interner_mut().intern(name);
            let o = s.interner_mut().intern("root");
            s.intern(
                AgentId(3),
                EntityAttrs::File(FileAttrs { name: n, owner: o }),
            );
        }
        let found = s.find(
            EntityKind::File,
            None,
            &[EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new("%info_stealer%"),
            ))],
        );
        assert_eq!(found.len(), 1);
        assert_eq!(s.count_kind(EntityKind::File), 3);
    }

    #[test]
    fn kind_mismatch_yields_empty() {
        let s = store_with_procs(&["x"]);
        assert!(s.find(EntityKind::File, None, &[]).is_empty());
    }

    /// Every pattern shape must resolve identically through the n-gram
    /// index and the naive distinct-string scan, and both must come back
    /// sorted and deduped.
    #[test]
    fn ngram_index_agrees_with_naive_scan() {
        let names = [
            "C:\\Windows\\System32\\cmd.exe",
            "C:\\Windows\\CMD.EXE", // distinct casing, distinct symbol
            "C:\\Windows\\System32\\osql.exe",
            "/usr/sbin/sqlservr.exe",
            "/var/www/uploads/info_stealer.sh",
            "/var/www/uploads/index.php",
            "sbblv.exe",
            "ab", // shorter than a trigram
            "",
        ];
        let indexed = store_with_procs(&names);
        let mut naive = EntityStore::with_ngram_index(false);
        for (i, name) in names.iter().enumerate() {
            let exe = naive.interner_mut().intern(name);
            let user = naive.interner_mut().intern("alice");
            let cmd = naive.interner_mut().intern("");
            naive.intern(
                AgentId(1),
                EntityAttrs::Process(ProcessAttrs {
                    pid: 1000 + i as u32,
                    exe_name: exe,
                    user,
                    cmdline: cmd,
                }),
            );
        }
        let patterns = [
            "%cmd.exe",       // suffix, matches both casings
            "cmd.exe",        // exact (case-insensitive like)
            "C:\\Windows\\%", // prefix
            "%info_stealer%", // infix
            "%sql%",          // infix hitting two names
            "%o_ql%",         // `_` one-char wildcard inside a run
            "%",              // matches everything
            "ab",             // short exact
            "%zz%",           // no candidate trigram
            "",               // empty exact
            "x_",             // short scan shape, no trigram
        ];
        for pat in patterns {
            let c = [EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new(pat),
            ))];
            let a = indexed.find(EntityKind::Process, None, &c);
            let b = naive.find(EntityKind::Process, None, &c);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted: {pat}");
            assert_eq!(a, b, "pattern {pat:?}");
        }
    }

    #[test]
    fn ip_like_resolves_through_ngram_index() {
        let mut s = EntityStore::new();
        for d in [1u8, 2, 129, 130] {
            s.intern(
                AgentId(1),
                EntityAttrs::NetConn(NetConnAttrs {
                    src_ip: IpV4::from_octets(10, 0, 0, 5),
                    src_port: 5000,
                    dst_ip: IpV4::from_octets(172, 16, 99, d),
                    dst_port: 443,
                    protocol: Protocol::Tcp,
                }),
            );
        }
        let like = |pat: &str| {
            s.find(
                EntityKind::NetConn,
                None,
                &[EntityConstraint::on(
                    "dstip",
                    AttrCmp::Like(StringPattern::new(pat)),
                )],
            )
        };
        assert_eq!(like("172.16.99.%").len(), 4);
        assert_eq!(like("%.129").len(), 1);
        assert_eq!(like("172.16.99.129").len(), 1);
        assert!(like("10.0.%").is_empty());
    }

    #[test]
    fn agent_restriction_covering_all_hosts_is_dropped() {
        let mut s = store_with_procs(&["a.exe", "b.exe"]);
        let exe = s.interner_mut().intern("a.exe");
        let user = s.interner_mut().intern("alice");
        let cmd = s.interner_mut().intern("");
        s.intern(
            AgentId(9),
            EntityAttrs::Process(ProcessAttrs {
                pid: 7,
                exe_name: exe,
                user,
                cmdline: cmd,
            }),
        );
        let unrestricted = s.find(EntityKind::Process, None, &[]);
        // A superset of every observed host behaves exactly like `None`
        // (and exercises the unsorted-input path: agents arrive unsorted).
        let all = s.find(
            EntityKind::Process,
            Some(&[AgentId(9), AgentId(1), AgentId(3)]),
            &[],
        );
        assert_eq!(all, unrestricted);
        // A genuine restriction still filters.
        let only9 = s.find(EntityKind::Process, Some(&[AgentId(9)]), &[]);
        assert_eq!(only9.len(), 1);
        assert!(s.find(EntityKind::Process, Some(&[]), &[]).is_empty());
    }

    #[test]
    fn index_lookup_outputs_are_sorted_and_deduped() {
        // Two constraints resolvable by index: find must seed from the
        // smaller and still return ascending ids.
        let s = store_with_procs(&["match.exe", "other.exe", "match.exe2", "MATCH.exe"]);
        let found = s.find(
            EntityKind::Process,
            None,
            &[EntityConstraint::on_default(AttrCmp::Like(
                StringPattern::new("%match%"),
            ))],
        );
        assert_eq!(found.len(), 3);
        assert!(found.windows(2).all(|w| w[0] < w[1]));
    }
}
