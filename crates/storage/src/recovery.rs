//! Crash recovery: rebuild a store from its WAL, or from a snapshot with
//! WAL fallback.
//!
//! The persistence pair is checkpoint + log: [`crate::snapshot`] captures a
//! point-in-time store, the [`crate::wal`] makes ingestion since the last
//! checkpoint durable. [`recover`] rebuilds a store from the WAL alone by
//! re-ingesting each committed batch — because batch boundaries drive
//! segment sealing, the rebuilt store reproduces the physical layout (and
//! therefore every scan result, byte for byte) of a store that ingested the
//! same batches and never crashed. [`load_or_recover`] prefers the snapshot
//! but falls back to WAL replay when the snapshot body is corrupt, so a
//! damaged checkpoint degrades to a slower restart instead of data loss.

use std::path::Path;

use crate::snapshot;
use crate::store::{EventStore, StoreConfig};
use crate::wal::{ReplayReport, Wal, WalError};

/// How [`load_or_recover`] obtained the store.
#[derive(Debug)]
pub enum RecoverySource {
    /// The snapshot loaded cleanly.
    Snapshot,
    /// The snapshot was corrupt or unreadable; the store was rebuilt from
    /// the WAL. Carries the snapshot failure and the WAL replay report.
    WalFallback {
        snapshot_error: WalError,
        report: ReplayReport,
    },
}

impl RecoverySource {
    /// Whether the snapshot path failed and the WAL was used instead.
    pub fn fell_back(&self) -> bool {
        matches!(self, RecoverySource::WalFallback { .. })
    }
}

/// Rebuilds a store from a WAL by re-ingesting each committed batch in
/// commit order. Intact events past the last commit marker are dropped —
/// they were never acknowledged as committed — and a torn tail truncates
/// replay at the last whole record (see [`Wal::replay_report`]).
pub fn recover(
    config: StoreConfig,
    wal_path: &Path,
) -> Result<(EventStore, ReplayReport), WalError> {
    let report = Wal::replay_report(wal_path)?;
    let mut store = EventStore::new(config);
    for batch in &report.batches {
        store.ingest_all(batch);
    }
    Ok((store, report))
}

/// Loads the snapshot at `snapshot_path`, falling back to WAL replay of
/// `wal_path` if the snapshot is corrupt, truncated, or missing. Returns
/// the store plus where it came from so callers can log the degradation.
pub fn load_or_recover(
    snapshot_path: &Path,
    wal_path: &Path,
    config: StoreConfig,
) -> Result<(EventStore, RecoverySource), WalError> {
    match snapshot::load(snapshot_path) {
        Ok(store) => Ok((store, RecoverySource::Snapshot)),
        Err(snapshot_error) => {
            let (store, report) = recover(config, wal_path)?;
            Ok((
                store,
                RecoverySource::WalFallback {
                    snapshot_error,
                    report,
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EventFilter;
    use crate::ingest::{EntitySpec, RawEvent};
    use aiql_model::{AgentId, Operation, Timestamp};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "aiql-recovery-test-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    fn batch(base: i64, n: i64) -> Vec<RawEvent> {
        (0..n)
            .map(|i| {
                RawEvent::instant(
                    AgentId(((base + i) % 3) as u32),
                    Operation::Write,
                    EntitySpec::process(10 + i as u32, &format!("p{}.exe", base + i), "svc"),
                    EntitySpec::file(&format!("/var/log/{}", (base + i) % 7), "svc"),
                    Timestamp::from_secs((base + i) * 30),
                    (base + i) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn wal_recovery_matches_uncrashed_store() {
        let wal_path = tmpfile("rebuild");
        let mut wal = Wal::create(&wal_path).unwrap();
        let mut reference = EventStore::default();
        for b in 0..4 {
            let raws = batch(b * 10, 6);
            for e in &raws {
                wal.append(e).unwrap();
            }
            wal.commit().unwrap();
            reference.ingest_all(&raws);
        }
        drop(wal);
        let (recovered, report) = recover(StoreConfig::default(), &wal_path).unwrap();
        assert_eq!(report.batches.len(), 4);
        assert_eq!(
            recovered.scan_collect(&EventFilter::all()),
            reference.scan_collect(&EventFilter::all())
        );
        assert_eq!(recovered.segment_layouts(), reference.segment_layouts());
        std::fs::remove_file(&wal_path).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let wal_path = tmpfile("fb-wal");
        let snap_path = tmpfile("fb-snap");
        let mut wal = Wal::create(&wal_path).unwrap();
        let mut store = EventStore::default();
        let raws = batch(0, 12);
        for e in &raws {
            wal.append(e).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        store.ingest_all(&raws);
        snapshot::save(&store, &snap_path).unwrap();
        // Corrupt the snapshot body.
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();

        let (loaded, source) =
            load_or_recover(&snap_path, &wal_path, StoreConfig::default()).unwrap();
        assert!(source.fell_back());
        assert_eq!(
            loaded.scan_collect(&EventFilter::all()),
            store.scan_collect(&EventFilter::all())
        );
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn intact_snapshot_wins_over_wal() {
        let wal_path = tmpfile("pref-wal");
        let snap_path = tmpfile("pref-snap");
        let mut wal = Wal::create(&wal_path).unwrap();
        let mut store = EventStore::default();
        let raws = batch(5, 8);
        for e in &raws {
            wal.append(e).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        store.ingest_all(&raws);
        snapshot::save(&store, &snap_path).unwrap();
        let (_, source) = load_or_recover(&snap_path, &wal_path, StoreConfig::default()).unwrap();
        assert!(!source.fell_back());
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }
}
