//! Event scan filters (the predicate pushdown surface).
//!
//! An [`EventFilter`] is what an engine hands to the store: the global
//! spatial/temporal constraints plus the per-pattern operation set and
//! (optionally) the already-resolved subject/object entity id sets. The
//! storage layer picks an access path per segment — posting lists when an id
//! set is small, operation postings when the op set is selective, otherwise
//! a column scan.

use aiql_model::{AgentId, EntityId, Event, Operation, TimeWindow, OPERATION_COUNT};

/// A set of operations, encoded as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSet(pub u16);

// The mask math below silently corrupts if operations outgrow the u16; fail
// the build instead of the queries when someone adds a 17th operation.
const _: () = assert!(
    OPERATION_COUNT <= 16,
    "OpSet is a u16 bitmask; widen OpSet before adding more operations"
);

impl OpSet {
    /// The empty set.
    pub const EMPTY: OpSet = OpSet(0);
    /// All operations.
    pub const ALL: OpSet = OpSet((1 << OPERATION_COUNT as u16) - 1);

    /// A singleton set.
    pub fn single(op: Operation) -> Self {
        OpSet(1 << op.index() as u16)
    }

    /// Builds a set from a slice of operations.
    pub fn from_ops(ops: &[Operation]) -> Self {
        let mut s = OpSet::EMPTY;
        for &op in ops {
            s = s.with(op);
        }
        s
    }

    /// Returns the set with `op` added.
    #[must_use]
    pub fn with(self, op: Operation) -> Self {
        OpSet(self.0 | (1 << op.index() as u16))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, op: Operation) -> bool {
        self.0 & (1 << op.index() as u16) != 0
    }

    /// Number of operations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether this set covers every operation.
    pub fn is_all(self) -> bool {
        self.0 == Self::ALL.0
    }

    /// Iterates the member operations.
    pub fn iter(self) -> impl Iterator<Item = Operation> {
        (0..OPERATION_COUNT).filter_map(move |i| {
            if self.0 & (1 << i as u16) != 0 {
                Operation::from_index(i)
            } else {
                None
            }
        })
    }
}

/// A set of entity ids used for semi-join pushdown, stored as a dense
/// word-packed bitmap over the raw id space.
///
/// Entity ids are dictionary-assigned dense indices (see
/// `aiql_model::ids`), so a bitmap of `max_id / 64` words is compact, gives
/// O(1) membership inside column predicate loops, and makes the semi-join
/// narrowing of binding propagation a word-wise AND instead of a rebuilt
/// hash set.
#[derive(Debug, Clone, Default)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from any id iterator (inherent convenience; the trait impl
    /// below covers generic contexts).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = EntityId>) -> Self {
        let mut s = IdSet::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: EntityId) -> bool {
        let idx = id.index();
        match self.words.get(idx >> 6) {
            Some(w) => w & (1u64 << (idx & 63)) != 0,
            None => false,
        }
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: EntityId) {
        let idx = id.index();
        let word = idx >> 6;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (idx & 63);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.len += 1;
        }
    }

    /// Intersects in place (word-wise AND) — the semi-join narrowing step.
    pub fn intersect_with(&mut self, other: &IdSet) {
        if other.words.len() < self.words.len() {
            self.words.truncate(other.words.len());
        }
        let mut len = 0usize;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= *o;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(EntityId(((wi as u32) << 6) | bit))
            })
        })
    }
}

impl PartialEq for IdSet {
    fn eq(&self, other: &Self) -> bool {
        // Logical set equality: ignore trailing zero words.
        if self.len != other.len {
            return false;
        }
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short == &long[..short.len()] && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for IdSet {}

impl FromIterator<EntityId> for IdSet {
    fn from_iter<T: IntoIterator<Item = EntityId>>(iter: T) -> Self {
        Self::from_iter(iter)
    }
}

/// A pushed-down event predicate.
#[derive(Debug, Clone)]
pub struct EventFilter {
    /// Temporal constraint (`[start, end)`).
    pub window: TimeWindow,
    /// Spatial constraint; `None` means all hosts.
    pub agents: Option<Vec<AgentId>>,
    /// Operations to match.
    pub ops: OpSet,
    /// If set, the subject must be in this set.
    pub subjects: Option<IdSet>,
    /// If set, the object must be in this set.
    pub objects: Option<IdSet>,
    /// Minimum `amount` (bytes), if any.
    pub min_amount: Option<u64>,
}

impl Default for EventFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl EventFilter {
    /// A filter matching every event.
    pub fn all() -> Self {
        EventFilter {
            window: TimeWindow::ALL,
            agents: None,
            ops: OpSet::ALL,
            subjects: None,
            objects: None,
            min_amount: None,
        }
    }

    /// Restricts the filter to a time window (intersection).
    #[must_use]
    pub fn with_window(mut self, window: TimeWindow) -> Self {
        self.window = self.window.intersect(&window);
        self
    }

    /// Restricts the filter to a set of agents.
    #[must_use]
    pub fn with_agents(mut self, agents: Vec<AgentId>) -> Self {
        self.agents = Some(agents);
        self
    }

    /// Restricts the operation set.
    #[must_use]
    pub fn with_ops(mut self, ops: OpSet) -> Self {
        self.ops = ops;
        self
    }

    /// Restricts subjects to an id set.
    #[must_use]
    pub fn with_subjects(mut self, ids: IdSet) -> Self {
        self.subjects = Some(ids);
        self
    }

    /// Restricts objects to an id set.
    #[must_use]
    pub fn with_objects(mut self, ids: IdSet) -> Self {
        self.objects = Some(ids);
        self
    }

    /// Whether a fully materialized event satisfies every predicate. This is
    /// the reference semantics; the segment scanners must agree with it.
    pub fn matches(&self, e: &Event) -> bool {
        if !self.ops.contains(e.op) {
            return false;
        }
        if !self.window.contains(e.start_time) {
            return false;
        }
        if let Some(agents) = &self.agents {
            if !agents.contains(&e.agent) {
                return false;
            }
        }
        if let Some(s) = &self.subjects {
            if !s.contains(e.subject) {
                return false;
            }
        }
        if let Some(o) = &self.objects {
            if !o.contains(e.object) {
                return false;
            }
        }
        if let Some(min) = self.min_amount {
            if e.amount < min {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{EventId, Timestamp};

    fn ev(op: Operation, agent: u32, t: i64) -> Event {
        Event {
            id: EventId(0),
            agent: AgentId(agent),
            op,
            subject: EntityId(1),
            object: EntityId(2),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 1),
            amount: 10,
        }
    }

    #[test]
    fn opset_membership_and_iter() {
        let s = OpSet::from_ops(&[Operation::Read, Operation::Write]);
        assert!(s.contains(Operation::Read));
        assert!(s.contains(Operation::Write));
        assert!(!s.contains(Operation::Connect));
        assert_eq!(s.len(), 2);
        let ops: Vec<_> = s.iter().collect();
        assert_eq!(ops, vec![Operation::Read, Operation::Write]);
    }

    #[test]
    fn opset_all_contains_everything() {
        for op in aiql_model::event::ALL_OPERATIONS {
            assert!(OpSet::ALL.contains(op));
        }
        assert!(OpSet::ALL.is_all());
        assert!(OpSet::EMPTY.is_empty());
    }

    #[test]
    fn filter_matches_reference_semantics() {
        let f = EventFilter::all()
            .with_ops(OpSet::single(Operation::Read))
            .with_window(TimeWindow::new(Timestamp(0), Timestamp(100)))
            .with_agents(vec![AgentId(1)]);
        assert!(f.matches(&ev(Operation::Read, 1, 50)));
        assert!(!f.matches(&ev(Operation::Write, 1, 50)));
        assert!(!f.matches(&ev(Operation::Read, 2, 50)));
        assert!(!f.matches(&ev(Operation::Read, 1, 150)));
    }

    #[test]
    fn filter_entity_sets() {
        let f = EventFilter::all()
            .with_subjects(IdSet::from_iter([EntityId(1)]))
            .with_objects(IdSet::from_iter([EntityId(9)]));
        let mut e = ev(Operation::Read, 1, 1);
        assert!(!f.matches(&e)); // object 2 not in {9}
        e.object = EntityId(9);
        assert!(f.matches(&e));
        e.subject = EntityId(5);
        assert!(!f.matches(&e));
    }

    #[test]
    fn filter_min_amount() {
        let mut f = EventFilter::all();
        f.min_amount = Some(100);
        let mut e = ev(Operation::Send, 1, 1);
        assert!(!f.matches(&e));
        e.amount = 100;
        assert!(f.matches(&e));
    }

    #[test]
    fn idset_basics() {
        let mut s = IdSet::new();
        assert!(s.is_empty());
        s.insert(EntityId(3));
        assert!(s.contains(EntityId(3)));
        assert!(!s.contains(EntityId(4)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn idset_bitmap_across_words() {
        let ids = [0u32, 1, 63, 64, 65, 127, 128, 1000];
        let s = IdSet::from_iter(ids.iter().map(|&i| EntityId(i)));
        assert_eq!(s.len(), ids.len());
        for &i in &ids {
            assert!(s.contains(EntityId(i)));
        }
        assert!(!s.contains(EntityId(999)));
        assert!(!s.contains(EntityId(100_000)));
        // Iteration is ascending.
        let got: Vec<u32> = s.iter().map(EntityId::raw).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn idset_duplicate_inserts_counted_once() {
        let mut s = IdSet::new();
        s.insert(EntityId(70));
        s.insert(EntityId(70));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn idset_intersect_in_place() {
        let mut a = IdSet::from_iter([1, 64, 65, 200, 500].map(EntityId));
        let b = IdSet::from_iter([64, 200, 501].map(EntityId));
        a.intersect_with(&b);
        assert_eq!(a.len(), 2);
        let got: Vec<u32> = a.iter().map(EntityId::raw).collect();
        assert_eq!(got, vec![64, 200]);
        // Intersection with a shorter bitmap truncates the tail words.
        let mut c = IdSet::from_iter([5, 100_000].map(EntityId));
        let d = IdSet::from_iter([5].map(EntityId));
        c.intersect_with(&d);
        assert_eq!(c.len(), 1);
        assert!(!c.contains(EntityId(100_000)));
    }

    #[test]
    fn idset_logical_equality_ignores_capacity() {
        let mut a = IdSet::from_iter([3, 100_000].map(EntityId));
        let b = IdSet::from_iter([3].map(EntityId));
        assert_ne!(a, b);
        let empty = IdSet::from_iter([100_000].map(EntityId));
        a.intersect_with(&b);
        // a now equals b logically even though its word vector is longer.
        assert_eq!(a, b);
        assert_ne!(a, empty);
    }
}
