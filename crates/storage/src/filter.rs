//! Event scan filters (the predicate pushdown surface).
//!
//! An [`EventFilter`] is what an engine hands to the store: the global
//! spatial/temporal constraints plus the per-pattern operation set and
//! (optionally) the already-resolved subject/object entity id sets. The
//! storage layer picks an access path per segment — posting lists when an id
//! set is small, operation postings when the op set is selective, otherwise
//! a column scan.

use std::collections::HashSet;

use aiql_model::{AgentId, EntityId, Event, Operation, TimeWindow, OPERATION_COUNT};

/// A set of operations, encoded as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSet(pub u16);

impl OpSet {
    /// The empty set.
    pub const EMPTY: OpSet = OpSet(0);
    /// All operations.
    pub const ALL: OpSet = OpSet((1 << OPERATION_COUNT as u16) - 1);

    /// A singleton set.
    pub fn single(op: Operation) -> Self {
        OpSet(1 << op.index() as u16)
    }

    /// Builds a set from a slice of operations.
    pub fn from_ops(ops: &[Operation]) -> Self {
        let mut s = OpSet::EMPTY;
        for &op in ops {
            s = s.with(op);
        }
        s
    }

    /// Returns the set with `op` added.
    #[must_use]
    pub fn with(self, op: Operation) -> Self {
        OpSet(self.0 | (1 << op.index() as u16))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, op: Operation) -> bool {
        self.0 & (1 << op.index() as u16) != 0
    }

    /// Number of operations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether this set covers every operation.
    pub fn is_all(self) -> bool {
        self.0 == Self::ALL.0
    }

    /// Iterates the member operations.
    pub fn iter(self) -> impl Iterator<Item = Operation> {
        (0..OPERATION_COUNT).filter_map(move |i| {
            if self.0 & (1 << i as u16) != 0 {
                Operation::from_index(i)
            } else {
                None
            }
        })
    }
}

/// A set of entity ids with O(1) membership, used for semi-join pushdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdSet {
    set: HashSet<EntityId>,
}

impl IdSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from any id iterator (inherent convenience; the trait impl
    /// below covers generic contexts).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(ids: impl IntoIterator<Item = EntityId>) -> Self {
        IdSet {
            set: ids.into_iter().collect(),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: EntityId) -> bool {
        self.set.contains(&id)
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: EntityId) {
        self.set.insert(id);
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates the ids (unordered).
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.set.iter().copied()
    }
}

impl FromIterator<EntityId> for IdSet {
    fn from_iter<T: IntoIterator<Item = EntityId>>(iter: T) -> Self {
        IdSet {
            set: iter.into_iter().collect(),
        }
    }
}

/// A pushed-down event predicate.
#[derive(Debug, Clone)]
pub struct EventFilter {
    /// Temporal constraint (`[start, end)`).
    pub window: TimeWindow,
    /// Spatial constraint; `None` means all hosts.
    pub agents: Option<Vec<AgentId>>,
    /// Operations to match.
    pub ops: OpSet,
    /// If set, the subject must be in this set.
    pub subjects: Option<IdSet>,
    /// If set, the object must be in this set.
    pub objects: Option<IdSet>,
    /// Minimum `amount` (bytes), if any.
    pub min_amount: Option<u64>,
}

impl Default for EventFilter {
    fn default() -> Self {
        Self::all()
    }
}

impl EventFilter {
    /// A filter matching every event.
    pub fn all() -> Self {
        EventFilter {
            window: TimeWindow::ALL,
            agents: None,
            ops: OpSet::ALL,
            subjects: None,
            objects: None,
            min_amount: None,
        }
    }

    /// Restricts the filter to a time window (intersection).
    #[must_use]
    pub fn with_window(mut self, window: TimeWindow) -> Self {
        self.window = self.window.intersect(&window);
        self
    }

    /// Restricts the filter to a set of agents.
    #[must_use]
    pub fn with_agents(mut self, agents: Vec<AgentId>) -> Self {
        self.agents = Some(agents);
        self
    }

    /// Restricts the operation set.
    #[must_use]
    pub fn with_ops(mut self, ops: OpSet) -> Self {
        self.ops = ops;
        self
    }

    /// Restricts subjects to an id set.
    #[must_use]
    pub fn with_subjects(mut self, ids: IdSet) -> Self {
        self.subjects = Some(ids);
        self
    }

    /// Restricts objects to an id set.
    #[must_use]
    pub fn with_objects(mut self, ids: IdSet) -> Self {
        self.objects = Some(ids);
        self
    }

    /// Whether a fully materialized event satisfies every predicate. This is
    /// the reference semantics; the segment scanners must agree with it.
    pub fn matches(&self, e: &Event) -> bool {
        if !self.ops.contains(e.op) {
            return false;
        }
        if !self.window.contains(e.start_time) {
            return false;
        }
        if let Some(agents) = &self.agents {
            if !agents.contains(&e.agent) {
                return false;
            }
        }
        if let Some(s) = &self.subjects {
            if !s.contains(e.subject) {
                return false;
            }
        }
        if let Some(o) = &self.objects {
            if !o.contains(e.object) {
                return false;
            }
        }
        if let Some(min) = self.min_amount {
            if e.amount < min {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{EventId, Timestamp};

    fn ev(op: Operation, agent: u32, t: i64) -> Event {
        Event {
            id: EventId(0),
            agent: AgentId(agent),
            op,
            subject: EntityId(1),
            object: EntityId(2),
            start_time: Timestamp(t),
            end_time: Timestamp(t + 1),
            amount: 10,
        }
    }

    #[test]
    fn opset_membership_and_iter() {
        let s = OpSet::from_ops(&[Operation::Read, Operation::Write]);
        assert!(s.contains(Operation::Read));
        assert!(s.contains(Operation::Write));
        assert!(!s.contains(Operation::Connect));
        assert_eq!(s.len(), 2);
        let ops: Vec<_> = s.iter().collect();
        assert_eq!(ops, vec![Operation::Read, Operation::Write]);
    }

    #[test]
    fn opset_all_contains_everything() {
        for op in aiql_model::event::ALL_OPERATIONS {
            assert!(OpSet::ALL.contains(op));
        }
        assert!(OpSet::ALL.is_all());
        assert!(OpSet::EMPTY.is_empty());
    }

    #[test]
    fn filter_matches_reference_semantics() {
        let f = EventFilter::all()
            .with_ops(OpSet::single(Operation::Read))
            .with_window(TimeWindow::new(Timestamp(0), Timestamp(100)))
            .with_agents(vec![AgentId(1)]);
        assert!(f.matches(&ev(Operation::Read, 1, 50)));
        assert!(!f.matches(&ev(Operation::Write, 1, 50)));
        assert!(!f.matches(&ev(Operation::Read, 2, 50)));
        assert!(!f.matches(&ev(Operation::Read, 1, 150)));
    }

    #[test]
    fn filter_entity_sets() {
        let f = EventFilter::all()
            .with_subjects(IdSet::from_iter([EntityId(1)]))
            .with_objects(IdSet::from_iter([EntityId(9)]));
        let mut e = ev(Operation::Read, 1, 1);
        assert!(!f.matches(&e)); // object 2 not in {9}
        e.object = EntityId(9);
        assert!(f.matches(&e));
        e.subject = EntityId(5);
        assert!(!f.matches(&e));
    }

    #[test]
    fn filter_min_amount() {
        let mut f = EventFilter::all();
        f.min_amount = Some(100);
        let mut e = ev(Operation::Send, 1, 1);
        assert!(!f.matches(&e));
        e.amount = 100;
        assert!(f.matches(&e));
    }

    #[test]
    fn idset_basics() {
        let mut s = IdSet::new();
        assert!(s.is_empty());
        s.insert(EntityId(3));
        assert!(s.contains(EntityId(3)));
        assert!(!s.contains(EntityId(4)));
        assert_eq!(s.len(), 1);
    }
}
