//! Full binary snapshots of a store.
//!
//! A snapshot captures the string dictionary, the entity dictionary, and all
//! committed events; loading one reconstructs an equivalent store (same ids,
//! same scan results) without re-running ingestion. Together with the WAL
//! this gives the usual checkpoint + log persistence pair.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{BufMut, BytesMut};

use aiql_model::{
    AgentId, EntityAttrs, EntityId, Event, EventId, FileAttrs, IpV4, NetConnAttrs, Operation,
    ProcessAttrs, Protocol, Symbol, Timestamp,
};

use crate::codec::{self, CodecError};
use crate::segment::PartitionKey;
use crate::store::{EventStore, StoreConfig};
use crate::wal::WalError;

/// Legacy format: no epoch vector.
const MAGIC_V1: &[u8; 4] = b"AQS1";
/// v1 plus the store/dictionary epochs and the per-partition epoch vector,
/// so partition-scoped plan-cache invalidation stays monotone across
/// save/load cycles.
const MAGIC_V2: &[u8; 4] = b"AQS2";
/// v2 plus the per-partition segment layout (row counts per sealed
/// segment), so a reloaded store reproduces the exact physical
/// fragmentation/compaction state.
const MAGIC_V3: &[u8; 4] = b"AQS3";
/// Current format: v3 plus the novelty-overlay config and the per-partition
/// novelty row counts, so a store saved mid-overlay reproduces its exact
/// sealed/overlay split (the overlay is serialized, never force-flushed by
/// persistence). Loading still accepts v1 (no epochs, no layout), v2
/// (epochs, dense single-segment layout), and v3 (fully sealed layout).
const MAGIC: &[u8; 4] = b"AQS4";

/// Writes a snapshot of `store` to `path`.
pub fn save(store: &EventStore, path: &Path) -> Result<(), WalError> {
    let mut buf = BytesMut::with_capacity(1 << 20);
    // Config (so the loaded hypertable buckets identically).
    let cfg = store.config();
    buf.put_i64_le(cfg.time_bucket.micros());
    buf.put_u8(u8::from(cfg.dedup));
    buf.put_i64_le(cfg.dedup_window.micros());
    codec::put_varint(&mut buf, cfg.batch_size as u64);
    // Compaction policy (v3): persisted so a reloaded store keeps the
    // ingest-time layout behavior.
    buf.put_u8(u8::from(cfg.compaction));
    codec::put_varint(&mut buf, cfg.compaction_min_segments as u64);
    codec::put_varint(&mut buf, cfg.compaction_max_rows as u64);
    // Write-path policy (v4): the novelty-overlay threshold and the
    // background-compaction toggle, so a reloaded store keeps absorbing
    // ingest the way it was configured to.
    codec::put_varint(&mut buf, cfg.novelty_flush_rows as u64);
    buf.put_u8(u8::from(cfg.background_compaction));
    // String dictionary, in symbol order.
    let interner = store.interner();
    codec::put_varint(&mut buf, interner.len() as u64);
    for (_, s) in interner.iter() {
        codec::put_str(&mut buf, s);
    }
    // Entity dictionary, in id order.
    codec::put_varint(&mut buf, store.entities().len() as u64);
    for entity in store.entities().iter() {
        buf.put_u32_le(entity.agent.raw());
        encode_attrs(&mut buf, &entity.attrs);
    }
    // Events, partition by partition.
    let total: u64 = store.event_count();
    codec::put_varint(&mut buf, total);
    store.for_each_event(&mut |e| encode_event(&mut buf, e));
    // Epoch vector (v2): store + dictionary epochs, then per-partition
    // epochs in partition order.
    codec::put_varint(&mut buf, store.epoch());
    codec::put_varint(&mut buf, store.dict_epoch());
    let epochs = store.partition_epochs();
    codec::put_varint(&mut buf, epochs.len() as u64);
    for (key, epoch) in epochs {
        buf.put_u32_le(key.agent.raw());
        buf.put_i64_le(key.bucket);
        codec::put_varint(&mut buf, epoch);
    }
    // Segment layout (v3): per partition, the row count of each sealed
    // segment in commit order.
    let layouts = store.segment_layouts();
    codec::put_varint(&mut buf, layouts.len() as u64);
    for (key, lens) in layouts {
        buf.put_u32_le(key.agent.raw());
        buf.put_i64_le(key.bucket);
        codec::put_varint(&mut buf, lens.len() as u64);
        for len in lens {
            codec::put_varint(&mut buf, u64::from(len));
        }
    }
    // Novelty overlay (v4): per partition, the rows still sitting in the
    // open overlay — serialized (the events already went out above), so a
    // save→load cycle reproduces the exact sealed/overlay split instead of
    // silently flushing the overlay.
    let novelty = store.novelty_lens();
    codec::put_varint(&mut buf, novelty.len() as u64);
    for (key, rows) in novelty {
        buf.put_u32_le(key.agent.raw());
        buf.put_i64_le(key.bucket);
        codec::put_varint(&mut buf, u64::from(rows));
    }

    let crc = codec::crc32(&buf);
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(MAGIC)?;
    file.write_all(&crc.to_le_bytes())?;
    file.write_all(&(buf.len() as u64).to_le_bytes())?;
    file.write_all(&buf)?;
    file.flush()?;
    Ok(())
}

/// Loads a snapshot into a fresh store.
///
/// Every corruption mode is an error, never an abort: a short header or
/// body, a length field larger than the file, a CRC mismatch, and any
/// decode failure inside a CRC-valid body all come back as
/// [`WalError`]/[`CodecError`] values. Callers that also keep a WAL can
/// recover through [`crate::recovery::load_or_recover`] instead of failing.
pub fn load(path: &Path) -> Result<EventStore, WalError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut header = [0u8; 16];
    if reader.read_exact(&mut header).is_err() {
        // Too short to even hold the header: not a snapshot.
        return Err(WalError::BadHeader);
    }
    let (has_epochs, has_layout, has_novelty) = match &header[0..4] {
        m if m == MAGIC => (true, true, true),
        m if m == MAGIC_V3 => (true, true, false),
        m if m == MAGIC_V2 => (true, false, false),
        m if m == MAGIC_V1 => (false, false, false),
        _ => return Err(WalError::BadHeader),
    };
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let len64 = u64::from_le_bytes([
        header[8], header[9], header[10], header[11], header[12], header[13], header[14],
        header[15],
    ]);
    // A truncated file whose length field survived would otherwise drive a
    // huge allocation before the read even fails — bound it by the file.
    if len64 > file_len.saturating_sub(16) {
        return Err(WalError::Codec(CodecError::UnexpectedEof));
    }
    let len = len64 as usize;
    let mut body = vec![0u8; len];
    if reader.read_exact(&mut body).is_err() {
        return Err(WalError::Codec(CodecError::UnexpectedEof));
    }
    let crc = codec::crc32(&body);
    if crc != stored_crc {
        return Err(WalError::Codec(CodecError::CrcMismatch(stored_crc, crc)));
    }
    let mut buf = body.as_slice();

    let time_bucket = aiql_model::Duration(codec::get_i64(&mut buf)?);
    let dedup = codec::get_u8(&mut buf)? != 0;
    let dedup_window = aiql_model::Duration(codec::get_i64(&mut buf)?);
    let batch_size = codec::get_varint(&mut buf)? as usize;
    let defaults = StoreConfig::default();
    let (compaction, compaction_min_segments, compaction_max_rows) = if has_layout {
        (
            codec::get_u8(&mut buf)? != 0,
            codec::get_varint(&mut buf)? as usize,
            codec::get_varint(&mut buf)? as usize,
        )
    } else {
        (
            defaults.compaction,
            defaults.compaction_min_segments,
            defaults.compaction_max_rows,
        )
    };
    let (novelty_flush_rows, background_compaction) = if has_novelty {
        (
            codec::get_varint(&mut buf)? as usize,
            codec::get_u8(&mut buf)? != 0,
        )
    } else {
        (defaults.novelty_flush_rows, defaults.background_compaction)
    };
    let mut store = EventStore::new(StoreConfig {
        time_bucket,
        dedup,
        dedup_window,
        batch_size,
        compaction,
        compaction_min_segments,
        compaction_max_rows,
        novelty_flush_rows,
        background_compaction,
        // Scan-path tunables are not persisted — a reloaded store runs with
        // the current defaults.
        ..defaults
    });

    // Dictionary: intern in order so symbols keep their ids.
    let nstrings = codec::get_varint(&mut buf)?;
    for _ in 0..nstrings {
        let s = codec::get_str(&mut buf)?;
        store.entities_mut().interner_mut().intern(&s);
    }
    // Entities: intern in id order so entity ids are preserved.
    let nentities = codec::get_varint(&mut buf)?;
    for i in 0..nentities {
        let agent = AgentId(codec::get_u32(&mut buf)?);
        let attrs = decode_attrs(&mut buf)?;
        let id = store.entities_mut().intern(agent, attrs);
        debug_assert_eq!(id, EntityId(i as u32));
    }
    // Events.
    let nevents = codec::get_varint(&mut buf)?;
    for _ in 0..nevents {
        let event = decode_event(&mut buf)?;
        store.insert_committed(event);
    }
    // Epoch vector (absent in v1 snapshots: replay counters stand).
    if has_epochs {
        let epoch = codec::get_varint(&mut buf)?;
        let dict_epoch = codec::get_varint(&mut buf)?;
        let nparts = codec::get_varint(&mut buf)?;
        // Capacity clamps: a corrupt count that slipped past the CRC must
        // not drive the allocation — each entry needs at least one byte, so
        // the remaining body length bounds any honest count.
        let mut epochs = Vec::with_capacity((nparts as usize).min(buf.len()));
        for _ in 0..nparts {
            let agent = AgentId(codec::get_u32(&mut buf)?);
            let bucket = codec::get_i64(&mut buf)?;
            let part_epoch = codec::get_varint(&mut buf)?;
            epochs.push((PartitionKey { agent, bucket }, part_epoch));
        }
        store.restore_epochs(epoch, dict_epoch, &epochs);
    }
    // Segment layout (absent in v1/v2 snapshots: replay's dense
    // single-overlay-per-partition layout is sealed below instead).
    if has_layout {
        let nparts = codec::get_varint(&mut buf)?;
        let mut layouts = Vec::with_capacity((nparts as usize).min(buf.len()));
        for _ in 0..nparts {
            let agent = AgentId(codec::get_u32(&mut buf)?);
            let bucket = codec::get_i64(&mut buf)?;
            let nsegs = codec::get_varint(&mut buf)?;
            let mut lens = Vec::with_capacity((nsegs as usize).min(buf.len()));
            for _ in 0..nsegs {
                lens.push(codec::get_varint(&mut buf)? as u32);
            }
            layouts.push((PartitionKey { agent, bucket }, lens));
        }
        // Novelty overlay rows (v4): pre-v4 files sealed everything, which
        // the empty list reproduces (every partition restores with a zero
        // overlay).
        let mut novelty = Vec::new();
        if has_novelty {
            let nparts = codec::get_varint(&mut buf)?;
            novelty.reserve((nparts as usize).min(buf.len()));
            for _ in 0..nparts {
                let agent = AgentId(codec::get_u32(&mut buf)?);
                let bucket = codec::get_i64(&mut buf)?;
                let rows = codec::get_varint(&mut buf)? as u32;
                novelty.push((PartitionKey { agent, bucket }, rows));
            }
        }
        store.restore_layout(&layouts, &novelty);
    } else {
        // v1/v2: replay landed every partition in one open overlay; those
        // formats were written by seal-per-commit stores, so seal the rows
        // the way the saver held them.
        store.flush_novelty();
    }
    Ok(store)
}

fn encode_attrs(buf: &mut BytesMut, attrs: &EntityAttrs) {
    match attrs {
        EntityAttrs::Process(p) => {
            buf.put_u8(0);
            buf.put_u32_le(p.pid);
            buf.put_u32_le(p.exe_name.raw());
            buf.put_u32_le(p.user.raw());
            buf.put_u32_le(p.cmdline.raw());
        }
        EntityAttrs::File(f) => {
            buf.put_u8(1);
            buf.put_u32_le(f.name.raw());
            buf.put_u32_le(f.owner.raw());
        }
        EntityAttrs::NetConn(n) => {
            buf.put_u8(2);
            buf.put_u32_le(n.src_ip.0);
            buf.put_u16_le(n.src_port);
            buf.put_u32_le(n.dst_ip.0);
            buf.put_u16_le(n.dst_port);
            buf.put_u8(match n.protocol {
                Protocol::Tcp => 0,
                Protocol::Udp => 1,
            });
        }
    }
}

fn decode_attrs(buf: &mut &[u8]) -> Result<EntityAttrs, CodecError> {
    Ok(match codec::get_u8(buf)? {
        0 => EntityAttrs::Process(ProcessAttrs {
            pid: codec::get_u32(buf)?,
            exe_name: Symbol(codec::get_u32(buf)?),
            user: Symbol(codec::get_u32(buf)?),
            cmdline: Symbol(codec::get_u32(buf)?),
        }),
        1 => EntityAttrs::File(FileAttrs {
            name: Symbol(codec::get_u32(buf)?),
            owner: Symbol(codec::get_u32(buf)?),
        }),
        2 => EntityAttrs::NetConn(NetConnAttrs {
            src_ip: IpV4(codec::get_u32(buf)?),
            src_port: codec::get_u16(buf)?,
            dst_ip: IpV4(codec::get_u32(buf)?),
            dst_port: codec::get_u16(buf)?,
            protocol: match codec::get_u8(buf)? {
                0 => Protocol::Tcp,
                _ => Protocol::Udp,
            },
        }),
        _ => return Err(CodecError::BadMagic),
    })
}

fn encode_event(buf: &mut BytesMut, e: &Event) {
    buf.put_u64_le(e.id.raw());
    buf.put_u32_le(e.agent.raw());
    buf.put_u8(e.op.index() as u8);
    buf.put_u32_le(e.subject.raw());
    buf.put_u32_le(e.object.raw());
    buf.put_i64_le(e.start_time.micros());
    buf.put_i64_le(e.end_time.micros());
    codec::put_varint(buf, e.amount);
}

fn decode_event(buf: &mut &[u8]) -> Result<Event, CodecError> {
    Ok(Event {
        id: EventId(codec::get_u64(buf)?),
        agent: AgentId(codec::get_u32(buf)?),
        op: Operation::from_index(codec::get_u8(buf)? as usize).ok_or(CodecError::BadMagic)?,
        subject: EntityId(codec::get_u32(buf)?),
        object: EntityId(codec::get_u32(buf)?),
        start_time: Timestamp(codec::get_i64(buf)?),
        end_time: Timestamp(codec::get_i64(buf)?),
        amount: codec::get_varint(buf)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EventFilter;
    use crate::ingest::{EntitySpec, RawEvent};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aiql-snap-test-{}-{}", std::process::id(), name));
        p
    }

    fn populated_store() -> EventStore {
        let mut store = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..50 {
            raws.push(RawEvent::instant(
                AgentId((i % 4) as u32),
                if i % 3 == 0 {
                    Operation::Read
                } else {
                    Operation::Write
                },
                EntitySpec::process(100 + i as u32, &format!("exe{}", i % 5), "alice"),
                EntitySpec::file(&format!("/data/f{}", i % 9), "alice"),
                Timestamp::from_secs(i * 60),
                i as u64 * 10,
            ));
        }
        store.ingest_all(&raws);
        store
    }

    #[test]
    fn snapshot_roundtrip_preserves_scans() {
        let store = populated_store();
        let path = tmpfile("roundtrip");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        let mut before = store.scan_collect(&EventFilter::all());
        let mut after = loaded.scan_collect(&EventFilter::all());
        before.sort_by_key(|e| e.id);
        after.sort_by_key(|e| e.id);
        assert_eq!(before, after);
        assert_eq!(store.entities().len(), loaded.entities().len());
        assert_eq!(store.interner().len(), loaded.interner().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_preserves_entity_attributes() {
        let store = populated_store();
        let path = tmpfile("attrs");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        for (a, b) in store.entities().iter().zip(loaded.entities().iter()) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrip_preserves_epoch_vector() {
        let store = populated_store();
        let path = tmpfile("epochs");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        // The loaded store's per-partition epochs must be at least the
        // saved ones (replay may only push them further), and the vector
        // must cover the same partitions.
        let before = store.partition_epochs();
        let after = loaded.partition_epochs();
        assert_eq!(before.len(), after.len());
        for ((ka, ea), (kb, eb)) in before.iter().zip(after.iter()) {
            assert_eq!(ka, kb);
            assert!(eb >= ea, "epoch of {ka:?} regressed: {ea} -> {eb}");
        }
        assert!(loaded.epoch() >= store.epoch());
        assert!(loaded.dict_epoch() >= store.dict_epoch());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrips_fragmented_and_compacted_layouts() {
        let mk = |compact: bool| {
            let mut store = EventStore::new(StoreConfig {
                batch_size: 8,
                compaction: false,
                dedup: false,
                ..StoreConfig::default()
            });
            let raws: Vec<RawEvent> = (0..64)
                .map(|i| {
                    RawEvent::instant(
                        AgentId((i % 2) as u32),
                        Operation::Write,
                        EntitySpec::process(1, "w.exe", "u"),
                        EntitySpec::file(&format!("/f{}", i % 5), "u"),
                        Timestamp::from_secs(i * 120),
                        1,
                    )
                })
                .collect();
            store.ingest_all(&raws);
            if compact {
                store.compact();
            }
            store
        };
        for compact in [false, true] {
            let store = mk(compact);
            let path = tmpfile(if compact {
                "layout-dense"
            } else {
                "layout-frag"
            });
            save(&store, &path).unwrap();
            let loaded = load(&path).unwrap();
            assert_eq!(
                store.segment_layouts(),
                loaded.segment_layouts(),
                "compact={compact}: physical layout must round-trip"
            );
            assert_eq!(store.config().compaction, loaded.config().compaction);
            assert_eq!(
                store.scan_collect(&EventFilter::all()),
                loaded.scan_collect(&EventFilter::all())
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v2_snapshot_without_layout_still_loads() {
        // Hand-build an AQS2 body (no compaction config, no layout
        // section): the loader must accept it and land every partition in
        // one dense segment.
        let store = populated_store();
        let path = tmpfile("v2-compat");
        save(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Rewrite the v4 body into a v2 body: drop the compaction + novelty
        // config fields right after batch_size, and everything after the
        // epoch vector (layout + novelty sections); then re-stamp magic,
        // length, and CRC.
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let body = bytes[16..16 + len].to_vec();
        let mut cursor = body.as_slice();
        codec::get_i64(&mut cursor).unwrap(); // time_bucket
        codec::get_u8(&mut cursor).unwrap(); // dedup
        codec::get_i64(&mut cursor).unwrap(); // dedup_window
        codec::get_varint(&mut cursor).unwrap(); // batch_size
        let keep_prefix = body.len() - cursor.len();
        let mut after_cfg = cursor;
        codec::get_u8(&mut after_cfg).unwrap(); // compaction flag
        codec::get_varint(&mut after_cfg).unwrap(); // min segments
        codec::get_varint(&mut after_cfg).unwrap(); // max rows
        codec::get_varint(&mut after_cfg).unwrap(); // novelty flush rows
        codec::get_u8(&mut after_cfg).unwrap(); // background compaction
                                                // The layout + novelty sections are everything after the epoch
                                                // vector; walk the remaining fields forward to find where they
                                                // start.
        let mut rest = after_cfg;
        let nstrings = codec::get_varint(&mut rest).unwrap();
        for _ in 0..nstrings {
            codec::get_str(&mut rest).unwrap();
        }
        let nentities = codec::get_varint(&mut rest).unwrap();
        for _ in 0..nentities {
            codec::get_u32(&mut rest).unwrap();
            decode_attrs(&mut rest).unwrap();
        }
        let nevents = codec::get_varint(&mut rest).unwrap();
        for _ in 0..nevents {
            decode_event(&mut rest).unwrap();
        }
        codec::get_varint(&mut rest).unwrap(); // epoch
        codec::get_varint(&mut rest).unwrap(); // dict epoch
        let nparts = codec::get_varint(&mut rest).unwrap();
        for _ in 0..nparts {
            codec::get_u32(&mut rest).unwrap();
            codec::get_i64(&mut rest).unwrap();
            codec::get_varint(&mut rest).unwrap();
        }
        let layout_len = rest.len();
        let v2_body: Vec<u8> = body[..keep_prefix]
            .iter()
            .chain(&body[keep_prefix + (cursor.len() - after_cfg.len())..body.len() - layout_len])
            .copied()
            .collect();
        let crc = codec::crc32(&v2_body);
        let mut v2 = Vec::new();
        v2.extend_from_slice(MAGIC_V2);
        v2.extend_from_slice(&crc.to_le_bytes());
        v2.extend_from_slice(&(v2_body.len() as u64).to_le_bytes());
        v2.extend_from_slice(&v2_body);
        std::fs::write(&path, &v2).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(
            store.scan_collect(&EventFilter::all()),
            loaded.scan_collect(&EventFilter::all())
        );
        let stats = loaded.stats();
        assert_eq!(stats.segments, stats.partitions, "v2 replay lands dense");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_roundtrips_novelty_overlay_state() {
        // A store saved mid-overlay (residual unsealed rows) must reload
        // with the exact same sealed/overlay split — persistence serializes
        // the overlay instead of flushing it.
        let mut store = EventStore::new(StoreConfig {
            batch_size: 8,
            compaction: false,
            dedup: false,
            novelty_flush_rows: 10,
            ..StoreConfig::default()
        });
        let raws: Vec<RawEvent> = (0..100)
            .map(|i| {
                RawEvent::instant(
                    AgentId((i % 2) as u32),
                    Operation::Write,
                    EntitySpec::process(1, "w.exe", "u"),
                    EntitySpec::file(&format!("/f{}", i % 5), "u"),
                    Timestamp::from_secs(i * 120),
                    1,
                )
            })
            .collect();
        store.ingest_all(&raws);
        let stats = store.stats();
        assert!(stats.novelty_events > 0, "test needs a residual overlay");
        assert!(stats.novelty_flushes > 0, "and at least one sealed flush");
        let path = tmpfile("novelty-roundtrip");
        save(&store, &path).unwrap();
        // Saving must not have flushed the live store's overlay.
        assert_eq!(store.stats().novelty_events, stats.novelty_events);
        let loaded = load(&path).unwrap();
        assert_eq!(store.segment_layouts(), loaded.segment_layouts());
        assert_eq!(store.novelty_lens(), loaded.novelty_lens());
        assert_eq!(
            loaded.config().novelty_flush_rows,
            10,
            "write-path config round-trips"
        );
        assert_eq!(
            store.scan_collect(&EventFilter::all()),
            loaded.scan_collect(&EventFilter::all())
        );
        // Flat selection vectors agree row for row across the reload.
        for key in store.partition_list() {
            assert_eq!(
                store.select_partition(key, &EventFilter::all()),
                loaded.select_partition(key, &EventFilter::all())
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_snapshot_detected() {
        let store = populated_store();
        let path = tmpfile("corrupt");
        save(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_snapshot_file_rejected() {
        let path = tmpfile("notasnap");
        std::fs::write(&path, b"garbage data here").unwrap();
        assert!(matches!(load(&path), Err(WalError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }
}
