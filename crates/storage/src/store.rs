//! The event store: hypertable of partition segments + entity dictionary +
//! batch ingestion with event-level deduplication.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use aiql_model::{AgentId, CancelToken, Duration, EntityId, Event, EventId, Operation, Timestamp};

use crate::entities::EntityStore;
use crate::filter::EventFilter;
use crate::ingest::RawEvent;
use crate::partition::{CompactionCancelled, Partition};
use crate::segment::PartitionKey;
use crate::stats::StoreStats;

/// Tunables of the storage layer. Every optimization can be disabled so the
/// ablation benches can measure its contribution.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Width of a hypertable time bucket.
    pub time_bucket: Duration,
    /// Whether event-level deduplication runs at commit.
    pub dedup: bool,
    /// Maximum gap between two identical observations for them to merge.
    pub dedup_window: Duration,
    /// Buffered observations that trigger an automatic batch commit.
    pub batch_size: usize,
    /// Scans produce selection vectors evaluated directly against the
    /// columns ([`Segment::select`]); disabled, they materialize an `Event`
    /// per candidate row before verifying predicates (the seed's path).
    pub selection_vectors: bool,
    /// Posting-list access paths are chosen by estimated candidate count;
    /// disabled, a fixed 64-id cutoff decides (the seed's rule).
    pub cost_based_access: bool,
    /// `LIKE` constraints resolve through trigram/prefix indexes over the
    /// entity dictionary (posting-list intersection + verify); disabled,
    /// every distinct string is matched against the pattern (the PR 1
    /// behavior, kept for ablation).
    pub ngram_index: bool,
    /// Residual predicates of selection-vector scans run as chunked
    /// columnar mask passes (64-row blocks writing a bitmask, then
    /// compacting); disabled, a branchy per-row closure runs (the PR 1
    /// behavior, kept for ablation).
    pub vectorized_residual: bool,
    /// Size-tiered segment compaction runs automatically after each commit
    /// on the partitions the commit touched (explicit
    /// [`EventStore::compact`] is available either way). Disabled, every
    /// batch commit leaves its own sealed segment — the fragmented layout
    /// the compaction ablation measures.
    pub compaction: bool,
    /// Minimum segments a partition must accumulate before automatic
    /// compaction considers it (explicit compaction ignores this floor).
    pub compaction_min_segments: usize,
    /// Target tier: adjacent segments merge while their combined rows stay
    /// within this bound. Segments already larger than the tier are left
    /// standing.
    pub compaction_max_rows: usize,
    /// Novelty-overlay flush threshold in rows. When > 0, batch commits
    /// land in each partition's mutable overlay segment and seal into the
    /// immutable run only once the overlay reaches this many rows — small
    /// commits stop fragmenting the sealed layout and stop triggering merge
    /// work on the commit path. 0 (the default) seals every commit
    /// immediately (the pre-overlay behavior, kept for ablation and for the
    /// fragmentation benches).
    pub novelty_flush_rows: usize,
    /// Defer automatic compaction off the commit path: instead of merging
    /// inline at commit, partitions crossing the trigger are queued and
    /// drained by the owning [`SharedStore`]'s maintenance executor (or
    /// inline after snapshot publication when no executor is wired).
    /// Disabled, the PR 4 inline policy runs unchanged.
    pub background_compaction: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            time_bucket: Duration::from_hours(1),
            dedup: true,
            dedup_window: Duration::from_secs(1),
            batch_size: 8192,
            selection_vectors: true,
            cost_based_access: true,
            ngram_index: true,
            vectorized_residual: true,
            compaction: true,
            compaction_min_segments: 4,
            compaction_max_rows: 1 << 20,
            novelty_flush_rows: 0,
            background_compaction: false,
        }
    }
}

/// A resolved-but-uncommitted observation.
#[derive(Debug, Clone, Copy)]
struct PendingEvent {
    agent: AgentId,
    op: Operation,
    subject: EntityId,
    object: EntityId,
    start_time: Timestamp,
    end_time: Timestamp,
    amount: u64,
}

/// What one [`EventStore::compact`] pass did, for benches and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Partitions whose segment layout changed.
    pub partitions_compacted: usize,
    /// Total segments before the pass.
    pub segments_before: usize,
    /// Total segments after the pass.
    pub segments_after: usize,
}

/// Source of unique store identities (see [`EventStore::store_id`]).
static NEXT_STORE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The embedded system-monitoring event store.
///
/// Cloning is cheap — O(partitions + segments), not O(events): sealed
/// segments and the entity dictionary are `Arc`-shared with the clone, and
/// only the (bounded) novelty overlays copy on the next write to either
/// side. [`SharedStore`] publishes read snapshots this way. A clone shares
/// the original's `store_id` and epoch vector, so plan-cache entries
/// validated against a snapshot stay keyed exactly like the live store.
#[derive(Debug, Clone)]
pub struct EventStore {
    config: StoreConfig,
    entities: Arc<EntityStore>,
    partitions: BTreeMap<PartitionKey, Partition>,
    buffer: Vec<PendingEvent>,
    next_event_id: u64,
    raw_events: u64,
    merged_events: u64,
    commits: u64,
    store_id: u64,
    epoch: u64,
    /// Dictionary epoch: bumped only when the entity dictionary (or the
    /// string interner behind it) may have changed. Variable resolutions
    /// read nothing else, so plan caches key them on this alone.
    dict_epoch: u64,
    /// Partition-set epoch: bumped only when a partition is created. A
    /// cached estimate whose dependency partitions are unchanged is still
    /// invalid if a *new* partition appeared inside its scan range; this
    /// counter lets caches detect that case without re-walking partitions
    /// on every lookup.
    partition_set_epoch: u64,
    /// Novelty overlays sealed into the immutable run so far (threshold
    /// flushes and explicit flushes alike).
    novelty_flushes: u64,
    /// Partitions whose segment count crossed the automatic-compaction
    /// trigger while `background_compaction` deferred the merge. Drained by
    /// [`EventStore::take_maintenance`].
    maintenance: Vec<PartitionKey>,
}

impl Default for EventStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl EventStore {
    /// Creates an empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        EventStore {
            entities: Arc::new(EntityStore::with_ngram_index(config.ngram_index)),
            config,
            partitions: BTreeMap::new(),
            buffer: Vec::new(),
            next_event_id: 0,
            raw_events: 0,
            merged_events: 0,
            commits: 0,
            store_id: NEXT_STORE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            epoch: 0,
            dict_epoch: 0,
            partition_set_epoch: 0,
            novelty_flushes: 0,
            maintenance: Vec::new(),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Process-unique identity of this store. Together with [`Self::epoch`]
    /// it keys cross-query plan caches: a cached resolution is valid only
    /// for the exact ⟨store, epoch⟩ it was computed against.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Mutation epoch: bumped on every write-side entry point (ingest,
    /// commit, snapshot insertion, mutable dictionary access). The coarse
    /// whole-store change counter; partition-scoped consumers use
    /// [`Self::partition_epoch`] / [`Self::dict_epoch`] instead.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dictionary epoch: bumped only when the entity dictionary may have
    /// changed (an ingest that interned a new entity, or mutable dictionary
    /// access). Committing events into partitions does not bump this.
    pub fn dict_epoch(&self) -> u64 {
        self.dict_epoch
    }

    /// Partition-set epoch: bumped only when a new partition is created.
    pub fn partition_set_epoch(&self) -> u64 {
        self.partition_set_epoch
    }

    /// Mutation epoch of one partition (`None` for an unknown key).
    pub fn partition_epoch(&self, key: PartitionKey) -> Option<u64> {
        self.partitions.get(&key).map(Partition::epoch)
    }

    /// The per-partition epoch vector, in partition order. This is what
    /// snapshots persist and partition-scoped plan caches validate against.
    pub fn partition_epochs(&self) -> Vec<(PartitionKey, u64)> {
        self.partitions
            .iter()
            .map(|(&k, part)| (k, part.epoch()))
            .collect()
    }

    /// The per-partition physical layout (sealed segment row counts in
    /// commit order), in partition order — what snapshots persist so a
    /// reloaded store reproduces the exact fragmentation (or compaction)
    /// state. Novelty-overlay rows are not part of the sealed layout; see
    /// [`EventStore::novelty_lens`].
    pub fn segment_layouts(&self) -> Vec<(PartitionKey, Vec<u32>)> {
        self.partitions
            .iter()
            .map(|(&k, part)| (k, part.segments().iter().map(|s| s.len() as u32).collect()))
            .collect()
    }

    /// Per-partition novelty-overlay row counts, in partition order — the
    /// second half of the physical layout snapshots persist.
    pub fn novelty_lens(&self) -> Vec<(PartitionKey, u32)> {
        self.partitions
            .iter()
            .map(|(&k, part)| (k, part.novelty_len() as u32))
            .collect()
    }

    /// The ⟨partition, epoch⟩ dependency list of one filter: every
    /// partition a scan or estimate for `filter` would read, with its
    /// current epoch. A cached value computed from this filter stays valid
    /// while every listed epoch is unchanged and no new partition appears
    /// in the filter's range.
    pub fn partition_deps(&self, filter: &EventFilter) -> Vec<(PartitionKey, u64)> {
        self.partitions_for(filter)
            .into_iter()
            .map(|key| (key, self.partitions[&key].epoch()))
            .collect()
    }

    /// The entity dictionary.
    pub fn entities(&self) -> &EntityStore {
        &self.entities
    }

    /// Mutable entity dictionary (snapshot loading interns through this).
    /// Copy-on-write: when a published snapshot still shares the
    /// dictionary `Arc`, this clones it first.
    pub fn entities_mut(&mut self) -> &mut EntityStore {
        self.epoch += 1;
        self.dict_epoch += 1;
        Arc::make_mut(&mut self.entities)
    }

    /// Shared string dictionary.
    pub fn interner(&self) -> &aiql_model::Interner {
        self.entities.interner()
    }

    /// Buffers one raw observation; commits automatically when the batch
    /// fills (the paper's batch-commit write-throughput optimization).
    pub fn ingest(&mut self, raw: &RawEvent) {
        let (subject, object) = self.resolve_event_entities(raw);
        self.buffer.push(PendingEvent {
            agent: raw.agent,
            op: raw.op,
            subject,
            object,
            start_time: raw.start_time,
            end_time: raw.end_time,
            amount: raw.amount,
        });
        self.raw_events += 1;
        self.epoch += 1;
        if self.buffer.len() >= self.config.batch_size {
            self.commit();
        }
    }

    /// Resolves one observation's subject and object entity ids.
    ///
    /// Fast path: when every string is already interned and both entities
    /// dedup-hit, the ids come from read-only probes — the shared
    /// dictionary `Arc` is untouched, so a published snapshot keeps sharing
    /// it and repeat-heavy ingest (the monitoring steady state) never pays
    /// a dictionary clone. Only genuinely novel entities take the
    /// copy-on-write slow path.
    fn resolve_event_entities(&mut self, raw: &RawEvent) -> (EntityId, EntityId) {
        let object_agent = raw.object_agent.unwrap_or(raw.agent);
        if let (Some(subject_attrs), Some(object_attrs)) = (
            raw.subject.try_resolve(&self.entities),
            raw.object.try_resolve(&self.entities),
        ) {
            if let (Some(subject), Some(object)) = (
                self.entities.lookup(raw.agent, subject_attrs),
                self.entities.lookup(object_agent, object_attrs),
            ) {
                self.entities.note_dedup_hit();
                self.entities.note_dedup_hit();
                return (subject, object);
            }
        }
        // The dictionary epoch must only move when the dictionary does:
        // both it and the interner are append-only, so their sizes are a
        // complete change fingerprint.
        let dict_before = (self.entities.len(), self.entities.interner().len());
        let entities = Arc::make_mut(&mut self.entities);
        let subject_attrs = raw.subject.resolve(entities);
        let object_attrs = raw.object.resolve(entities);
        let subject = entities.intern(raw.agent, subject_attrs);
        let object = entities.intern(object_agent, object_attrs);
        if (self.entities.len(), self.entities.interner().len()) != dict_before {
            self.dict_epoch += 1;
        }
        (subject, object)
    }

    /// Ingests a batch and commits at the end.
    pub fn ingest_all<'a>(&mut self, raws: impl IntoIterator<Item = &'a RawEvent>) {
        for raw in raws {
            self.ingest(raw);
        }
        self.commit();
    }

    /// Flushes the ingest buffer into partition segments, applying
    /// event-level deduplication when enabled.
    pub fn commit(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.epoch += 1;
        let mut batch = std::mem::take(&mut self.buffer);
        if self.config.dedup {
            // Group identical SVO interactions that are adjacent in time and
            // merge them (summing amounts, extending the interval).
            batch.sort_by(|a, b| {
                (a.agent, a.subject, a.object, a.op as u8, a.start_time).cmp(&(
                    b.agent,
                    b.subject,
                    b.object,
                    b.op as u8,
                    b.start_time,
                ))
            });
            let window = self.config.dedup_window;
            let mut merged: Vec<PendingEvent> = Vec::with_capacity(batch.len());
            for e in batch {
                match merged.last_mut() {
                    Some(prev)
                        if prev.agent == e.agent
                            && prev.subject == e.subject
                            && prev.object == e.object
                            && prev.op == e.op
                            && e.start_time.micros() - prev.end_time.micros()
                                <= window.micros() =>
                    {
                        prev.end_time = prev.end_time.max(e.end_time);
                        prev.amount += e.amount;
                        self.merged_events += 1;
                    }
                    _ => merged.push(e),
                }
            }
            batch = merged;
            // Restore commit order by time so event ids stay roughly
            // monotone with time (useful for debugging, not required).
            batch.sort_by_key(|e| e.start_time);
        }
        let bucket = self.config.time_bucket.micros();
        // Assign ids in batch order (so ids stay roughly time-monotone as
        // before), grouping the commit's events per partition: each touched
        // partition seals the group as one new segment.
        let mut groups: BTreeMap<PartitionKey, Vec<Event>> = BTreeMap::new();
        for p in batch {
            let id = EventId(self.next_event_id);
            self.next_event_id += 1;
            let event = Event {
                id,
                agent: p.agent,
                op: p.op,
                subject: p.subject,
                object: p.object,
                start_time: p.start_time,
                end_time: p.end_time,
                amount: p.amount,
            };
            let key = PartitionKey::for_event(p.agent, p.start_time, bucket);
            groups.entry(key).or_default().push(event);
        }
        let (auto, min_segments, max_rows) = (
            self.config.compaction,
            self.config.compaction_min_segments,
            self.config.compaction_max_rows,
        );
        let (novelty_rows, background) = (
            self.config.novelty_flush_rows,
            self.config.background_compaction,
        );
        let mut flushes = 0u64;
        let mut deferred: Vec<PartitionKey> = Vec::new();
        for (key, events) in groups {
            let part = self.partition_mut(key);
            if novelty_rows == 0 {
                part.append_commit(key.agent, &events);
            } else if part.append_novelty(key.agent, &events, novelty_rows) {
                flushes += 1;
            }
            // The trigger watches sealed segments only: the overlay flushes
            // by its own threshold, so with the overlay on, small commits
            // reach this merge policy in dense flush-sized units.
            if auto && part.sealed_segment_count() >= min_segments.max(2) {
                if background {
                    deferred.push(key);
                } else {
                    part.compact(max_rows);
                }
            }
        }
        self.novelty_flushes += flushes;
        for key in deferred {
            if !self.maintenance.contains(&key) {
                self.maintenance.push(key);
            }
        }
        self.commits += 1;
    }

    /// Drains the deferred background-compaction queue (partitions whose
    /// segment count crossed the automatic trigger while
    /// `background_compaction` was on). The caller — [`SharedStore`]'s
    /// write path — schedules the actual merges.
    pub fn take_maintenance(&mut self) -> Vec<PartitionKey> {
        std::mem::take(&mut self.maintenance)
    }

    /// Seals every partition's novelty overlay into its immutable run
    /// (an `Arc` move per partition — rows are neither copied nor
    /// renumbered). Returns how many partitions flushed. Maintenance and
    /// persistence call this; queries never need it.
    pub fn flush_novelty(&mut self) -> usize {
        let mut flushed = 0usize;
        for part in self.partitions.values_mut() {
            if part.flush_novelty() {
                flushed += 1;
            }
        }
        self.novelty_flushes += flushed as u64;
        flushed
    }

    /// The (created-on-demand) partition, tracking the partition-set epoch
    /// when a new one appears.
    fn partition_mut(&mut self, key: PartitionKey) -> &mut Partition {
        match self.partitions.entry(key) {
            std::collections::btree_map::Entry::Vacant(v) => {
                self.partition_set_epoch += 1;
                v.insert(Partition::new())
            }
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
        }
    }

    /// Explicitly compacts every fragmented partition to the configured
    /// tier (`compaction_max_rows`), regardless of the automatic policy.
    /// Only the partitions whose layout actually changed have their epochs
    /// bumped — plan-cache entries over untouched partitions survive.
    pub fn compact(&mut self) -> CompactionReport {
        // Without a token the pass can't be cancelled.
        self.compact_impl(None).unwrap_or_default()
    }

    /// [`EventStore::compact`] honoring a [`CancelToken`]: the token is
    /// polled before each partition's run merges, so a shutdown or an
    /// admission-controller drain can abort a long pass cleanly. Partition
    /// atomicity holds throughout — a partition is either fully merged (its
    /// epoch bumped) or untouched; the cancelled partition's partial merge
    /// is discarded and its epoch never moves. Partitions completed before
    /// the abort stay compacted, and the store epoch reflects them even on
    /// the `Err` path.
    pub fn compact_with_cancel(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<CompactionReport, CompactionCancelled> {
        self.compact_impl(Some(cancel))
    }

    fn compact_impl(
        &mut self,
        cancel: Option<&CancelToken>,
    ) -> Result<CompactionReport, CompactionCancelled> {
        let max_rows = self.config.compaction_max_rows;
        let mut report = CompactionReport::default();
        for part in self.partitions.values_mut() {
            report.segments_before += part.segment_count();
            match part.compact_cancellable(max_rows, cancel) {
                Ok(true) => report.partitions_compacted += 1,
                Ok(false) => {}
                Err(e) => {
                    if report.partitions_compacted > 0 {
                        self.epoch += 1;
                    }
                    return Err(e);
                }
            }
            report.segments_after += part.segment_count();
        }
        if report.partitions_compacted > 0 {
            self.epoch += 1;
        }
        Ok(report)
    }

    /// Compacts one partition to the configured tier. Returns whether its
    /// layout changed (and therefore its epoch was bumped).
    pub fn compact_partition(&mut self, key: PartitionKey) -> bool {
        self.compact_partition_impl(key, None).unwrap_or(false)
    }

    /// [`EventStore::compact_partition`] honoring a [`CancelToken`]. A
    /// cancelled pass discards its partial merges: the partition's layout,
    /// its epoch, and the store epoch are exactly as they were.
    pub fn compact_partition_with_cancel(
        &mut self,
        key: PartitionKey,
        cancel: &CancelToken,
    ) -> Result<bool, CompactionCancelled> {
        self.compact_partition_impl(key, Some(cancel))
    }

    fn compact_partition_impl(
        &mut self,
        key: PartitionKey,
        cancel: Option<&CancelToken>,
    ) -> Result<bool, CompactionCancelled> {
        let max_rows = self.config.compaction_max_rows;
        let Some(part) = self.partitions.get_mut(&key) else {
            return Ok(false);
        };
        let changed = part.compact_cancellable(max_rows, cancel)?;
        if changed {
            self.epoch += 1;
        }
        Ok(changed)
    }

    /// Total committed events.
    pub fn event_count(&self) -> u64 {
        self.partitions.values().map(|s| s.len() as u64).sum()
    }

    /// The hypertable partition keys that can contain matches for a filter
    /// (agent + time-bucket pruning). This is the engine's unit of parallel
    /// execution.
    pub fn partitions_for(&self, filter: &EventFilter) -> Vec<PartitionKey> {
        let bucket = self.config.time_bucket.micros();
        let lo = bucket_floor(filter.window.start, bucket);
        let hi = bucket_floor(filter.window.end, bucket);
        self.partitions
            .iter()
            .filter(|(key, seg)| {
                if key.bucket < lo || key.bucket > hi {
                    return false;
                }
                if let Some(agents) = &filter.agents {
                    if !agents.contains(&key.agent) {
                        return false;
                    }
                }
                seg.overlaps_window(filter)
            })
            .map(|(key, _)| *key)
            .collect()
    }

    /// Direct access to one partition (columnar readers resolve flat row
    /// references through this).
    pub fn partition(&self, key: PartitionKey) -> Option<&Partition> {
        self.partitions.get(&key)
    }

    /// All partition keys in ascending order (the engine's row-reference
    /// address space: a reference is ⟨index into this list, row⟩).
    pub fn partition_list(&self) -> Vec<PartitionKey> {
        self.partitions.keys().copied().collect()
    }

    /// Selection-vector scan of one partition: sorted matching row ids for
    /// columnar consumers (the engine's late-materialization path).
    ///
    /// With `selection_vectors` disabled, the row ids are produced the way
    /// the seed moved data — materializing an `Event` per row and checking
    /// the predicate against it — so the ablation benches can isolate what
    /// evaluating predicates directly on the columns is worth.
    pub fn select_partition(&self, key: PartitionKey, filter: &EventFilter) -> Vec<u32> {
        let Some(part) = self.partitions.get(&key) else {
            return Vec::new();
        };
        if self.config.selection_vectors {
            return part.select(
                key.agent,
                filter,
                self.config.cost_based_access,
                self.config.vectorized_residual,
            );
        }
        if !part.overlaps_window(filter) {
            return Vec::new();
        }
        let mut rows = Vec::new();
        for row in 0..part.len() {
            if filter.matches(&part.event_at(key.agent, row)) {
                rows.push(row as u32);
            }
        }
        rows
    }

    /// Matching-row count for a filter, through the selection-vector path —
    /// no events are materialized when `selection_vectors` is on.
    pub fn count(&self, filter: &EventFilter) -> usize {
        self.partitions_for(filter)
            .into_iter()
            .map(|key| self.select_partition(key, filter).len())
            .sum()
    }

    /// Index-assisted scan of one partition.
    pub fn scan_partition(
        &self,
        key: PartitionKey,
        filter: &EventFilter,
        f: &mut dyn FnMut(&Event),
    ) {
        if let Some(part) = self.partitions.get(&key) {
            part.scan(key.agent, filter, f);
        }
    }

    /// Optimized scan: partition pruning + per-segment index access paths.
    pub fn scan(&self, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for key in self.partitions_for(filter) {
            self.scan_partition(key, filter, f);
        }
    }

    /// Optimized scan materializing the matches.
    pub fn scan_collect(&self, filter: &EventFilter) -> Vec<Event> {
        let mut out = Vec::new();
        self.scan(filter, &mut |e| out.push(*e));
        out
    }

    /// Unoptimized scan: one logical heap, no partition pruning, no indexes,
    /// every predicate verified per row. This models querying the raw data
    /// without the paper's storage optimizations (Figure 5 baselines).
    pub fn scan_unoptimized(&self, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        for (key, part) in &self.partitions {
            part.scan_full(key.agent, filter, f);
        }
    }

    /// Unoptimized scan materializing the matches.
    pub fn scan_unoptimized_collect(&self, filter: &EventFilter) -> Vec<Event> {
        let mut out = Vec::new();
        self.scan_unoptimized(filter, &mut |e| out.push(*e));
        out
    }

    /// Scan with ordinary secondary indexes but *no* partition pruning:
    /// models a plain relational system that has a btree/bitmap index on
    /// the operation column yet none of the domain optimizations
    /// (time/space partitioning, zone maps). Every segment is visited; the
    /// operation postings narrow candidates inside each; all remaining
    /// predicates are verified per row.
    pub fn scan_op_indexed(&self, filter: &EventFilter, f: &mut dyn FnMut(&Event)) {
        // Disable the zone-map/partition shortcuts by widening the window
        // used for candidate selection; the real window is still verified
        // per row below.
        let mut candidate_filter = filter.clone();
        candidate_filter.window = aiql_model::TimeWindow::ALL;
        candidate_filter.subjects = None;
        candidate_filter.objects = None;
        for (key, part) in &self.partitions {
            part.scan(key.agent, &candidate_filter, &mut |e| {
                if filter.matches(e) {
                    f(e);
                }
            });
        }
    }

    /// Visits every committed event (used by the graph baseline to build its
    /// property graph, and by snapshotting).
    pub fn for_each_event(&self, f: &mut dyn FnMut(&Event)) {
        self.scan_unoptimized(&EventFilter::all(), f);
    }

    /// Estimated match count for a filter, from partition statistics.
    pub fn estimate(&self, filter: &EventFilter) -> usize {
        self.partitions_for(filter)
            .iter()
            .map(|key| self.partitions[key].estimate(filter))
            .sum()
    }

    /// Store-wide statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        let events = self.event_count();
        let mut agents: Vec<AgentId> = self.partitions.keys().map(|k| k.agent).collect();
        agents.dedup();
        agents.sort_unstable();
        agents.dedup();
        // Fragmentation: segments per partition and segment row sizes (a
        // non-empty novelty overlay counts as one segment; row-size stats
        // cover sealed segments only).
        let mut segments = 0u64;
        let mut max_partition_segments = 0u64;
        let mut min_segment_rows = u64::MAX;
        let mut novelty_events = 0u64;
        for part in self.partitions.values() {
            let n = part.segment_count() as u64;
            segments += n;
            max_partition_segments = max_partition_segments.max(n);
            novelty_events += part.novelty_len() as u64;
            for seg in part.segments() {
                min_segment_rows = min_segment_rows.min(seg.len() as u64);
            }
        }
        StoreStats {
            events,
            raw_events: self.raw_events,
            merged_events: self.merged_events,
            entities: self.entities.len() as u64,
            entity_dedup_hits: self.entities.dedup_hits(),
            partitions: self.partitions.len() as u64,
            agents: agents.len() as u64,
            commits: self.commits,
            event_bytes: events * 41, // id+op+subj+obj+2×time+amount per row
            dict_bytes: self.interner().heap_bytes() as u64,
            segments,
            max_partition_segments,
            min_segment_rows: if min_segment_rows == u64::MAX {
                0
            } else {
                min_segment_rows
            },
            avg_segment_rows: events.checked_div(segments).unwrap_or(0),
            novelty_events,
            novelty_bytes: novelty_events * 41,
            novelty_flushes: self.novelty_flushes,
            reader_stalls: 0,
        }
    }

    /// Direct committed-event insertion used by snapshot loading; bypasses
    /// the ingest buffer and dedup (the snapshot already reflects them).
    pub(crate) fn insert_committed(&mut self, event: Event) {
        self.epoch += 1;
        let key = PartitionKey::for_event(
            event.agent,
            event.start_time,
            self.config.time_bucket.micros(),
        );
        self.partition_mut(key).push_tail(event.agent, &event);
        self.next_event_id = self.next_event_id.max(event.id.raw() + 1);
        self.raw_events += 1;
    }

    /// Re-applies a persisted physical layout (per-partition sealed segment
    /// row counts plus novelty-overlay rows): snapshot replay lands every
    /// partition in one dense overlay, and this re-splits them so the
    /// loaded store reproduces the saved sealed/overlay split exactly.
    /// `novelty` entries are looked up per partition; a partition absent
    /// from it seals everything (the pre-overlay snapshot formats).
    pub(crate) fn restore_layout(
        &mut self,
        layouts: &[(PartitionKey, Vec<u32>)],
        novelty: &[(PartitionKey, u32)],
    ) {
        for (key, lens) in layouts {
            if let Some(part) = self.partitions.get_mut(key) {
                let novelty_rows = novelty
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(0, |&(_, n)| n);
                part.apply_layout(key.agent, lens, novelty_rows);
            }
        }
    }

    /// Re-seeds the epoch counters from a persisted snapshot so the epoch
    /// vector stays monotone across save/load cycles. Missing partitions
    /// keep the counters they accumulated during replay.
    pub(crate) fn restore_epochs(
        &mut self,
        epoch: u64,
        dict_epoch: u64,
        partition_epochs: &[(PartitionKey, u64)],
    ) {
        self.epoch = self.epoch.max(epoch);
        self.dict_epoch = self.dict_epoch.max(dict_epoch);
        for &(key, e) in partition_epochs {
            if let Some(part) = self.partitions.get_mut(&key) {
                part.set_epoch(part.epoch().max(e));
            }
        }
    }

    /// The access path the selection-vector scan would favor for a filter,
    /// summarized over the filter's partitions — what `EXPLAIN` reports as
    /// the chosen path. Mirrors the per-segment choice in
    /// [`Segment::select`]: entity posting lists when the filter carries
    /// resolved id sets, operation postings when they prune (the op rows
    /// cover less than half the candidate rows), otherwise a columnar scan
    /// (vectorized mask pass or per-row verify, per the store config).
    pub fn access_path(&self, filter: &EventFilter) -> &'static str {
        let mut paths: Vec<&'static str> = Vec::new();
        if filter.subjects.is_some() || filter.objects.is_some() {
            paths.push("entity-postings");
        }
        if !filter.ops.is_all() {
            let keys = self.partitions_for(filter);
            let rows: usize = keys.iter().map(|k| self.partitions[k].len()).sum();
            let op_rows: usize = keys
                .iter()
                .map(|k| {
                    filter
                        .ops
                        .iter()
                        .map(|op| self.partitions[k].op_count(op))
                        .sum::<usize>()
                })
                .sum();
            if op_rows * 2 < rows {
                paths.push("op-postings");
            }
        }
        match (paths.as_slice(), self.config.selection_vectors) {
            (["entity-postings", "op-postings"], _) => "entity-postings∩op-postings",
            (["entity-postings"], _) => "entity-postings",
            (["op-postings"], _) => "op-postings",
            ([], true) if self.config.vectorized_residual => "columnar-mask-scan",
            ([], true) => "column-scan",
            ([], false) => "row-scan",
            _ => unreachable!("path list is built in a fixed order"),
        }
    }
}

fn bucket_floor(t: Timestamp, bucket: i64) -> i64 {
    // Avoid overflow on the unbounded window sentinels.
    if t.micros() == i64::MIN {
        i64::MIN
    } else if t.micros() == i64::MAX {
        i64::MAX
    } else {
        t.micros().div_euclid(bucket)
    }
}

/// Executor for store maintenance jobs (background compaction and novelty
/// flushes). The storage crate defines only the contract; the engine wires
/// its shared scan pool in, keeping the storage→engine dependency direction
/// intact.
pub trait MaintenanceExecutor: Send + Sync {
    /// Runs `job` off the caller's thread, eventually exactly once (jobs
    /// guard themselves with a [`CancelToken`] for shutdown).
    fn spawn(&self, job: Box<dyn FnOnce() + Send>);
}

/// Maintenance wiring of a [`SharedStore`]: the optional executor plus the
/// cancel token every scheduled pass polls.
struct Maintenance {
    executor: Option<Arc<dyn MaintenanceExecutor>>,
    cancel: CancelToken,
}

impl std::fmt::Debug for Maintenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maintenance")
            .field("executor", &self.executor.is_some())
            .field("cancel", &self.cancel)
            .finish()
    }
}

#[derive(Debug)]
struct SharedInner {
    /// The writer's authoritative store. In snapshot mode readers never
    /// touch this lock; in coarse mode it is the one lock everything takes.
    writer: RwLock<EventStore>,
    /// Last published immutable snapshot (`None` in coarse mode). The lock
    /// is held only for the pointer swap/clone, never across query
    /// execution.
    published: RwLock<Option<Arc<EventStore>>>,
    /// Reads that found the publish lock contended and had to wait for the
    /// pointer swap (not for the writer!). A high count means publishes are
    /// too frequent, not that queries block ingest.
    reader_stalls: std::sync::atomic::AtomicU64,
    /// Background-maintenance wiring (executor + drain token).
    maintenance: std::sync::Mutex<Maintenance>,
    /// The dictionary copy the published snapshots share, keyed by the
    /// dict epoch it was taken at. Re-cloned (minus the ingest-only dedup
    /// map) only when a commit actually grew the dictionary; batches that
    /// hit the dedup fast path republish the same `Arc`. Handing snapshots
    /// their *own* dictionary keeps the writer's `Arc` permanently unique,
    /// so ingest never pays `Arc::make_mut`'s full-dictionary copy on the
    /// commit path.
    dict_cache: std::sync::Mutex<Option<(u64, Arc<EntityStore>)>>,
}

/// A cloneable, thread-safe handle to a store.
///
/// Two concurrency modes:
///
/// * **Snapshot mode** ([`SharedStore::new`], the default): every write
///   publishes an immutable epoch-tagged `Arc` clone of the store (cheap —
///   sealed segments and dictionaries are shared). [`SharedStore::read`]
///   pins the current snapshot with a pointer clone and runs entirely
///   lock-free: queries never block ingest, ingest never blocks queries,
///   and a query sees one consistent store state for its whole run.
/// * **Coarse mode** ([`SharedStore::new_coarse`]): the pre-snapshot
///   behavior — one `RwLock` held for the whole closure on both sides.
///   Kept as the bench baseline and for ablation.
#[derive(Debug, Clone)]
pub struct SharedStore {
    inner: Arc<SharedInner>,
}

impl SharedStore {
    /// Wraps a store in snapshot mode: reads pin published snapshots.
    pub fn new(store: EventStore) -> Self {
        let dict_cache = std::sync::Mutex::new(None);
        let snapshot = Arc::new(Self::publish_clone(&store, &dict_cache));
        SharedStore {
            inner: Arc::new(SharedInner {
                writer: RwLock::new(store),
                published: RwLock::new(Some(snapshot)),
                reader_stalls: std::sync::atomic::AtomicU64::new(0),
                maintenance: std::sync::Mutex::new(Maintenance {
                    executor: None,
                    cancel: CancelToken::new(),
                }),
                dict_cache,
            }),
        }
    }

    /// Wraps a store in coarse-lock mode: readers hold the store lock for
    /// their whole closure (the pre-snapshot behavior, kept as the bench
    /// baseline).
    pub fn new_coarse(store: EventStore) -> Self {
        SharedStore {
            inner: Arc::new(SharedInner {
                writer: RwLock::new(store),
                published: RwLock::new(None),
                reader_stalls: std::sync::atomic::AtomicU64::new(0),
                maintenance: std::sync::Mutex::new(Maintenance {
                    executor: None,
                    cancel: CancelToken::new(),
                }),
                dict_cache: std::sync::Mutex::new(None),
            }),
        }
    }

    /// The snapshot to publish after a write: shares sealed segments and
    /// overlays by `Arc`, and swaps in the cached read-only dictionary —
    /// re-copied via [`EntityStore::clone_for_read`] only when this write
    /// moved the dict epoch. The writer's own dictionary `Arc` is never
    /// handed out, so its `Arc::make_mut` stays the free unique-owner path
    /// on every subsequent commit.
    fn publish_clone(
        store: &EventStore,
        cache: &std::sync::Mutex<Option<(u64, Arc<EntityStore>)>>,
    ) -> EventStore {
        let mut snap = store.clone();
        let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
        snap.entities = match cache.as_ref() {
            Some((epoch, dict)) if *epoch == store.dict_epoch => dict.clone(),
            _ => {
                let dict = Arc::new(store.entities.clone_for_read());
                *cache = Some((store.dict_epoch, dict.clone()));
                dict
            }
        };
        snap
    }

    /// Pins the current immutable snapshot: an epoch-tagged `Arc` the
    /// caller can query for as long as it likes without blocking ingest.
    /// (Coarse mode materializes a one-off clone under the read lock.)
    pub fn snapshot(&self) -> Arc<EventStore> {
        if let Some(snap) = self.acquire_published() {
            return snap;
        }
        let guard = self.inner.writer.read().unwrap_or_else(|e| e.into_inner());
        Arc::new(guard.clone())
    }

    /// The published snapshot, counting a reader stall when the publish
    /// lock is momentarily contended. `None` in coarse mode.
    fn acquire_published(&self) -> Option<Arc<EventStore>> {
        let guard = match self.inner.published.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.inner
                    .reader_stalls
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner
                    .published
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        };
        guard.clone()
    }

    /// Runs `f` with shared (read) access. Snapshot mode: `f` runs against
    /// the pinned snapshot with no lock held — a long query never blocks
    /// ingest or other readers. Coarse mode: `f` runs under the store's
    /// read lock (the baseline being measured against).
    pub fn read<R>(&self, f: impl FnOnce(&EventStore) -> R) -> R {
        if let Some(snap) = self.acquire_published() {
            return f(&snap);
        }
        f(&self.inner.writer.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Runs `f` with exclusive (write) access. Snapshot mode additionally
    /// publishes the post-write state (the publish happens while the write
    /// lock is still held, so publishes are serialized in write order) and
    /// then schedules any deferred background compaction.
    pub fn write<R>(&self, f: impl FnOnce(&mut EventStore) -> R) -> R {
        let mut guard = self.inner.writer.write().unwrap_or_else(|e| e.into_inner());
        let r = f(&mut guard);
        let snapshot_mode = self
            .inner
            .published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_some();
        let pending = if snapshot_mode {
            let snap = Arc::new(Self::publish_clone(&guard, &self.inner.dict_cache));
            *self
                .inner
                .published
                .write()
                .unwrap_or_else(|e| e.into_inner()) = Some(snap);
            guard.take_maintenance()
        } else {
            guard.take_maintenance()
        };
        drop(guard);
        if !pending.is_empty() {
            self.run_maintenance(pending);
        }
        r
    }

    /// Wires a background-maintenance executor and the cancel token its
    /// jobs poll (a service passes its drain token so shutdown aborts
    /// in-flight passes). Replaces any previous wiring.
    pub fn set_maintenance(&self, executor: Arc<dyn MaintenanceExecutor>, cancel: CancelToken) {
        let mut st = self
            .inner
            .maintenance
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.executor = Some(executor);
        st.cancel = cancel;
    }

    /// Compacts the deferred partitions — on the wired executor when one is
    /// present, inline (but *after* the commit's write lock released, so
    /// readers were never blocked behind the merge) otherwise.
    fn run_maintenance(&self, keys: Vec<PartitionKey>) {
        let (executor, cancel) = {
            let st = self
                .inner
                .maintenance
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            (st.executor.clone(), st.cancel.clone())
        };
        let this = self.clone();
        let pass = move || {
            for key in keys {
                if cancel.is_cancelled() {
                    return;
                }
                this.write(|s| {
                    // A cancelled pass is a no-op (layout and epochs are
                    // untouched); the next commit re-queues the partition.
                    let _ = s.compact_partition_with_cancel(key, &cancel);
                });
            }
        };
        match executor {
            Some(exec) => exec.spawn(Box::new(pass)),
            None => pass(),
        }
    }

    /// Store statistics with the handle-level reader-stall counter filled
    /// in.
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.read(|s| s.stats());
        stats.reader_stalls = self
            .inner
            .reader_stalls
            .load(std::sync::atomic::Ordering::Relaxed);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::OpSet;
    use crate::ingest::EntitySpec;
    use aiql_model::TimeWindow;

    fn raw(agent: u32, op: Operation, exe: &str, file: &str, t: i64, amount: u64) -> RawEvent {
        RawEvent::instant(
            AgentId(agent),
            op,
            EntitySpec::process(100, exe, "alice"),
            EntitySpec::file(file, "alice"),
            Timestamp::from_secs(t),
            amount,
        )
    }

    #[test]
    fn ingest_commit_scan_roundtrip() {
        let mut store = EventStore::default();
        store.ingest_all(&[
            raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100),
            raw(1, Operation::Write, "vim", "/home/alice/x", 20, 200),
            raw(2, Operation::Read, "less", "/var/log/syslog", 30, 300),
        ]);
        assert_eq!(store.event_count(), 3);
        let reads =
            store.scan_collect(&EventFilter::all().with_ops(OpSet::single(Operation::Read)));
        assert_eq!(reads.len(), 2);
    }

    #[test]
    fn dedup_merges_adjacent_identical_events() {
        let mut store = EventStore::default();
        // Three identical reads 100ms apart (within the 1s dedup window).
        let mut raws = Vec::new();
        for i in 0..3 {
            let mut r = raw(1, Operation::Read, "cat", "/etc/passwd", 0, 100);
            r.start_time = Timestamp(i * 100_000);
            r.end_time = r.start_time;
            raws.push(r);
        }
        store.ingest_all(&raws);
        assert_eq!(store.event_count(), 1);
        let all = store.scan_collect(&EventFilter::all());
        assert_eq!(all[0].amount, 300);
        assert_eq!(all[0].end_time, Timestamp(200_000));
        assert_eq!(store.stats().merged_events, 2);
    }

    #[test]
    fn dedup_respects_window_gap() {
        let cfg = StoreConfig {
            dedup_window: Duration::from_millis(50),
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        let mut r1 = raw(1, Operation::Read, "cat", "/etc/passwd", 0, 100);
        let mut r2 = r1.clone();
        r1.start_time = Timestamp(0);
        r1.end_time = Timestamp(0);
        r2.start_time = Timestamp(1_000_000); // 1s later, > 50ms window
        r2.end_time = r2.start_time;
        store.ingest_all(&[r1, r2]);
        assert_eq!(store.event_count(), 2);
    }

    #[test]
    fn dedup_can_be_disabled() {
        let cfg = StoreConfig {
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        let r = raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100);
        store.ingest_all(&[r.clone(), r.clone(), r]);
        assert_eq!(store.event_count(), 3);
    }

    #[test]
    fn partition_pruning_by_agent_and_time() {
        let mut store = EventStore::default();
        store.ingest_all(&[
            raw(1, Operation::Read, "a", "/f1", 10, 1),
            raw(2, Operation::Read, "b", "/f2", 10, 1),
            raw(1, Operation::Read, "c", "/f3", 7200, 1), // 2h later: new bucket
        ]);
        assert_eq!(store.stats().partitions, 3);
        let filter = EventFilter::all()
            .with_agents(vec![AgentId(1)])
            .with_window(TimeWindow::new(Timestamp(0), Timestamp::from_secs(3600)));
        let keys = store.partitions_for(&filter);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].agent, AgentId(1));
    }

    #[test]
    fn optimized_and_unoptimized_scans_agree() {
        let mut store = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..200 {
            raws.push(raw(
                (i % 3) as u32,
                if i % 2 == 0 {
                    Operation::Read
                } else {
                    Operation::Connect
                },
                &format!("exe{}", i % 7),
                &format!("/f{}", i % 11),
                i,
                i as u64,
            ));
        }
        store.ingest_all(&raws);
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::single(Operation::Read)),
            EventFilter::all().with_agents(vec![AgentId(2)]),
            EventFilter::all().with_window(TimeWindow::new(
                Timestamp::from_secs(50),
                Timestamp::from_secs(150),
            )),
        ];
        for f in filters {
            let mut a = store.scan_collect(&f);
            let mut b = store.scan_unoptimized_collect(&f);
            a.sort_by_key(|e| e.id);
            b.sort_by_key(|e| e.id);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn auto_commit_on_batch_size() {
        let cfg = StoreConfig {
            batch_size: 4,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        for i in 0..10 {
            // 10s apart — outside the dedup window, so nothing merges.
            store.ingest(&raw(1, Operation::Read, "x", "/f", i * 10, 1));
        }
        // Two automatic commits at 4 and 8 happened; 2 still buffered.
        assert!(store.event_count() >= 8);
        store.commit();
        assert!(store.stats().commits >= 3);
    }

    #[test]
    fn estimate_bounds_actual_matches() {
        let mut store = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..100 {
            raws.push(raw(1, Operation::Read, "cat", &format!("/f{}", i), i, 1));
        }
        store.ingest_all(&raws);
        let f = EventFilter::all().with_ops(OpSet::single(Operation::Read));
        let actual = store.scan_collect(&f).len();
        assert!(store.estimate(&f) >= actual);
    }

    #[test]
    fn shared_store_read_write() {
        let shared = SharedStore::new(EventStore::default());
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100)]);
        });
        let n = shared.read(|s| s.event_count());
        assert_eq!(n, 1);
    }

    #[test]
    fn op_indexed_scan_matches_reference_semantics() {
        let mut store = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..300 {
            raws.push(raw(
                (i % 3) as u32,
                if i % 5 == 0 {
                    Operation::Execute
                } else {
                    Operation::Read
                },
                &format!("exe{}", i % 4),
                &format!("/f{}", i % 6),
                i * 60, // spread over several hour buckets
                1,
            ));
        }
        store.ingest_all(&raws);
        let filters = [
            EventFilter::all().with_ops(OpSet::single(Operation::Execute)),
            EventFilter::all()
                .with_ops(OpSet::single(Operation::Read))
                .with_agents(vec![AgentId(1)])
                .with_window(TimeWindow::new(
                    Timestamp::from_secs(1000),
                    Timestamp::from_secs(9000),
                )),
        ];
        for f in filters {
            let mut indexed = Vec::new();
            store.scan_op_indexed(&f, &mut |e| indexed.push(e.id));
            let mut reference: Vec<_> = store
                .scan_unoptimized_collect(&f)
                .iter()
                .map(|e| e.id)
                .collect();
            indexed.sort_unstable();
            reference.sort_unstable();
            assert_eq!(indexed, reference);
        }
    }

    #[test]
    fn tiny_batch_ingest_fragments_and_compaction_densifies() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction: false,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        let raws: Vec<RawEvent> = (0..100)
            .map(|i| raw(1, Operation::Read, "cat", &format!("/f{}", i % 9), i, 1))
            .collect();
        store.ingest_all(&raws);
        let frag = store.stats();
        assert!(
            frag.segments > frag.partitions,
            "tiny-batch commits must fragment: {} segments over {} partitions",
            frag.segments,
            frag.partitions
        );
        let before = store.scan_collect(&EventFilter::all());
        let report = store.compact();
        assert!(report.partitions_compacted > 0);
        assert!(report.segments_after < report.segments_before);
        let dense = store.stats();
        assert_eq!(dense.segments, dense.partitions, "one dense run each");
        assert_eq!(dense.max_partition_segments, 1);
        let after = store.scan_collect(&EventFilter::all());
        assert_eq!(before, after, "compaction must not change scan results");
        // A second pass is a no-op.
        assert_eq!(
            store.compact(),
            CompactionReport {
                partitions_compacted: 0,
                segments_before: dense.segments as usize,
                segments_after: dense.segments as usize,
            }
        );
    }

    #[test]
    fn cancelled_store_compaction_discards_partial_merges() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction: false,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        let raws: Vec<RawEvent> = (0..100)
            .map(|i| raw(1, Operation::Read, "cat", &format!("/f{}", i % 9), i, 1))
            .collect();
        store.ingest_all(&raws);
        let before_scan = store.scan_collect(&EventFilter::all());
        let before_stats = store.stats();
        let epoch_before = store.epoch();
        let cancel = CancelToken::new();
        cancel.cancel();
        // A drain that fires before the pass starts aborts it with nothing
        // moved: same layout, same epochs, same scan results.
        assert_eq!(store.compact_with_cancel(&cancel), Err(CompactionCancelled));
        assert_eq!(store.epoch(), epoch_before, "no layout change, no bump");
        assert_eq!(store.stats().segments, before_stats.segments);
        assert_eq!(store.scan_collect(&EventFilter::all()), before_scan);
        // Retrying with a live token completes the interrupted maintenance.
        let report = store.compact_with_cancel(&CancelToken::new()).unwrap();
        assert!(report.partitions_compacted > 0);
        assert!(store.epoch() > epoch_before);
        assert_eq!(store.scan_collect(&EventFilter::all()), before_scan);
    }

    #[test]
    fn cancelled_partition_compaction_leaves_epochs_untouched() {
        let cfg = StoreConfig {
            batch_size: 4,
            compaction: false,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        let raws: Vec<RawEvent> = (0..40)
            .map(|i| raw(1, Operation::Read, "cat", "/f0", i, 1))
            .collect();
        store.ingest_all(&raws);
        let key = *store
            .partition_list()
            .first()
            .expect("ingest created a partition");
        let epoch_before = store.epoch();
        let part_epoch_before = store.partition_epoch(key).expect("partition exists");
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            store.compact_partition_with_cancel(key, &cancel),
            Err(CompactionCancelled)
        );
        assert_eq!(store.epoch(), epoch_before);
        assert_eq!(store.partition_epoch(key), Some(part_epoch_before));
        assert!(store
            .compact_partition_with_cancel(key, &CancelToken::new())
            .unwrap());
        assert_eq!(store.partition_epoch(key), Some(part_epoch_before + 1));
    }

    #[test]
    fn automatic_compaction_keeps_partitions_dense() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction_min_segments: 4,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        for i in 0..200 {
            store.ingest(&raw(
                1,
                Operation::Read,
                "cat",
                &format!("/f{}", i % 9),
                i,
                1,
            ));
        }
        store.commit();
        let stats = store.stats();
        assert!(
            stats.max_partition_segments < 4,
            "auto policy must hold segments below the trigger: {}",
            stats.max_partition_segments
        );
    }

    #[test]
    fn compaction_bumps_only_merged_partition_epochs() {
        let cfg = StoreConfig {
            compaction: false,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        // Day 0: one commit → one dense segment.
        store.ingest_all(&[raw(1, Operation::Read, "cat", "/dense", 10, 1)]);
        // Day 2: five commits into one partition → five segments.
        for i in 0..5 {
            store.ingest_all(&[raw(1, Operation::Read, "cat", "/frag", 2 * 86_400 + i, 1)]);
        }
        let epochs_before: std::collections::BTreeMap<_, _> =
            store.partition_epochs().into_iter().collect();
        let frag_key = *epochs_before
            .keys()
            .max_by_key(|k| k.bucket)
            .expect("two partitions");
        let dense_key = *epochs_before
            .keys()
            .min_by_key(|k| k.bucket)
            .expect("two partitions");
        assert!(store.partition(frag_key).unwrap().segment_count() > 1);
        assert_eq!(store.partition(dense_key).unwrap().segment_count(), 1);
        let report = store.compact();
        assert_eq!(report.partitions_compacted, 1);
        let epochs_after: std::collections::BTreeMap<_, _> =
            store.partition_epochs().into_iter().collect();
        assert_eq!(
            epochs_after[&dense_key], epochs_before[&dense_key],
            "untouched partition keeps its epoch"
        );
        assert!(
            epochs_after[&frag_key] > epochs_before[&frag_key],
            "merged partition's epoch must move"
        );
        // Targeted compaction of an already-dense partition is a no-op.
        assert!(!store.compact_partition(dense_key));
    }

    #[test]
    fn fragmented_and_compacted_scans_agree() {
        let mk = || {
            let mut store = EventStore::new(StoreConfig {
                batch_size: 16,
                compaction: false,
                ..StoreConfig::default()
            });
            let raws: Vec<RawEvent> = (0..300)
                .map(|i| {
                    raw(
                        (i % 3) as u32,
                        if i % 2 == 0 {
                            Operation::Read
                        } else {
                            Operation::Write
                        },
                        &format!("exe{}", i % 7),
                        &format!("/f{}", i % 11),
                        i * 30,
                        i as u64,
                    )
                })
                .collect();
            store.ingest_all(&raws);
            store
        };
        let fragmented = mk();
        let mut compacted = mk();
        compacted.compact();
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_ops(OpSet::single(Operation::Read)),
            EventFilter::all().with_agents(vec![AgentId(2)]),
            EventFilter::all().with_window(TimeWindow::new(
                Timestamp::from_secs(500),
                Timestamp::from_secs(5_000),
            )),
        ];
        for f in filters {
            assert_eq!(
                fragmented.scan_collect(&f),
                compacted.scan_collect(&f),
                "filter {f:?}"
            );
            assert_eq!(fragmented.count(&f), compacted.count(&f));
            // Selection vectors carry flat rows: identical per partition.
            for key in fragmented.partitions_for(&f) {
                assert_eq!(
                    fragmented.select_partition(key, &f),
                    compacted.select_partition(key, &f),
                    "flat selection vectors invariant under compaction"
                );
            }
        }
    }

    #[test]
    fn novelty_overlay_absorbs_small_commits() {
        let overlay_cfg = StoreConfig {
            batch_size: 8,
            compaction: false,
            dedup: false,
            novelty_flush_rows: 64,
            ..StoreConfig::default()
        };
        let classic_cfg = StoreConfig {
            novelty_flush_rows: 0,
            ..overlay_cfg.clone()
        };
        let raws: Vec<RawEvent> = (0..200)
            .map(|i| {
                raw(
                    (i % 2) as u32,
                    Operation::Read,
                    &format!("exe{}", i % 5),
                    &format!("/f{}", i % 9),
                    i,
                    i as u64,
                )
            })
            .collect();
        let mut overlay = EventStore::new(overlay_cfg);
        let mut classic = EventStore::new(classic_cfg);
        overlay.ingest_all(&raws);
        classic.ingest_all(&raws);
        let (o, c) = (overlay.stats(), classic.stats());
        assert_eq!(o.events, c.events);
        assert!(
            o.segments < c.segments,
            "overlay must absorb tiny commits: {} vs {} segments",
            o.segments,
            c.segments
        );
        assert!(o.novelty_events > 0, "residual rows stay in the overlay");
        assert!(o.novelty_flushes > 0, "threshold flushes were counted");
        assert_eq!(c.novelty_events, 0, "classic mode seals every commit");
        let filters = [
            EventFilter::all(),
            EventFilter::all().with_agents(vec![AgentId(1)]),
            EventFilter::all().with_window(TimeWindow::new(
                Timestamp::from_secs(40),
                Timestamp::from_secs(160),
            )),
        ];
        for f in filters {
            assert_eq!(overlay.scan_collect(&f), classic.scan_collect(&f));
            assert_eq!(overlay.count(&f), classic.count(&f));
            for key in classic.partitions_for(&f) {
                assert_eq!(
                    overlay.select_partition(key, &f),
                    classic.select_partition(key, &f),
                    "flat rows invariant across overlay/classic write paths"
                );
            }
        }
        // An explicit flush seals the residual overlay without moving rows.
        let before = overlay.scan_collect(&EventFilter::all());
        let flushed = overlay.flush_novelty();
        assert!(flushed > 0);
        assert_eq!(overlay.stats().novelty_events, 0);
        assert_eq!(overlay.scan_collect(&EventFilter::all()), before);
    }

    #[test]
    fn background_compaction_defers_merges_to_maintenance() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction_min_segments: 4,
            background_compaction: true,
            dedup: false,
            ..StoreConfig::default()
        };
        let mut store = EventStore::new(cfg);
        for i in 0..200 {
            store.ingest(&raw(
                1,
                Operation::Read,
                "cat",
                &format!("/f{}", i % 9),
                i,
                1,
            ));
        }
        store.commit();
        // Commits queued the merge instead of running it inline.
        let stats = store.stats();
        assert!(
            stats.max_partition_segments >= 4,
            "inline policy must not have run: {} segments",
            stats.max_partition_segments
        );
        let pending = store.take_maintenance();
        assert!(!pending.is_empty(), "trigger crossings were queued");
        assert!(store.take_maintenance().is_empty(), "queue drains once");
        let before = store.scan_collect(&EventFilter::all());
        for key in pending {
            store.compact_partition(key);
        }
        assert!(store.stats().max_partition_segments < 4);
        assert_eq!(store.scan_collect(&EventFilter::all()), before);
    }

    #[test]
    fn shared_store_maintenance_drains_inline_without_executor() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction_min_segments: 4,
            background_compaction: true,
            dedup: false,
            ..StoreConfig::default()
        };
        let shared = SharedStore::new(EventStore::new(cfg));
        shared.write(|s| {
            for i in 0..200 {
                s.ingest(&raw(
                    1,
                    Operation::Read,
                    "cat",
                    &format!("/f{}", i % 9),
                    i,
                    1,
                ));
            }
            s.commit();
        });
        // The write's deferred queue drained after the lock released.
        let stats = shared.stats();
        assert!(
            stats.max_partition_segments < 4,
            "maintenance must have compacted: {} segments",
            stats.max_partition_segments
        );
    }

    #[test]
    fn snapshot_reads_are_isolated_from_writes() {
        let shared = SharedStore::new(EventStore::default());
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100)]);
        });
        let pinned = shared.snapshot();
        let (id_before, epoch_before) = (pinned.store_id(), pinned.epoch());
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Write, "vim", "/home/x", 20, 200)]);
        });
        // The pinned snapshot still sees exactly one event; the handle sees
        // both. Identity is shared so plan-cache keys line up; the epoch
        // names the pinned version.
        assert_eq!(pinned.event_count(), 1);
        assert_eq!(shared.read(|s| s.event_count()), 2);
        assert_eq!(pinned.store_id(), id_before);
        assert_eq!(pinned.epoch(), epoch_before);
        assert_eq!(shared.snapshot().store_id(), id_before);
        assert!(shared.snapshot().epoch() > epoch_before);
    }

    #[test]
    fn publishes_share_one_dictionary_copy_per_dict_epoch() {
        let shared = SharedStore::new(EventStore::default());
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100)]);
        });
        let s1 = shared.snapshot();
        // A batch of pure dedup hits leaves the dict epoch alone: the next
        // publish re-shares the same dictionary Arc instead of copying.
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 3_000, 7)]);
        });
        let s2 = shared.snapshot();
        assert!(
            Arc::ptr_eq(&s1.entities, &s2.entities),
            "dedup-only batch must republish the cached dictionary"
        );
        // A genuinely novel entity moves the epoch: the snapshot gets a
        // fresh copy, the writer's Arc stays unique (no make_mut copy), and
        // its dedup map still merges repeats.
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Write, "vim", "/home/x", 20, 1)]);
        });
        let s3 = shared.snapshot();
        assert!(!Arc::ptr_eq(&s2.entities, &s3.entities));
        let entities_now = s3.entities.len();
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Write, "vim", "/home/x", 25, 1)]);
        });
        assert_eq!(
            shared.read(|s| s.entities().len()),
            entities_now,
            "writer-side dedup must still recognize repeats after publishing"
        );
        // Snapshots resolve their own entities even though their dedup map
        // is intentionally empty.
        let sym = s3
            .interner()
            .get("vim")
            .expect("snapshot interner carries the new name");
        let ids = s3.entities().find(
            aiql_model::EntityKind::Process,
            None,
            &[crate::entities::EntityConstraint::on_default(
                crate::entities::AttrCmp::Eq(aiql_model::Value::Str(sym)),
            )],
        );
        assert!(
            !ids.is_empty(),
            "snapshot dictionary must resolve the new entity"
        );
    }

    #[test]
    fn coarse_mode_still_serves_reads_and_writes() {
        let shared = SharedStore::new_coarse(EventStore::default());
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100)]);
        });
        assert_eq!(shared.read(|s| s.event_count()), 1);
        // Coarse snapshots are one-off clones, isolated the same way.
        let pinned = shared.snapshot();
        shared.write(|s| {
            s.ingest_all(&[raw(1, Operation::Write, "vim", "/home/x", 20, 200)]);
        });
        assert_eq!(pinned.event_count(), 1);
        assert_eq!(shared.read(|s| s.event_count()), 2);
    }

    #[test]
    fn repeat_ingest_shares_dictionary_with_snapshots() {
        let mut store = EventStore::default();
        store.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 10, 100)]);
        let snapshot = store.clone();
        let dict_epoch = store.dict_epoch();
        // Same entities again: the read-only fast path must neither clone
        // the dictionary nor move the dictionary epoch.
        store.ingest_all(&[raw(1, Operation::Read, "cat", "/etc/passwd", 20, 100)]);
        assert_eq!(store.dict_epoch(), dict_epoch);
        assert!(
            Arc::ptr_eq(&store.entities, &snapshot.entities),
            "dedup-hit ingest must not copy the shared dictionary"
        );
        assert!(store.entities().dedup_hits() >= 2);
        // A novel entity takes the copy-on-write path and bumps the epoch.
        store.ingest_all(&[raw(1, Operation::Read, "wget", "/tmp/drop", 30, 1)]);
        assert!(store.dict_epoch() > dict_epoch);
        assert!(!Arc::ptr_eq(&store.entities, &snapshot.entities));
        assert_eq!(snapshot.entities().len(), 2, "snapshot kept its version");
    }

    #[test]
    fn maintenance_executor_receives_deferred_compaction() {
        struct Recorder(std::sync::Mutex<Vec<Box<dyn FnOnce() + Send>>>);
        impl MaintenanceExecutor for Recorder {
            fn spawn(&self, job: Box<dyn FnOnce() + Send>) {
                self.0.lock().unwrap().push(job);
            }
        }
        let cfg = StoreConfig {
            batch_size: 8,
            compaction_min_segments: 4,
            background_compaction: true,
            dedup: false,
            ..StoreConfig::default()
        };
        let shared = SharedStore::new(EventStore::new(cfg));
        let exec = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        shared.set_maintenance(exec.clone(), CancelToken::new());
        shared.write(|s| {
            for i in 0..200 {
                s.ingest(&raw(
                    1,
                    Operation::Read,
                    "cat",
                    &format!("/f{}", i % 9),
                    i,
                    1,
                ));
            }
            s.commit();
        });
        let jobs: Vec<_> = std::mem::take(&mut *exec.0.lock().unwrap());
        assert!(!jobs.is_empty(), "deferred merges went to the executor");
        assert!(shared.stats().max_partition_segments >= 4);
        for job in jobs {
            job();
        }
        assert!(shared.stats().max_partition_segments < 4);
    }

    #[test]
    fn cancelled_maintenance_is_a_no_op() {
        let cfg = StoreConfig {
            batch_size: 8,
            compaction_min_segments: 4,
            background_compaction: true,
            dedup: false,
            ..StoreConfig::default()
        };
        let shared = SharedStore::new(EventStore::new(cfg));
        struct Inline;
        impl MaintenanceExecutor for Inline {
            fn spawn(&self, job: Box<dyn FnOnce() + Send>) {
                job();
            }
        }
        let cancel = CancelToken::new();
        cancel.cancel();
        shared.set_maintenance(Arc::new(Inline), cancel);
        shared.write(|s| {
            for i in 0..200 {
                s.ingest(&raw(
                    1,
                    Operation::Read,
                    "cat",
                    &format!("/f{}", i % 9),
                    i,
                    1,
                ));
            }
            s.commit();
        });
        // The drain token aborted the pass before anything merged.
        assert!(shared.stats().max_partition_segments >= 4);
    }

    #[test]
    fn cross_host_object_agent_interning() {
        let mut store = EventStore::default();
        let r = RawEvent::instant(
            AgentId(1),
            Operation::Connect,
            EntitySpec::process(1, "client.exe", "u"),
            EntitySpec::process(2, "server.exe", "u"),
            Timestamp::from_secs(1),
            0,
        )
        .with_object_agent(AgentId(2));
        store.ingest_all(&[r]);
        let e = store.scan_collect(&EventFilter::all())[0];
        // Event is recorded on agent 1; the object entity lives on agent 2.
        assert_eq!(e.agent, AgentId(1));
        assert_eq!(store.entities().get(e.subject).agent, AgentId(1));
        assert_eq!(store.entities().get(e.object).agent, AgentId(2));
    }
}
