//! Property-based tests for the language layer: the canonical printer and
//! the parser must be exact inverses on the whole AST space.

use aiql_lang::pretty::print_query;
use aiql_lang::*;
use aiql_model::Duration;
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid reserved words by prefixing.
    "[a-z][a-z0-9]{0,5}".prop_map(|s| format!("v_{s}"))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        "[ -!#-~]{0,12}".prop_map(Literal::Str), // printable ASCII minus `"`
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        (-1000i32..1000).prop_map(|n| Literal::Float(f64::from(n) / 8.0)),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_kind() -> impl Strategy<Value = EntityKindKw> {
    prop_oneof![
        Just(EntityKindKw::Proc),
        Just(EntityKindKw::File),
        Just(EntityKindKw::Ip)
    ]
}

fn arb_attr_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("agentid".to_string()),
        Just("pid".to_string()),
        Just("exe_name".to_string()),
        Just("dstip".to_string()),
        Just("dst_port".to_string()),
        Just("owner".to_string()),
    ]
}

fn arb_decl_constraint() -> impl Strategy<Value = DeclConstraint> {
    prop_oneof![
        arb_literal().prop_map(DeclConstraint::Default),
        (arb_attr_name(), arb_cmp(), arb_literal())
            .prop_map(|(attr, op, value)| DeclConstraint::Attr(AttrConstraint { attr, op, value })),
    ]
}

fn arb_decl(kind: impl Strategy<Value = EntityKindKw>) -> impl Strategy<Value = EntityDecl> {
    (
        kind,
        arb_ident(),
        proptest::collection::vec(arb_decl_constraint(), 0..3),
    )
        .prop_map(|(kind, var, constraints)| EntityDecl {
            kind,
            var,
            constraints,
        })
}

fn arb_op_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("read".to_string()),
        Just("write".to_string()),
        Just("start".to_string()),
        Just("connect".to_string()),
        Just("execute".to_string()),
    ]
}

fn arb_pattern(i: usize) -> impl Strategy<Value = EventPattern> {
    (
        arb_decl(Just(EntityKindKw::Proc)),
        proptest::collection::vec(arb_op_name(), 1..3),
        arb_decl(arb_kind()),
    )
        .prop_map(move |(subject, ops, object)| EventPattern {
            subject,
            ops,
            object,
            name: Some(format!("evt{i}")),
        })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(|v| Expr::Ref { var: v, attr: None }),
        (arb_ident(), arb_attr_name()).prop_map(|(v, a)| Expr::Ref {
            var: v,
            attr: Some(a)
        }),
        (arb_ident(), 0u32..4).prop_map(|(name, lag)| Expr::History { name, lag }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(l),
                rhs: Box::new(r)
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(l),
                rhs: Box::new(r)
            }),
            inner.clone().prop_map(|e| Expr::Agg {
                func: AggFunc::Avg,
                arg: Box::new(e)
            }),
            // The parser folds `-literal` into negative literals, so only
            // generate Neg around non-literal operands.
            inner.prop_map(|e| match e {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Neg(Box::new(other)),
            }),
        ]
    })
}

fn arb_multievent() -> impl Strategy<Value = MultieventQuery> {
    (
        proptest::collection::vec(arb_pattern(0), 1..4),
        proptest::collection::vec(arb_ident(), 1..4),
        any::<bool>(),
        proptest::option::of(1u64..100),
        any::<bool>(),
    )
        .prop_map(|(mut patterns, ret_vars, distinct, limit, ranged)| {
            // Give each pattern a unique event name and build temporal
            // relations chaining them.
            for (i, p) in patterns.iter_mut().enumerate() {
                p.name = Some(format!("evt{}", i + 1));
            }
            let temporal = (1..patterns.len())
                .map(|i| TemporalRelation {
                    left: format!("evt{i}"),
                    op: if i % 2 == 0 {
                        TemporalOp::Before(Some(Duration::from_mins(5)))
                    } else {
                        TemporalOp::Before(None)
                    },
                    right: format!("evt{}", i + 1),
                })
                .collect();
            MultieventQuery {
                globals: Globals {
                    at: Some(if ranged {
                        AtClause {
                            start: "03/19/2018".to_string(),
                            end: Some("03/21/2018".to_string()),
                        }
                    } else {
                        AtClause::day("03/19/2018")
                    }),
                    constraints: vec![AttrConstraint {
                        attr: "agentid".into(),
                        op: CmpOp::Eq,
                        value: Literal::Int(3),
                    }],
                    window: None,
                },
                patterns,
                temporal,
                ret: ReturnClause {
                    distinct,
                    items: ret_vars
                        .into_iter()
                        .map(|v| ReturnItem {
                            expr: Expr::var(&v),
                            alias: None,
                        })
                        .collect(),
                },
                group_by: vec![],
                having: None,
                order_by: vec![],
                limit,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse = identity on generated multievent queries.
    #[test]
    fn multievent_roundtrip(q in arb_multievent()) {
        let query = Query::Multievent(q);
        let printed = print_query(&query);
        let reparsed = parse_query(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(query, reparsed, "printed:\n{}", printed);
    }

    /// Expression printing always reparses to the same tree (inside a
    /// having clause carrier query).
    #[test]
    fn expr_roundtrip(e in arb_expr()) {
        let q = Query::Multievent(MultieventQuery {
            globals: Globals::default(),
            patterns: vec![EventPattern {
                subject: EntityDecl { kind: EntityKindKw::Proc, var: "p".into(), constraints: vec![] },
                ops: vec!["read".into()],
                object: EntityDecl { kind: EntityKindKw::File, var: "f".into(), constraints: vec![] },
                name: Some("e".into()),
            }],
            temporal: vec![],
            ret: ReturnClause { distinct: false, items: vec![ReturnItem { expr: Expr::var("p"), alias: None }] },
            group_by: vec![],
            having: Some(e),
            order_by: vec![],
            limit: None,
        });
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .map_err(|err| TestCaseError::fail(format!("{err}\n{printed}")))?;
        prop_assert_eq!(q, reparsed, "printed:\n{}", printed);
    }

    /// The SQL translation never panics and always mentions every pattern's
    /// event alias.
    #[test]
    fn sql_translation_total(q in arb_multievent()) {
        let n = q.patterns.len();
        let sql = aiql_lang::sql::multievent_to_sql(&q);
        for i in 1..=n {
            let alias = format!("events evt{i}");
            let found = sql.contains(&alias);
            prop_assert!(found, "missing alias {}", alias);
        }
    }

    /// The Cypher translation never panics and emits one MATCH pattern per
    /// event pattern.
    #[test]
    fn cypher_translation_total(q in arb_multievent()) {
        let n = q.patterns.len();
        let cy = aiql_lang::cypher::multievent_to_cypher(&q);
        prop_assert_eq!(cy.matches("]->(").count(), n);
    }

    /// Lexing arbitrary printable input never panics (it may error).
    #[test]
    fn lexer_total(src in "[ -~\\n]{0,200}") {
        let _ = aiql_lang::lexer::lex(&src);
    }

    /// Parsing arbitrary printable input never panics (it may error).
    #[test]
    fn parser_total(src in "[ -~\\n]{0,200}") {
        let _ = parse_query(&src);
    }
}
