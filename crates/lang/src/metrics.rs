//! Query conciseness metrics.
//!
//! The paper's post-demo evaluation reports that the hand-written SQL
//! equivalents contain **at least 3.0× more constraints, 3.5× more words,
//! and 5.2× more characters (excluding spaces)** than the AIQL queries.
//! This module computes those three metrics over query text so the bench
//! harness can regenerate the table for our query catalog.

/// Text-level conciseness measurements of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryMetrics {
    /// Number of constraint predicates (comparison/LIKE/regex operators).
    pub constraints: usize,
    /// Whitespace-separated word count.
    pub words: usize,
    /// Characters excluding all whitespace.
    pub chars: usize,
}

impl QueryMetrics {
    /// Measures a query text (AIQL, SQL, or Cypher — the counting rules are
    /// language-agnostic).
    pub fn measure(text: &str) -> Self {
        let stripped = strip_comments(text);
        QueryMetrics {
            constraints: count_constraints(&stripped),
            words: stripped.split_whitespace().count(),
            chars: stripped.chars().filter(|c| !c.is_whitespace()).count(),
        }
    }

    /// Element-wise ratio against a baseline (`self / base`).
    pub fn ratio_over(&self, base: &QueryMetrics) -> (f64, f64, f64) {
        let div = |a: usize, b: usize| {
            if b == 0 {
                0.0
            } else {
                a as f64 / b as f64
            }
        };
        (
            div(self.constraints, base.constraints),
            div(self.words, base.words),
            div(self.chars, base.chars),
        )
    }
}

/// Removes `//` and `--` line comments (AIQL/Cypher and SQL styles).
fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|line| {
            let mut cut = line.len();
            if let Some(i) = line.find("//") {
                cut = cut.min(i);
            }
            if let Some(i) = line.find("--") {
                cut = cut.min(i);
            }
            &line[..cut]
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Counts comparison predicates: `=`, `!=`, `<>`, `<`, `<=`, `>`, `>=`,
/// `LIKE`, `IN`, `=~`, and temporal keywords `before`/`after`. Compound
/// operators are counted once.
fn count_constraints(text: &str) -> usize {
    let bytes = text.as_bytes();
    let mut count = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'=' => {
                // `=`, `==`, `=~` are one constraint; skip the tail.
                count += 1;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'=' || bytes[i] == b'~') {
                    i += 1;
                }
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                count += 1;
                i += 2;
            }
            b'<' => {
                count += 1;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'=' || bytes[i] == b'>') {
                    i += 1;
                }
                // `<-` is a dependency arrow, not a comparison.
                if i < bytes.len() && bytes[i] == b'-' {
                    count -= 1;
                    i += 1;
                }
            }
            b'>' => {
                // `->` arrows were consumed by the `-` branch below.
                count += 1;
                i += 1;
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                }
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                i += 2; // arrow, not comparison
            }
            _ => i += 1,
        }
    }
    // Word-level operators.
    for word in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        match word.to_ascii_lowercase().as_str() {
            "like" | "in" | "before" | "after" => count += 1,
            _ => {}
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_constraints() {
        assert_eq!(count_constraints("a = 1"), 1);
        assert_eq!(count_constraints("a != 1 and b <= 2"), 2);
        assert_eq!(count_constraints("x LIKE '%y%'"), 1);
    }

    #[test]
    fn arrows_are_not_constraints() {
        assert_eq!(count_constraints("p1 ->[write] f1 <-[read] p2"), 0);
    }

    #[test]
    fn temporal_keywords_count() {
        assert_eq!(count_constraints("with e1 before e2, e2 after e3"), 2);
    }

    #[test]
    fn measure_ignores_comments_and_whitespace() {
        let m = QueryMetrics::measure("a = 1 // comment with = signs\nb = 2");
        assert_eq!(m.constraints, 2);
        assert_eq!(m.words, 6);
        assert_eq!(m.chars, 6); // a=1b=2
    }

    #[test]
    fn ratios() {
        let aiql = QueryMetrics {
            constraints: 4,
            words: 20,
            chars: 100,
        };
        let sql = QueryMetrics {
            constraints: 12,
            words: 70,
            chars: 520,
        };
        let (c, w, ch) = sql.ratio_over(&aiql);
        assert!((c - 3.0).abs() < 1e-9);
        assert!((w - 3.5).abs() < 1e-9);
        assert!((ch - 5.2).abs() < 1e-9);
    }

    #[test]
    fn sql_vs_aiql_on_real_query() {
        use crate::parser::parse_query;
        use crate::sql::to_sql;
        let src = r#"(at "03/19/2018")
            agentid = 5
            proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            proc p4["%sbblv.exe"] read file f1 as evt3
            proc p4 read || write ip i1[dstip = "10.0.4.129"] as evt4
            with evt1 before evt2, evt2 before evt3, evt3 before evt4
            return distinct p1, p2, p3, f1, p4, i1"#;
        let q = parse_query(src).unwrap();
        let aiql_m = QueryMetrics::measure(src);
        let sql_m = QueryMetrics::measure(&to_sql(&q));
        let (c, w, ch) = sql_m.ratio_over(&aiql_m);
        assert!(c > 1.5, "constraint ratio {c}");
        assert!(w > 1.5, "word ratio {w}");
        assert!(ch > 1.5, "char ratio {ch}");
    }
}
