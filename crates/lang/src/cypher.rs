//! Translation of AIQL queries to Cypher (Neo4j's query language).
//!
//! Used for the Figure 5 comparison and the conciseness metrics: in the
//! graph model, entities are nodes and events are relationships, and a
//! multievent AIQL query becomes a `MATCH` over several relationship
//! patterns whose attribute and temporal constraints all land in one
//! `WHERE` clause. As the paper notes, these queries "become quite verbose
//! with many joins and constraints" as attack behaviors grow.

use std::fmt::Write as _;

use crate::ast::*;
use crate::rewrite::dependency_to_multievent;

/// Translates any AIQL query to Cypher text.
pub fn to_cypher(q: &Query) -> String {
    match q {
        Query::Multievent(m) => multievent_to_cypher(m),
        Query::Dependency(d) => match dependency_to_multievent(d) {
            Ok(m) => multievent_to_cypher(&m),
            Err(e) => format!("// untranslatable dependency query: {e}"),
        },
        Query::Anomaly(a) => anomaly_to_cypher(a),
    }
}

fn label(kind: EntityKindKw) -> &'static str {
    match kind {
        EntityKindKw::Proc => "Process",
        EntityKindKw::File => "File",
        EntityKindKw::Ip => "NetConn",
    }
}

fn default_prop(kind: EntityKindKw) -> &'static str {
    match kind {
        EntityKindKw::Proc => "exe_name",
        EntityKindKw::File => "name",
        EntityKindKw::Ip => "dst_ip",
    }
}

fn cypher_literal(lit: &Literal) -> String {
    match lit {
        Literal::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Literal::Int(i) => i.to_string(),
        Literal::Float(x) => format!("{x:?}"),
    }
}

/// LIKE patterns become Cypher regular expressions (`=~`).
fn like_to_regex(pattern: &str) -> String {
    let mut re = String::from("(?i)");
    for c in pattern.chars() {
        match c {
            '%' => re.push_str(".*"),
            '_' => re.push('.'),
            c if "\\.^$|?*+()[]{}".contains(c) => {
                re.push('\\');
                re.push(c);
            }
            c => re.push(c),
        }
    }
    re
}

fn cmp_cypher(alias: &str, prop: &str, op: CmpOp, value: &Literal) -> String {
    if let (CmpOp::Eq, Literal::Str(s)) = (op, value) {
        if s.contains('%') {
            return format!("{alias}.{prop} =~ '{}'", like_to_regex(s));
        }
    }
    let op_text = match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    };
    format!("{alias}.{prop} {op_text} {}", cypher_literal(value))
}

fn decl_predicates(decl: &EntityDecl, out: &mut Vec<String>) {
    for c in &decl.constraints {
        match c {
            DeclConstraint::Default(lit) => {
                out.push(cmp_cypher(
                    &decl.var,
                    default_prop(decl.kind),
                    CmpOp::Eq,
                    lit,
                ));
            }
            DeclConstraint::Attr(a) => {
                out.push(cmp_cypher(&decl.var, &a.attr, a.op, &a.value));
            }
        }
    }
}

fn expr_to_cypher(e: &Expr) -> String {
    match e {
        Expr::Literal(l) => cypher_literal(l),
        Expr::Ref { var, attr } => match attr {
            Some(a) => format!("{var}.{a}"),
            None => var.clone(),
        },
        Expr::Agg { func, arg } => format!("{}({})", func.name(), expr_to_cypher(arg)),
        Expr::History { name, lag } => format!("{name}_lag{lag}"),
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Ne => "<>",
                other => other.symbol(),
            };
            format!("({} {} {})", expr_to_cypher(lhs), o, expr_to_cypher(rhs))
        }
        Expr::Neg(inner) => format!("-{}", expr_to_cypher(inner)),
    }
}

/// Translates a multievent query to a single `MATCH … WHERE … RETURN`.
pub fn multievent_to_cypher(m: &MultieventQuery) -> String {
    let mut declared: Vec<String> = Vec::new();
    let mut matches: Vec<String> = Vec::new();
    let mut preds: Vec<String> = Vec::new();

    let node = |d: &EntityDecl, declared: &mut Vec<String>, preds: &mut Vec<String>| {
        let text = if declared.iter().any(|v| v == &d.var) {
            format!("({})", d.var)
        } else {
            declared.push(d.var.clone());
            decl_predicates(d, preds);
            format!("({}:{})", d.var, label(d.kind))
        };
        text
    };

    for (i, p) in m.patterns.iter().enumerate() {
        let evt = p.name.clone().unwrap_or_else(|| format!("evt{}", i + 1));
        let subj = node(&p.subject, &mut declared, &mut preds);
        let obj = node(&p.object, &mut declared, &mut preds);
        let rel = if p.ops.len() == 1 {
            p.ops[0].to_uppercase()
        } else {
            p.ops
                .iter()
                .map(|o| o.to_uppercase())
                .collect::<Vec<_>>()
                .join("|")
        };
        matches.push(format!("{subj}-[{evt}:{rel}]->{obj}"));
        // Globals apply per event relationship.
        if let Some(at) = &m.globals.at {
            preds.push(format!("{evt}.start_time >= date('{}')", at.start));
            preds.push(format!(
                "{evt}.start_time < date('{}') + duration('P1D')",
                at.end.as_deref().unwrap_or(&at.start)
            ));
        }
        for c in &m.globals.constraints {
            preds.push(cmp_cypher(&evt, &c.attr, c.op, &c.value));
        }
    }
    for t in &m.temporal {
        match &t.op {
            TemporalOp::Before(bound) => {
                preds.push(format!("{}.end_time <= {}.start_time", t.left, t.right));
                if let Some(b) = bound {
                    preds.push(format!(
                        "{}.start_time - {}.end_time <= duration('{b}')",
                        t.right, t.left
                    ));
                }
            }
            TemporalOp::After(bound) => {
                preds.push(format!("{}.start_time >= {}.end_time", t.left, t.right));
                if let Some(b) = bound {
                    preds.push(format!(
                        "{}.start_time - {}.end_time <= duration('{b}')",
                        t.left, t.right
                    ));
                }
            }
        }
    }

    let mut cypher = String::new();
    let _ = write!(cypher, "MATCH {}", matches.join(",\n      "));
    if !preds.is_empty() {
        let _ = write!(cypher, "\nWHERE {}", preds.join("\n  AND "));
    }
    let items: Vec<String> = m
        .ret
        .items
        .iter()
        .map(|i| {
            let body = match &i.expr {
                Expr::Ref { var, attr: None } => {
                    // Context-aware shortcut: project the default property.
                    let kind = m
                        .patterns
                        .iter()
                        .flat_map(|p| [&p.subject, &p.object])
                        .find(|d| &d.var == var)
                        .map(|d| d.kind);
                    match kind {
                        Some(k) => format!("{var}.{}", default_prop(k)),
                        None => var.clone(),
                    }
                }
                other => expr_to_cypher(other),
            };
            match &i.alias {
                Some(a) => format!("{body} AS {a}"),
                None => body,
            }
        })
        .collect();
    let _ = write!(
        cypher,
        "\nRETURN {}{}",
        if m.ret.distinct { "DISTINCT " } else { "" },
        items.join(", ")
    );
    if !m.order_by.is_empty() {
        let keys: Vec<String> = m
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{}{}",
                    expr_to_cypher(&o.expr),
                    match o.dir {
                        SortDir::Asc => "",
                        SortDir::Desc => " DESC",
                    }
                )
            })
            .collect();
        let _ = write!(cypher, "\nORDER BY {}", keys.join(", "));
    }
    if let Some(l) = m.limit {
        let _ = write!(cypher, "\nLIMIT {l}");
    }
    cypher.push(';');
    cypher
}

/// Translates an anomaly query: windowed aggregation needs `WITH`-pipeline
/// bucketing plus a self-join against earlier windows for history access —
/// the most verbose translation of the three.
pub fn anomaly_to_cypher(a: &AnomalyQuery) -> String {
    let w = a.globals.window.expect("anomaly query has a window spec");
    let mut preds: Vec<String> = Vec::new();
    let mut matches: Vec<String> = Vec::new();
    for (i, p) in a.patterns.iter().enumerate() {
        let evt = p.name.clone().unwrap_or_else(|| format!("evt{}", i + 1));
        decl_predicates(&p.subject, &mut preds);
        decl_predicates(&p.object, &mut preds);
        matches.push(format!(
            "({}:{})-[{evt}:{}]->({}:{})",
            p.subject.var,
            label(p.subject.kind),
            p.ops
                .iter()
                .map(|o| o.to_uppercase())
                .collect::<Vec<_>>()
                .join("|"),
            p.object.var,
            label(p.object.kind),
        ));
        for c in &a.globals.constraints {
            preds.push(cmp_cypher(&evt, &c.attr, c.op, &c.value));
        }
    }
    let group: Vec<String> = a.group_by.iter().map(expr_to_cypher).collect();
    let aggs: Vec<String> = a
        .ret
        .items
        .iter()
        .map(|i| match &i.alias {
            Some(al) => format!("{} AS {al}", expr_to_cypher(&i.expr)),
            None => expr_to_cypher(&i.expr),
        })
        .collect();
    let evt0 = a.patterns[0]
        .name
        .clone()
        .unwrap_or_else(|| "evt1".to_string());
    let mut cypher = String::new();
    let _ = write!(cypher, "MATCH {}", matches.join(", "));
    if !preds.is_empty() {
        let _ = write!(cypher, "\nWHERE {}", preds.join("\n  AND "));
    }
    let _ = write!(
        cypher,
        "\nWITH {}, ({evt0}.start_time / {}) AS window_id, {}",
        group.join(", "),
        w.step.micros(),
        aggs.join(", ")
    );
    // History access: collect per-window rows and index backwards.
    let mut lags: Vec<(String, u32)> = Vec::new();
    if let Some(h) = &a.having {
        h.visit(&mut |e| {
            if let Expr::History { name, lag } = e {
                if *lag > 0 && !lags.contains(&(name.clone(), *lag)) {
                    lags.push((name.clone(), *lag));
                }
            }
        });
    }
    for (name, lag) in &lags {
        let _ = write!(
            cypher,
            "\nOPTIONAL MATCH (prev{lag}) WHERE prev{lag}.window_id = window_id - {lag} // emulate {name}[{lag}]",
        );
        let _ = write!(cypher, "\nWITH *, prev{lag}.{name} AS {name}_lag{lag}");
    }
    if let Some(h) = &a.having {
        let _ = write!(cypher, "\nWHERE {}", expr_to_cypher(h));
    }
    let names: Vec<String> = a
        .ret
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.alias
                .clone()
                .unwrap_or_else(|| format!("col{}", i + 1))
        })
        .collect();
    let _ = write!(cypher, "\nRETURN {};", names.join(", "));
    cypher
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn multievent_cypher_shape() {
        let q = parse_query(
            r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               proc p3 write file f1["%backup1.dmp"] as evt2
               with evt1 before evt2
               return distinct p1, f1"#,
        )
        .unwrap();
        let c = to_cypher(&q);
        assert!(c.contains("MATCH (p1:Process)-[evt1:START]->(p2:Process)"));
        assert!(c.contains("(p3:Process)-[evt2:WRITE]->(f1:File)"));
        assert!(c.contains("p1.exe_name =~ '(?i).*cmd\\.exe'"));
        assert!(c.contains("evt1.end_time <= evt2.start_time"));
        assert!(c.contains("RETURN DISTINCT p1.exe_name, f1.name"));
    }

    #[test]
    fn shared_variable_not_redeclared() {
        let q = parse_query(
            r#"proc p3 write file f1["%x%"] as e1
               proc p4 read file f1 as e2
               return f1"#,
        )
        .unwrap();
        let c = to_cypher(&q);
        assert_eq!(c.matches("(f1:File)").count(), 1);
        assert!(c.contains("->(f1)"));
    }

    #[test]
    fn like_to_regex_escapes_metacharacters() {
        assert_eq!(like_to_regex("%cmd.exe"), "(?i).*cmd\\.exe");
        assert_eq!(like_to_regex("a_b"), "(?i)a.b");
        assert_eq!(like_to_regex("50%+"), "(?i)50.*\\+");
    }

    #[test]
    fn op_alternatives_in_relationship() {
        let q = parse_query("proc p read || write ip i as e return p").unwrap();
        let c = to_cypher(&q);
        assert!(c.contains("[e:READ|WRITE]"));
    }

    #[test]
    fn anomaly_cypher_mentions_window_emulation() {
        let q = parse_query(
            r#"window = 1 min, step = 10 sec
               proc p write ip i as evt
               return p, avg(evt.amount) as amt
               group by p
               having amt > 2 * amt[1]"#,
        )
        .unwrap();
        let c = to_cypher(&q);
        assert!(c.contains("window_id"));
        assert!(c.contains("amt_lag1"));
    }

    #[test]
    fn dependency_rewrites_before_translation() {
        let q =
            parse_query(r#"forward: proc p1["%cp%"] ->[write] file f1 <-[read] proc p2 return p2"#)
                .unwrap();
        let c = to_cypher(&q);
        assert!(c.contains("dep_evt1"));
        assert!(c.contains("dep_evt2"));
    }
}
