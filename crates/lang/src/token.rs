//! Tokens of the AIQL language.

use std::fmt;

/// Source position (1-based line and column) of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// The start-of-input span.
    pub fn start() -> Self {
        Span {
            offset: 0,
            line: 1,
            col: 1,
        }
    }
}

/// The token vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keyword recognition is contextual: `window`,
    /// `return`, etc. are reserved; entity variables are free identifiers).
    Ident(String),
    /// String literal (double-quoted; supports `\"` and `\\` escapes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `||` (operation alternative in event patterns)
    OrOr,
    /// `->` (dependency edge, subject to object)
    ArrowRight,
    /// `<-` (dependency edge, object to subject)
    ArrowLeft,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::ArrowRight => write!(f, "`->`"),
            Tok::ArrowLeft => write!(f, "`<-`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token value.
    pub tok: Tok,
    /// Where it begins.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_display_is_human_readable() {
        assert_eq!(Tok::Ident("p1".into()).to_string(), "identifier `p1`");
        assert_eq!(Tok::ArrowRight.to_string(), "`->`");
        assert_eq!(Tok::Eof.to_string(), "end of input");
    }
}
