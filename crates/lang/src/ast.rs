//! Abstract syntax of AIQL queries.
//!
//! The three query forms share their building blocks: entity declarations
//! with constraint lists, global clauses, return clauses, and an expression
//! grammar (used in `having` / `order by` and aggregate return items).

use std::fmt;

use aiql_model::Duration;

/// A parsed AIQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Multi-step attack behavior specification.
    Multievent(MultieventQuery),
    /// Causality / dependency tracking path.
    Dependency(DependencyQuery),
    /// Frequency-based abnormal behavior model.
    Anomaly(AnomalyQuery),
}

impl Query {
    /// The query's global clause.
    pub fn globals(&self) -> &Globals {
        match self {
            Query::Multievent(q) => &q.globals,
            Query::Dependency(q) => &q.globals,
            Query::Anomaly(q) => &q.globals,
        }
    }

    /// A short kind tag for display.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Query::Multievent(_) => "multievent",
            Query::Dependency(_) => "dependency",
            Query::Anomaly(_) => "anomaly",
        }
    }
}

/// The `(at "mm/dd/yyyy")` or `(at "mm/dd/yyyy" to "mm/dd/yyyy")` clause.
/// Investigations over months of retained data scope queries to a day or a
/// date range; the end date is inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtClause {
    /// First day, `mm/dd/yyyy`.
    pub start: String,
    /// Optional last day (inclusive), `mm/dd/yyyy`.
    pub end: Option<String>,
}

impl AtClause {
    /// A single-day clause.
    pub fn day(date: &str) -> Self {
        AtClause {
            start: date.to_string(),
            end: None,
        }
    }
}

/// Global constraints applying to every event pattern in the query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Globals {
    /// The `(at …)` time window, if present.
    pub at: Option<AtClause>,
    /// Global attribute constraints, e.g. `agentid = 7`.
    pub constraints: Vec<AttrConstraint>,
    /// Sliding-window specification (anomaly queries).
    pub window: Option<WindowSpec>,
}

/// `window = <len>, step = <len>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length.
    pub length: Duration,
    /// Slide step.
    pub step: Duration,
}

/// A literal value in query source.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// String literal (may contain `%` wildcards when used as a pattern).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// Comparison operators usable in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Source form of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// `attr <op> literal`, e.g. `agentid = 7` or `dstip = "10.0.4.129"`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrConstraint {
    /// Attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub value: Literal,
}

/// Entity kinds in query syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKindKw {
    /// `proc`
    Proc,
    /// `file`
    File,
    /// `ip`
    Ip,
}

impl EntityKindKw {
    /// The keyword text.
    pub fn keyword(self) -> &'static str {
        match self {
            EntityKindKw::Proc => "proc",
            EntityKindKw::File => "file",
            EntityKindKw::Ip => "ip",
        }
    }

    /// Maps to the data-model kind.
    pub fn kind(self) -> aiql_model::EntityKind {
        match self {
            EntityKindKw::Proc => aiql_model::EntityKind::Process,
            EntityKindKw::File => aiql_model::EntityKind::File,
            EntityKindKw::Ip => aiql_model::EntityKind::NetConn,
        }
    }
}

/// One constraint inside an entity declaration's bracket list.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclConstraint {
    /// A bare literal constrains the kind's default attribute
    /// (context-aware shortcut): `proc p1["%cmd.exe"]`.
    Default(Literal),
    /// An explicit attribute constraint: `ip i1[dstip = "10.0.4.129"]`.
    Attr(AttrConstraint),
}

/// An entity declaration: `proc p1["%cmd.exe", agentid = 1]`.
///
/// Redeclaring the same variable in a later pattern (possibly without
/// constraints, e.g. `file f1` after `file f1["%backup1.dmp"]`) expresses an
/// implicit attribute relationship — both patterns must bind the *same*
/// entity.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityDecl {
    /// Declared kind.
    pub kind: EntityKindKw,
    /// Variable name.
    pub var: String,
    /// Bracketed constraints (possibly empty).
    pub constraints: Vec<DeclConstraint>,
}

/// An event pattern: `subject op1 || op2 object as name`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    /// Subject entity (always a process in well-formed queries; validated
    /// during analysis, not parsing).
    pub subject: EntityDecl,
    /// One or more alternative operations.
    pub ops: Vec<String>,
    /// Object entity.
    pub object: EntityDecl,
    /// Optional event variable (`as evt1`).
    pub name: Option<String>,
}

/// Temporal operator between two event variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalOp {
    /// `evt1 before evt2` — left ends no later than right starts; the
    /// optional bound limits the gap.
    Before(Option<Duration>),
    /// `evt1 after evt2`.
    After(Option<Duration>),
}

/// `with evt1 before evt2, …`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalRelation {
    /// Left event variable.
    pub left: String,
    /// The operator.
    pub op: TemporalOp,
    /// Right event variable.
    pub right: String,
}

/// Aggregate functions available in anomaly queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(expr)` (or `count(*)` via `count(1)`).
    Count,
    /// `sum(expr)`
    Sum,
    /// `avg(expr)`
    Avg,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
}

impl AggFunc {
    /// Function name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parses a function name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// Binary operators of the expression grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Expressions (having clauses, aggregate arguments, return items).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Literal),
    /// `var` or `var.attr` — an entity/event attribute reference. A bare
    /// `var` resolves to the entity kind's default attribute.
    Ref {
        /// Variable name.
        var: String,
        /// Optional attribute.
        attr: Option<String>,
    },
    /// Aggregate call: `avg(evt.amount)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// Argument expression.
        arg: Box<Expr>,
    },
    /// Historical aggregate access: `amt[1]` is the aliased aggregate's
    /// value one sliding window earlier; `amt` alone (after aliasing) is
    /// window 0. The unique AIQL construct for behavioral models.
    History {
        /// Alias of the aggregate being accessed.
        name: String,
        /// How many windows back (0 = current).
        lag: u32,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a bare variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Ref {
            var: name.to_string(),
            attr: None,
        }
    }

    /// Walks the expression tree, invoking `f` on every node.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Agg { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Neg(e) => e.visit(f),
            _ => {}
        }
    }
}

/// One projected item: `expr` optionally `as alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional alias.
    pub alias: Option<String>,
}

/// The `return` clause.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReturnClause {
    /// Whether `distinct` was requested.
    pub distinct: bool,
    /// Projected items, in order.
    pub items: Vec<ReturnItem>,
}

/// Sort direction in `order by`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Direction.
    pub dir: SortDir,
}

/// A multievent AIQL query (§2.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct MultieventQuery {
    /// Global constraints.
    pub globals: Globals,
    /// Event patterns, in declaration order.
    pub patterns: Vec<EventPattern>,
    /// Temporal relationships from the `with` clause.
    pub temporal: Vec<TemporalRelation>,
    /// Projection.
    pub ret: ReturnClause,
    /// `group by` keys (empty when absent).
    pub group_by: Vec<Expr>,
    /// `having` filter.
    pub having: Option<Expr>,
    /// `order by` keys.
    pub order_by: Vec<OrderItem>,
    /// `limit`.
    pub limit: Option<u64>,
}

/// Tracking direction of a dependency query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `forward:` — ramification analysis; earlier events appear to the
    /// left of the path.
    Forward,
    /// `backward:` — root-cause analysis; later events appear to the left.
    Backward,
}

/// Edge arrow orientation within a dependency path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrowDir {
    /// `->[op]`: the left node is the subject acting on the right node
    /// (or data flows left→right).
    Right,
    /// `<-[op]`: the right node is the subject acting on the left node.
    Left,
}

/// One edge in a dependency path: `->[write] file f1[…]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DepEdge {
    /// Arrow orientation.
    pub arrow: ArrowDir,
    /// Operations on the edge (alternatives).
    pub ops: Vec<String>,
    /// The next node.
    pub node: EntityDecl,
}

/// A dependency AIQL query (§2.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyQuery {
    /// Global constraints.
    pub globals: Globals,
    /// Tracking direction.
    pub direction: Direction,
    /// Path start node.
    pub start: EntityDecl,
    /// Path edges in source order.
    pub edges: Vec<DepEdge>,
    /// Projection.
    pub ret: ReturnClause,
}

/// An anomaly AIQL query (§2.2.3): a sliding-window aggregation over
/// matched events with (optionally historical) `having` filters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyQuery {
    /// Global constraints; `globals.window` is required.
    pub globals: Globals,
    /// The event pattern whose matches are windowed.
    pub patterns: Vec<EventPattern>,
    /// Projection (may contain aggregates).
    pub ret: ReturnClause,
    /// Grouping keys.
    pub group_by: Vec<Expr>,
    /// Filter over aggregates, possibly accessing history.
    pub having: Option<Expr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display_quotes_strings() {
        assert_eq!(Literal::Str("%cmd.exe".into()).to_string(), "\"%cmd.exe\"");
        assert_eq!(
            Literal::Str("a\"b\\c".into()).to_string(),
            "\"a\\\"b\\\\c\""
        );
        assert_eq!(Literal::Int(42).to_string(), "42");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn expr_visit_reaches_all_nodes() {
        let e = Expr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(Expr::History {
                name: "amt".into(),
                lag: 0,
            }),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Literal(Literal::Int(2))),
                rhs: Box::new(Expr::History {
                    name: "amt".into(),
                    lag: 1,
                }),
            }),
        };
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn kind_keyword_mapping() {
        assert_eq!(EntityKindKw::Proc.kind(), aiql_model::EntityKind::Process);
        assert_eq!(EntityKindKw::Ip.kind(), aiql_model::EntityKind::NetConn);
        assert_eq!(EntityKindKw::File.keyword(), "file");
    }

    #[test]
    fn agg_parse_roundtrip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
        assert_eq!(AggFunc::parse("median"), None);
    }
}
