//! Canonical pretty-printer.
//!
//! Renders an AST back to AIQL source. The output reparses to an identical
//! AST (verified by property tests), which gives the web-UI-style query
//! formatter for free and pins the grammar's round-trip semantics.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a query as canonical AIQL text.
pub fn print_query(q: &Query) -> String {
    let mut out = String::new();
    print_globals(&mut out, q.globals());
    match q {
        Query::Multievent(m) => {
            for p in &m.patterns {
                print_pattern(&mut out, p);
            }
            if !m.temporal.is_empty() {
                let rels: Vec<String> = m.temporal.iter().map(print_temporal).collect();
                let _ = writeln!(out, "with {}", rels.join(", "));
            }
            print_return(&mut out, &m.ret);
            print_group_having(&mut out, &m.group_by, &m.having);
            if !m.order_by.is_empty() {
                let keys: Vec<String> = m
                    .order_by
                    .iter()
                    .map(|o| {
                        format!(
                            "{}{}",
                            print_expr(&o.expr),
                            match o.dir {
                                SortDir::Asc => "",
                                SortDir::Desc => " desc",
                            }
                        )
                    })
                    .collect();
                let _ = writeln!(out, "order by {}", keys.join(", "));
            }
            if let Some(limit) = m.limit {
                let _ = writeln!(out, "limit {limit}");
            }
        }
        Query::Dependency(d) => {
            let dir = match d.direction {
                Direction::Forward => "forward",
                Direction::Backward => "backward",
            };
            let _ = write!(out, "{dir}: {}", print_decl(&d.start));
            for e in &d.edges {
                let arrow = match e.arrow {
                    ArrowDir::Right => "->",
                    ArrowDir::Left => "<-",
                };
                let _ = write!(
                    out,
                    " {arrow}[{}] {}",
                    e.ops.join(" || "),
                    print_decl(&e.node)
                );
            }
            out.push('\n');
            print_return(&mut out, &d.ret);
        }
        Query::Anomaly(a) => {
            for p in &a.patterns {
                print_pattern(&mut out, p);
            }
            print_return(&mut out, &a.ret);
            print_group_having(&mut out, &a.group_by, &a.having);
        }
    }
    out
}

fn print_globals(out: &mut String, g: &Globals) {
    if let Some(at) = &g.at {
        match &at.end {
            Some(end) => {
                let _ = writeln!(out, "(at \"{}\" to \"{}\")", at.start, end);
            }
            None => {
                let _ = writeln!(out, "(at \"{}\")", at.start);
            }
        }
    }
    for c in &g.constraints {
        let _ = writeln!(out, "{} {} {}", c.attr, c.op.symbol(), c.value);
    }
    if let Some(w) = &g.window {
        let _ = writeln!(out, "window = {}, step = {}", w.length, w.step);
    }
}

fn print_pattern(out: &mut String, p: &EventPattern) {
    let _ = write!(
        out,
        "{} {} {}",
        print_decl(&p.subject),
        p.ops.join(" || "),
        print_decl(&p.object)
    );
    if let Some(name) = &p.name {
        let _ = write!(out, " as {name}");
    }
    out.push('\n');
}

/// Renders an entity declaration.
pub fn print_decl(d: &EntityDecl) -> String {
    let mut s = format!("{} {}", d.kind.keyword(), d.var);
    if !d.constraints.is_empty() {
        let parts: Vec<String> = d
            .constraints
            .iter()
            .map(|c| match c {
                DeclConstraint::Default(lit) => lit.to_string(),
                DeclConstraint::Attr(a) => {
                    format!("{} {} {}", a.attr, a.op.symbol(), a.value)
                }
            })
            .collect();
        let _ = write!(s, "[{}]", parts.join(", "));
    }
    s
}

fn print_temporal(t: &TemporalRelation) -> String {
    let op = match &t.op {
        TemporalOp::Before(None) => "before".to_string(),
        TemporalOp::Before(Some(d)) => format!("before[{d}]"),
        TemporalOp::After(None) => "after".to_string(),
        TemporalOp::After(Some(d)) => format!("after[{d}]"),
    };
    format!("{} {} {}", t.left, op, t.right)
}

fn print_return(out: &mut String, r: &ReturnClause) {
    let items: Vec<String> = r
        .items
        .iter()
        .map(|i| match &i.alias {
            Some(a) => format!("{} as {a}", print_expr(&i.expr)),
            None => print_expr(&i.expr),
        })
        .collect();
    let _ = writeln!(
        out,
        "return {}{}",
        if r.distinct { "distinct " } else { "" },
        items.join(", ")
    );
}

fn print_group_having(out: &mut String, group_by: &[Expr], having: &Option<Expr>) {
    if !group_by.is_empty() {
        let keys: Vec<String> = group_by.iter().map(print_expr).collect();
        let _ = writeln!(out, "group by {}", keys.join(", "));
    }
    if let Some(h) = having {
        let _ = writeln!(out, "having {}", print_expr(h));
    }
}

/// Renders an expression with explicit parentheses around every binary
/// operation (guaranteeing reparse fidelity without precedence reasoning).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(l) => l.to_string(),
        Expr::Ref { var, attr: None } => var.clone(),
        Expr::Ref {
            var,
            attr: Some(attr),
        } => format!("{var}.{attr}"),
        Expr::Agg { func, arg } => format!("{}({})", func.name(), print_expr(arg)),
        Expr::History { name, lag } => format!("{name}[{lag}]"),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", print_expr(lhs), op.symbol(), print_expr(rhs))
        }
        Expr::Neg(inner) => format!("-{}", print_expr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn roundtrip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        // History lag 0 prints as `amt[0]`, which reparses identically, so
        // plain equality is the right check.
        assert_eq!(q1, q2, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_multievent() {
        roundtrip(
            r#"(at "03/19/2018") agentid = 5
            proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            proc p4 read || write ip i1[dstip = "10.0.4.129"] as evt4
            with evt1 before evt2, evt2 before[10 min] evt4
            return distinct p1, p2, f1
            order by p1 desc limit 5"#,
        );
    }

    #[test]
    fn roundtrip_dependency() {
        roundtrip(
            r#"forward: proc p1["%/bin/cp%", agentid = 1] ->[write] file f1["%info_stealer%"]
            <-[read] proc p2["%apache%"] ->[connect] proc p3[agentid = 2]
            return f1, p1, p2, p3"#,
        );
    }

    #[test]
    fn roundtrip_anomaly() {
        roundtrip(
            r#"agentid = 5 window = 1 min, step = 10 sec
            proc p write ip i[dstip = "10.0.4.129"] as evt
            return p, avg(evt.amount) as amt
            group by p
            having amt > 2 * (amt[0] + amt[1] + amt[2]) / 3"#,
        );
    }

    #[test]
    fn expr_parenthesization_is_unambiguous() {
        let e = parse_query("proc p read file f as e return p having 1 + 2 * 3 > 4").unwrap();
        let Query::Multievent(m) = e else { panic!() };
        let s = print_expr(m.having.as_ref().unwrap());
        assert_eq!(s, "((1 + (2 * 3)) > 4)");
    }
}
