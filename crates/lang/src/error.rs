//! Parse errors with precise positions.
//!
//! The paper's architecture diagram includes an "Error Reporting" component
//! in the language parser; investigators iterate on queries quickly, so
//! errors point at the offending token and list what was expected, and the
//! renderer draws a caret under the source line.

use std::fmt;

use crate::token::Span;

/// A lexing or parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// What went wrong.
    pub message: String,
    /// What the parser would have accepted here (possibly empty).
    pub expected: Vec<String>,
}

impl ParseError {
    /// Builds an error at a span.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
            expected: Vec::new(),
        }
    }

    /// Attaches an expected-token list.
    #[must_use]
    pub fn with_expected(mut self, expected: Vec<String>) -> Self {
        self.expected = expected;
        self
    }

    /// Renders the error against the original source with a caret marker,
    /// e.g. for the web UI's syntax-checking feature.
    pub fn render(&self, source: &str) -> String {
        let mut out = format!(
            "syntax error at line {}, column {}: {}",
            self.span.line, self.span.col, self.message
        );
        if !self.expected.is_empty() {
            out.push_str(&format!(" (expected {})", self.expected.join(", ")));
        }
        if let Some(line) = source.lines().nth(self.span.line as usize - 1) {
            out.push('\n');
            out.push_str(line);
            out.push('\n');
            for _ in 1..self.span.col {
                out.push(' ');
            }
            out.push('^');
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at {}:{}: {}",
            self.span.line, self.span.col, self.message
        )?;
        if !self.expected.is_empty() {
            write!(f, " (expected {})", self.expected.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_column() {
        let src = "proc p1 frobnicate file f1";
        let err = ParseError::new(
            Span {
                offset: 8,
                line: 1,
                col: 9,
            },
            "unknown operation",
        )
        .with_expected(vec!["read".into(), "write".into()]);
        let rendered = err.render(src);
        assert!(rendered.contains("line 1, column 9"));
        assert!(rendered.contains("expected read, write"));
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(8));
    }

    #[test]
    fn display_without_source() {
        let err = ParseError::new(
            Span {
                offset: 0,
                line: 2,
                col: 5,
            },
            "unexpected token",
        );
        assert!(err.to_string().contains("2:5"));
    }
}
