//! # aiql-lang
//!
//! The **Attack Investigation Query Language** (§2.2 of the paper): a
//! domain-specific language with explicit constructs for the three major
//! types of attack behaviors —
//!
//! 1. **Multievent queries** — event patterns
//!    (`proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1`), global
//!    spatial/temporal constraints, attribute relationships (implicit via
//!    shared variables), and temporal relationships (`with evt1 before evt2`);
//! 2. **Dependency queries** — event paths for causality tracking
//!    (`forward: proc p1 ->[write] file f1 <-[read] proc p2 …`);
//! 3. **Anomaly queries** — sliding windows (`window = 1 min, step = 10
//!    sec`), aggregations (`avg(evt.amount) as amt`), and accesses to
//!    historical aggregate results (`amt[1]`, the value one window back).
//!
//! The paper builds the grammar with ANTLR 4; here it is a hand-written
//! lexer ([`lexer`]) and recursive-descent parser ([`parser`]) with precise
//! error reporting ([`error`]), plus a canonical pretty-printer ([`pretty`])
//! and translators to semantically equivalent SQL ([`sql`]) and Cypher
//! ([`cypher`]) used for the paper's conciseness comparison ([`metrics`]).

pub mod ast;
pub mod cypher;
pub mod error;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod pretty;
pub mod rewrite;
pub mod sql;
pub mod token;

pub use ast::*;
pub use error::ParseError;
pub use parser::parse_query;
pub use rewrite::dependency_to_multievent;
