//! Dependency-query rewriting.
//!
//! Per §2.3 of the paper, "for a dependency query, the parser compiles it to
//! a semantically equivalent multievent query for execution". An event path
//!
//! ```text
//! forward: proc p1 ->[write] file f1 <-[read] proc p2 ->[connect] proc p3
//! ```
//!
//! becomes one event pattern per edge. The arrow gives the subject/object
//! roles (`A ->[op] B` ⇒ A is the subject; `A <-[op] B` ⇒ B is the
//! subject), path adjacency becomes an implicit attribute relationship
//! (shared entity variable), and the tracking direction becomes a chain of
//! temporal relationships (`forward` ⇒ each edge's event happens before the
//! next; `backward` ⇒ after).

use crate::ast::*;
use crate::error::ParseError;
use crate::token::Span;

/// Prefix of synthesized event variable names.
pub const DEP_EVENT_PREFIX: &str = "dep_evt";

/// Compiles a dependency query into the equivalent multievent query.
pub fn dependency_to_multievent(d: &DependencyQuery) -> Result<MultieventQuery, ParseError> {
    let mut patterns = Vec::with_capacity(d.edges.len());
    let mut names = Vec::with_capacity(d.edges.len());
    let mut left = d.start.clone();
    for (i, edge) in d.edges.iter().enumerate() {
        let right = edge.node.clone();
        let (subject, object) = match edge.arrow {
            ArrowDir::Right => (left.clone(), right.clone()),
            ArrowDir::Left => (right.clone(), left.clone()),
        };
        if subject.kind != EntityKindKw::Proc {
            return Err(ParseError::new(
                Span::start(),
                format!(
                    "dependency edge {} has a non-process subject `{}`; arrows must point away from the acting process",
                    i + 1,
                    subject.var
                ),
            ));
        }
        let name = format!("{DEP_EVENT_PREFIX}{}", i + 1);
        names.push(name.clone());
        patterns.push(EventPattern {
            subject,
            ops: edge.ops.clone(),
            object,
            name: Some(name),
        });
        left = edge.node.clone();
    }
    let temporal = names
        .windows(2)
        .map(|pair| TemporalRelation {
            left: pair[0].clone(),
            op: match d.direction {
                Direction::Forward => TemporalOp::Before(None),
                Direction::Backward => TemporalOp::After(None),
            },
            right: pair[1].clone(),
        })
        .collect();
    Ok(MultieventQuery {
        globals: d.globals.clone(),
        patterns,
        temporal,
        ret: d.ret.clone(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn dep(src: &str) -> DependencyQuery {
        match parse_query(src).unwrap() {
            Query::Dependency(d) => d,
            other => panic!("expected dependency, got {}", other.kind_name()),
        }
    }

    #[test]
    fn forward_chain_produces_before_relations() {
        let d = dep(
            r#"forward: proc p1["%cp%"] ->[write] file f1["%x%"] <-[read] proc p2 ->[write] file f2
               return p1, f2"#,
        );
        let m = dependency_to_multievent(&d).unwrap();
        assert_eq!(m.patterns.len(), 3);
        // Edge 1: p1 writes f1.
        assert_eq!(m.patterns[0].subject.var, "p1");
        assert_eq!(m.patterns[0].object.var, "f1");
        // Edge 2 (left arrow): p2 reads f1.
        assert_eq!(m.patterns[1].subject.var, "p2");
        assert_eq!(m.patterns[1].object.var, "f1");
        // Edge 3: p2 writes f2.
        assert_eq!(m.patterns[2].subject.var, "p2");
        assert_eq!(m.patterns[2].object.var, "f2");
        assert_eq!(m.temporal.len(), 2);
        assert!(m.temporal.iter().all(|t| t.op == TemporalOp::Before(None)));
        assert_eq!(m.temporal[0].left, "dep_evt1");
        assert_eq!(m.temporal[0].right, "dep_evt2");
    }

    #[test]
    fn backward_chain_produces_after_relations() {
        let d = dep(
            r#"backward: file f1["%malware%"] <-[write] proc p1 <-[start] proc p0
               return p0"#,
        );
        let m = dependency_to_multievent(&d).unwrap();
        // f1 <-[write] p1 : p1 writes f1.
        assert_eq!(m.patterns[0].subject.var, "p1");
        assert_eq!(m.patterns[0].object.var, "f1");
        // p1 <-[start] p0 : p0 starts p1.
        assert_eq!(m.patterns[1].subject.var, "p0");
        assert_eq!(m.patterns[1].object.var, "p1");
        assert!(m.temporal.iter().all(|t| t.op == TemporalOp::After(None)));
    }

    #[test]
    fn constraints_travel_with_the_declaration() {
        let d = dep(
            r#"forward: proc p1["%cp%", agentid = 1] ->[write] file f1["/var/www/%"]
               return p1, f1"#,
        );
        let m = dependency_to_multievent(&d).unwrap();
        assert_eq!(m.patterns[0].subject.constraints.len(), 2);
        assert_eq!(m.patterns[0].object.constraints.len(), 1);
    }

    #[test]
    fn non_process_subject_is_rejected() {
        // file f1 ->[read] proc p2 would make the *file* the subject.
        let d = dep(r#"forward: file f1 ->[read] proc p2 return p2"#);
        assert!(dependency_to_multievent(&d).is_err());
    }

    #[test]
    fn globals_and_return_are_preserved() {
        let d = dep(r#"(at "03/19/2018") agentid = 1
               forward: proc p1 ->[write] file f1 return p1, f1"#);
        let m = dependency_to_multievent(&d).unwrap();
        assert_eq!(m.globals.at, Some(AtClause::day("03/19/2018")));
        assert_eq!(m.ret.items.len(), 2);
    }
}
