//! The AIQL lexer.
//!
//! Whitespace-insensitive, supports `//` line comments (the paper's example
//! queries annotate lines with comments), double-quoted strings with escape
//! sequences, integers/floats, and the operator vocabulary including the
//! dependency arrows `->` / `<-` and the operation alternative `||`.

use crate::error::ParseError;
use crate::token::{Span, Tok, Token};

/// Tokenizes an AIQL query.
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut lexer = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        let token = lexer.next_token()?;
        let done = token.tok == Tok::Eof;
        out.push(token);
        if done {
            return Ok(out);
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            offset: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia();
        let span = self.span();
        let Some(c) = self.peek() else {
            return Ok(Token {
                tok: Tok::Eof,
                span,
            });
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'=' => {
                self.bump();
                // Accept both `=` and `==`.
                if self.peek() == Some(b'=') {
                    self.bump();
                }
                Tok::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ne
                } else {
                    return Err(ParseError::new(span, "stray `!` (did you mean `!=`?)"));
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Le
                    }
                    Some(b'-') => {
                        self.bump();
                        Tok::ArrowLeft
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(ParseError::new(span, "stray `|` (did you mean `||`?)"));
                }
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::ArrowRight
                } else {
                    Tok::Minus
                }
            }
            b'+' => {
                self.bump();
                Tok::Plus
            }
            b'*' => {
                self.bump();
                Tok::Star
            }
            b'/' => {
                self.bump();
                Tok::Slash
            }
            b'"' => self.lex_string(span)?,
            c if c.is_ascii_digit() => self.lex_number(span)?,
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident(),
            other => {
                return Err(ParseError::new(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token { tok, span })
    }

    fn lex_string(&mut self, span: Span) -> Result<Tok, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new(span, "unterminated string literal")),
                Some(b'"') => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(other) => {
                        s.push('\\');
                        s.push(other as char);
                    }
                    None => return Err(ParseError::new(span, "unterminated string literal")),
                },
                Some(other) => s.push(other as char),
            }
        }
    }

    fn lex_number(&mut self, span: Span) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // A dot only continues the number if followed by a digit — `evt.amount`
        // must lex as ident, dot, ident.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| ParseError::new(span, format!("invalid float literal `{text}`")))
        } else {
            text.parse::<i64>().map(Tok::Int).map_err(|_| {
                ParseError::new(span, format!("integer literal out of range `{text}`"))
            })
        }
    }

    fn lex_ident(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        Tok::Ident(text.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_event_pattern_line() {
        let got = toks(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1"#);
        assert_eq!(
            got,
            vec![
                Tok::Ident("proc".into()),
                Tok::Ident("p1".into()),
                Tok::LBracket,
                Tok::Str("%cmd.exe".into()),
                Tok::RBracket,
                Tok::Ident("start".into()),
                Tok::Ident("proc".into()),
                Tok::Ident("p2".into()),
                Tok::LBracket,
                Tok::Str("%osql.exe".into()),
                Tok::RBracket,
                Tok::Ident("as".into()),
                Tok::Ident("evt1".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrows_and_oror() {
        assert_eq!(
            toks("->[write] <-[read] read || write"),
            vec![
                Tok::ArrowRight,
                Tok::LBracket,
                Tok::Ident("write".into()),
                Tok::RBracket,
                Tok::ArrowLeft,
                Tok::LBracket,
                Tok::Ident("read".into()),
                Tok::RBracket,
                Tok::Ident("read".into()),
                Tok::OrOr,
                Tok::Ident("write".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let got = toks("agentid = 3 // SQL database server\nwindow = 1 min");
        assert_eq!(got[0], Tok::Ident("agentid".into()));
        assert_eq!(got[1], Tok::Eq);
        assert_eq!(got[2], Tok::Int(3));
        assert_eq!(got[3], Tok::Ident("window".into()));
    }

    #[test]
    fn dotted_attribute_vs_float() {
        assert_eq!(
            toks("evt.amount 3.5 2"),
            vec![
                Tok::Ident("evt".into()),
                Tok::Dot,
                Tok::Ident("amount".into()),
                Tok::Float(3.5),
                Tok::Int(2),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""C:\\Windows\\cmd.exe" "say \"hi\"""#),
            vec![
                Tok::Str("C:\\Windows\\cmd.exe".into()),
                Tok::Str("say \"hi\"".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let tokens = lex("proc p\nfile f").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[0].span.col, 1);
        assert_eq!(tokens[2].span.line, 2);
        assert_eq!(tokens[2].span.col, 1);
        assert_eq!(tokens[3].span.col, 6);
    }

    #[test]
    fn error_on_unterminated_string() {
        let err = lex(r#"proc p["%cmd"#).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn error_on_stray_bang() {
        assert!(lex("a ! b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            toks("1 - 2"),
            vec![Tok::Int(1), Tok::Minus, Tok::Int(2), Tok::Eof]
        );
        assert_eq!(toks("->"), vec![Tok::ArrowRight, Tok::Eof]);
    }
}
