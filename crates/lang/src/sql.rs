//! Translation of AIQL queries to semantically equivalent SQL.
//!
//! The paper's conciseness evaluation compares each AIQL query against the
//! SQL an analyst would have to hand-write over the relational schema
//! (`events` + one table per entity kind). The generated text mirrors that
//! style: one `events` alias per event pattern, one entity-table alias per
//! entity variable, all join conditions and constraints woven into a single
//! `WHERE` clause — exactly the query shape whose construction the paper
//! calls "time consuming and error-prone".
//!
//! Anomaly queries need sliding windows and *historical* aggregate access,
//! which SQL expresses with a `generate_series` window driver plus `LAG`
//! window functions over a nested subquery.

use std::fmt::Write as _;

use crate::ast::*;
use crate::rewrite::dependency_to_multievent;

/// Translates any AIQL query to SQL text.
pub fn to_sql(q: &Query) -> String {
    match q {
        Query::Multievent(m) => multievent_to_sql(m),
        Query::Dependency(d) => match dependency_to_multievent(d) {
            Ok(m) => multievent_to_sql(&m),
            Err(e) => format!("-- untranslatable dependency query: {e}"),
        },
        Query::Anomaly(a) => anomaly_to_sql(a),
    }
}

/// Table name for an entity kind.
fn table(kind: EntityKindKw) -> &'static str {
    match kind {
        EntityKindKw::Proc => "processes",
        EntityKindKw::File => "files",
        EntityKindKw::Ip => "netconns",
    }
}

/// Column for the kind's default attribute.
fn default_col(kind: EntityKindKw) -> &'static str {
    match kind {
        EntityKindKw::Proc => "exe_name",
        EntityKindKw::File => "name",
        EntityKindKw::Ip => "dst_ip",
    }
}

fn sql_literal(lit: &Literal) -> String {
    match lit {
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Int(i) => i.to_string(),
        Literal::Float(x) => format!("{x:?}"),
    }
}

fn cmp_sql(op: CmpOp, value: &Literal) -> (String, String) {
    // String equality with wildcards becomes LIKE.
    let uses_like = matches!((op, value), (CmpOp::Eq, Literal::Str(s)) if s.contains('%'));
    let op_text = if uses_like {
        "LIKE".to_string()
    } else {
        match op {
            CmpOp::Eq => "=".to_string(),
            CmpOp::Ne => "<>".to_string(),
            CmpOp::Lt => "<".to_string(),
            CmpOp::Le => "<=".to_string(),
            CmpOp::Gt => ">".to_string(),
            CmpOp::Ge => ">=".to_string(),
        }
    };
    (op_text, sql_literal(value))
}

/// Collects the per-variable constraints and table aliases of a query.
struct SqlCtx {
    /// (variable, kind) in first-seen order.
    vars: Vec<(String, EntityKindKw)>,
}

impl SqlCtx {
    fn from_patterns(patterns: &[EventPattern]) -> Self {
        let mut vars: Vec<(String, EntityKindKw)> = Vec::new();
        let mut see = |d: &EntityDecl| {
            if !vars.iter().any(|(v, _)| v == &d.var) {
                vars.push((d.var.clone(), d.kind));
            }
        };
        for p in patterns {
            see(&p.subject);
            see(&p.object);
        }
        SqlCtx { vars }
    }

    fn kind_of(&self, var: &str) -> Option<EntityKindKw> {
        self.vars.iter().find(|(v, _)| v == var).map(|(_, k)| *k)
    }
}

fn op_predicate(evt: &str, ops: &[String]) -> String {
    if ops.len() == 1 {
        format!("{evt}.optype = '{}'", ops[0])
    } else {
        let list: Vec<String> = ops.iter().map(|o| format!("'{o}'")).collect();
        format!("{evt}.optype IN ({})", list.join(", "))
    }
}

fn decl_predicates(ctx: &SqlCtx, decl: &EntityDecl, out: &mut Vec<String>) {
    let alias = &decl.var;
    for c in &decl.constraints {
        match c {
            DeclConstraint::Default(lit) => {
                let (op, v) = cmp_sql(CmpOp::Eq, lit);
                out.push(format!(
                    "{alias}.{} {op} {v}",
                    default_col(ctx.kind_of(alias).unwrap_or(decl.kind))
                ));
            }
            DeclConstraint::Attr(a) => {
                let (op, v) = cmp_sql(a.op, &a.value);
                out.push(format!("{alias}.{} {op} {v}", normalize_attr(&a.attr)));
            }
        }
    }
}

fn normalize_attr(attr: &str) -> String {
    match attr {
        "dstip" => "dst_ip".to_string(),
        "srcip" => "src_ip".to_string(),
        "dstport" => "dst_port".to_string(),
        "srcport" => "src_port".to_string(),
        other => other.to_string(),
    }
}

fn globals_predicates(globals: &Globals, evt: &str, out: &mut Vec<String>) {
    if let Some(at) = &globals.at {
        out.push(format!("{evt}.start_time >= DATE '{}'", at.start));
        out.push(format!(
            "{evt}.start_time < DATE '{}' + INTERVAL '1 day'",
            at.end.as_deref().unwrap_or(&at.start)
        ));
    }
    for c in &globals.constraints {
        let (op, v) = cmp_sql(c.op, &c.value);
        out.push(format!("{evt}.{} {op} {v}", normalize_attr(&c.attr)));
    }
}

fn expr_to_sql(e: &Expr, ctx: Option<&SqlCtx>) -> String {
    match e {
        Expr::Literal(l) => sql_literal(l),
        Expr::Ref { var, attr } => {
            let col = match attr {
                Some(a) => normalize_attr(a),
                None => ctx
                    .and_then(|c| c.kind_of(var))
                    .map(|k| default_col(k).to_string())
                    .unwrap_or_else(|| "value".to_string()),
            };
            format!("{var}.{col}")
        }
        Expr::Agg { func, arg } => {
            format!("{}({})", func.name().to_uppercase(), expr_to_sql(arg, ctx))
        }
        Expr::History { name, lag } => {
            if *lag == 0 {
                name.clone()
            } else {
                format!("{name}_lag{lag}")
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Ne => "<>",
                other => other.symbol(),
            };
            format!(
                "({} {} {})",
                expr_to_sql(lhs, ctx),
                o,
                expr_to_sql(rhs, ctx)
            )
        }
        Expr::Neg(inner) => format!("-{}", expr_to_sql(inner, ctx)),
    }
}

fn return_items_sql(ret: &ReturnClause, ctx: &SqlCtx) -> String {
    let items: Vec<String> = ret
        .items
        .iter()
        .map(|i| {
            let body = expr_to_sql(&i.expr, Some(ctx));
            match &i.alias {
                Some(a) => format!("{body} AS {a}"),
                None => body,
            }
        })
        .collect();
    items.join(", ")
}

/// Translates a multievent query.
pub fn multievent_to_sql(m: &MultieventQuery) -> String {
    let ctx = SqlCtx::from_patterns(&m.patterns);
    let mut from: Vec<String> = Vec::new();
    let mut preds: Vec<String> = Vec::new();
    let mut evt_names: Vec<String> = Vec::new();
    for (i, p) in m.patterns.iter().enumerate() {
        let evt = p.name.clone().unwrap_or_else(|| format!("evt{}", i + 1));
        from.push(format!("events {evt}"));
        preds.push(op_predicate(&evt, &p.ops));
        preds.push(format!("{evt}.subject_id = {}.id", p.subject.var));
        preds.push(format!("{evt}.object_id = {}.id", p.object.var));
        globals_predicates(&m.globals, &evt, &mut preds);
        evt_names.push(evt);
    }
    for (var, kind) in &ctx.vars {
        from.push(format!("{} {var}", table(*kind)));
    }
    // Entity constraints (each declaration site contributes its own).
    for p in &m.patterns {
        decl_predicates(&ctx, &p.subject, &mut preds);
        decl_predicates(&ctx, &p.object, &mut preds);
    }
    // Temporal relationships.
    for t in &m.temporal {
        match &t.op {
            TemporalOp::Before(bound) => {
                preds.push(format!("{}.end_time <= {}.start_time", t.left, t.right));
                if let Some(b) = bound {
                    preds.push(format!(
                        "{}.start_time - {}.end_time <= INTERVAL '{}'",
                        t.right, t.left, b
                    ));
                }
            }
            TemporalOp::After(bound) => {
                preds.push(format!("{}.start_time >= {}.end_time", t.left, t.right));
                if let Some(b) = bound {
                    preds.push(format!(
                        "{}.start_time - {}.end_time <= INTERVAL '{}'",
                        t.left, t.right, b
                    ));
                }
            }
        }
    }
    let mut sql = String::new();
    let _ = write!(
        sql,
        "SELECT {}{}",
        if m.ret.distinct { "DISTINCT " } else { "" },
        return_items_sql(&m.ret, &ctx)
    );
    let _ = write!(sql, "\nFROM {}", from.join(", "));
    if !preds.is_empty() {
        let _ = write!(sql, "\nWHERE {}", preds.join("\n  AND "));
    }
    if !m.group_by.is_empty() {
        let keys: Vec<String> = m
            .group_by
            .iter()
            .map(|e| expr_to_sql(e, Some(&ctx)))
            .collect();
        let _ = write!(sql, "\nGROUP BY {}", keys.join(", "));
    }
    if let Some(h) = &m.having {
        let _ = write!(sql, "\nHAVING {}", expr_to_sql(h, Some(&ctx)));
    }
    if !m.order_by.is_empty() {
        let keys: Vec<String> = m
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{}{}",
                    expr_to_sql(&o.expr, Some(&ctx)),
                    match o.dir {
                        SortDir::Asc => "",
                        SortDir::Desc => " DESC",
                    }
                )
            })
            .collect();
        let _ = write!(sql, "\nORDER BY {}", keys.join(", "));
    }
    if let Some(l) = m.limit {
        let _ = write!(sql, "\nLIMIT {l}");
    }
    sql.push(';');
    sql
}

/// Translates an anomaly query (sliding windows via `generate_series`,
/// historical aggregate access via `LAG` window functions).
pub fn anomaly_to_sql(a: &AnomalyQuery) -> String {
    let ctx = SqlCtx::from_patterns(&a.patterns);
    let w = a.globals.window.expect("anomaly query has a window spec");
    let mut preds: Vec<String> = Vec::new();
    let mut from: Vec<String> =
        vec!["generate_series(t_start, t_end, INTERVAL 'step') AS w(window_start)".to_string()];
    for (i, p) in a.patterns.iter().enumerate() {
        let evt = p.name.clone().unwrap_or_else(|| format!("evt{}", i + 1));
        from.push(format!("events {evt}"));
        preds.push(op_predicate(&evt, &p.ops));
        preds.push(format!("{evt}.subject_id = {}.id", p.subject.var));
        preds.push(format!("{evt}.object_id = {}.id", p.object.var));
        preds.push(format!("{evt}.start_time >= w.window_start"));
        preds.push(format!(
            "{evt}.start_time < w.window_start + INTERVAL '{}'",
            w.length
        ));
        globals_predicates(&a.globals, &evt, &mut preds);
        decl_predicates(&ctx, &p.subject, &mut preds);
        decl_predicates(&ctx, &p.object, &mut preds);
    }
    for (var, kind) in &ctx.vars {
        from.push(format!("{} {var}", table(*kind)));
    }
    let mut group_cols: Vec<String> = a
        .group_by
        .iter()
        .map(|e| expr_to_sql(e, Some(&ctx)))
        .collect();
    group_cols.push("w.window_start".to_string());

    // Inner query: per-window aggregates.
    let mut inner = String::new();
    let _ = write!(
        inner,
        "SELECT {}, {}",
        group_cols.join(", "),
        return_items_sql(&a.ret, &ctx)
    );
    let _ = write!(inner, "\n  FROM {}", from.join(", "));
    let _ = write!(inner, "\n  WHERE {}", preds.join("\n    AND "));
    let _ = write!(inner, "\n  GROUP BY {}", group_cols.join(", "));

    // Middle query: LAG columns for every history lag used in HAVING.
    let mut lags: Vec<(String, u32)> = Vec::new();
    if let Some(h) = &a.having {
        h.visit(&mut |e| {
            if let Expr::History { name, lag } = e {
                if *lag > 0 && !lags.contains(&(name.clone(), *lag)) {
                    lags.push((name.clone(), *lag));
                }
            }
        });
    }
    let mut sql = String::new();
    if lags.is_empty() {
        sql.push_str(&inner);
        if let Some(h) = &a.having {
            let _ = write!(sql, "\nHAVING {}", expr_to_sql(h, Some(&ctx)));
        }
    } else {
        let lag_cols: Vec<String> = lags
            .iter()
            .map(|(name, lag)| {
                format!(
                    "LAG({name}, {lag}) OVER (PARTITION BY {} ORDER BY window_start) AS {name}_lag{lag}",
                    a.group_by
                        .iter()
                        .map(|e| expr_to_sql(e, Some(&ctx)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect();
        let _ = write!(
            sql,
            "SELECT * FROM (\n  SELECT g.*, {}\n  FROM (\n  {}\n  ) g\n) h",
            lag_cols.join(",\n         "),
            inner.replace('\n', "\n  ")
        );
        if let Some(h) = &a.having {
            let _ = write!(sql, "\nWHERE {}", expr_to_sql(h, Some(&ctx)));
        }
    }
    sql.push(';');
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn multievent_sql_has_one_events_alias_per_pattern() {
        let q = parse_query(
            r#"(at "03/19/2018") agentid = 5
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
               with evt1 before evt2
               return distinct p1, p2, f1"#,
        )
        .unwrap();
        let sql = to_sql(&q);
        assert!(sql.contains("events evt1"));
        assert!(sql.contains("events evt2"));
        assert!(sql.contains("processes p1"));
        assert!(sql.contains("files f1"));
        assert!(sql.contains("p1.exe_name LIKE '%cmd.exe'"));
        assert!(sql.contains("evt1.end_time <= evt2.start_time"));
        assert!(sql.contains("SELECT DISTINCT"));
        assert!(sql.contains("evt1.agentid = 5"));
    }

    #[test]
    fn shared_variable_joins_through_one_alias() {
        let q = parse_query(
            r#"proc p3 write file f1["%backup1.dmp"] as evt2
               proc p4 read file f1 as evt3
               return f1"#,
        )
        .unwrap();
        let sql = to_sql(&q);
        // f1 appears once in FROM; both events join to it.
        assert_eq!(sql.matches("files f1").count(), 1);
        assert!(sql.contains("evt2.object_id = f1.id"));
        assert!(sql.contains("evt3.object_id = f1.id"));
    }

    #[test]
    fn op_alternatives_become_in_list() {
        let q = parse_query("proc p read || write ip i as e return p").unwrap();
        let sql = to_sql(&q);
        assert!(sql.contains("e.optype IN ('read', 'write')"));
    }

    #[test]
    fn at_range_translates_to_date_bounds() {
        let q =
            parse_query(r#"(at "03/19/2018" to "03/21/2018") proc p read file f as e return p"#)
                .unwrap();
        let sql = to_sql(&q);
        assert!(sql.contains("e.start_time >= DATE '03/19/2018'"));
        assert!(sql.contains("e.start_time < DATE '03/21/2018' + INTERVAL '1 day'"));
    }

    #[test]
    fn dependency_sql_goes_through_rewrite() {
        let q = parse_query(
            r#"forward: proc p1["%cp%"] ->[write] file f1["%x%"] <-[read] proc p2
               return p1, p2"#,
        )
        .unwrap();
        let sql = to_sql(&q);
        assert!(sql.contains("events dep_evt1"));
        assert!(sql.contains("dep_evt1.end_time <= dep_evt2.start_time"));
    }

    #[test]
    fn anomaly_sql_uses_lag_window_functions() {
        let q = parse_query(
            r#"agentid = 5 window = 1 min, step = 10 sec
               proc p write ip i[dstip = "10.0.4.129"] as evt
               return p, avg(evt.amount) as amt
               group by p
               having amt > 2 * (amt + amt[1] + amt[2]) / 3"#,
        )
        .unwrap();
        let sql = to_sql(&q);
        assert!(sql.contains("generate_series"));
        assert!(sql.contains("LAG(amt, 1)"));
        assert!(sql.contains("LAG(amt, 2)"));
        assert!(sql.contains("AVG(evt.amount) AS amt"));
        assert!(sql.contains("amt_lag1"));
    }

    #[test]
    fn sql_is_substantially_longer_than_aiql() {
        // The conciseness claim, in miniature.
        let src = r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
                     proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
                     with evt1 before evt2
                     return distinct p1, p2, f1"#;
        let q = parse_query(src).unwrap();
        let sql = to_sql(&q);
        let aiql_chars = src.chars().filter(|c| !c.is_whitespace()).count();
        let sql_chars = sql.chars().filter(|c| !c.is_whitespace()).count();
        assert!(
            sql_chars as f64 > aiql_chars as f64 * 1.5,
            "sql: {sql_chars} aiql: {aiql_chars}"
        );
    }
}
