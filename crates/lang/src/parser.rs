//! Recursive-descent parser for AIQL.
//!
//! The grammar is deliberately line-oriented in spirit but whitespace
//! insensitive in implementation; clause keywords (`with`, `return`,
//! `group`, `having`, `order`, `limit`) delimit sections. Queries are
//! classified by structure: a `forward:`/`backward:` prefix makes a
//! dependency query; a `window = …` global makes an anomaly query;
//! everything else is a multievent query.

use aiql_model::Duration;

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Span, Tok, Token};

/// Parses a complete AIQL query.
pub fn parse_query(source: &str) -> Result<Query, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let globals = p.parse_globals()?;
    let query = match p.peek_ident() {
        Some("forward") | Some("backward") => Query::Dependency(p.parse_dependency_body(globals)?),
        _ => p.parse_event_body(globals)?,
    };
    p.expect_eof()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_ident(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self
                .err_here(format!("expected {tok}, found {}", self.peek()))
                .with_expected(vec![tok.to_string()]))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err_here(format!("unexpected {} after end of query", self.peek())))
        }
    }

    fn err_here(&self, message: String) -> ParseError {
        ParseError::new(self.peek_span(), message)
    }

    fn any_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected {what}, found {other}"))),
        }
    }

    // ---- globals ---------------------------------------------------------

    fn parse_globals(&mut self) -> Result<Globals, ParseError> {
        let mut globals = Globals::default();
        loop {
            match self.peek() {
                Tok::LParen => {
                    // `(at "mm/dd/yyyy")`
                    self.bump();
                    self.expect_ident("at")?;
                    let date = match self.bump() {
                        Tok::Str(s) => s,
                        other => {
                            return Err(self.err_here(format!(
                                "expected date string after `at`, found {other}"
                            )))
                        }
                    };
                    let end = if self.eat_ident("to") {
                        match self.bump() {
                            Tok::Str(s) => Some(s),
                            other => {
                                return Err(self.err_here(format!(
                                    "expected end date string after `to`, found {other}"
                                )))
                            }
                        }
                    } else {
                        None
                    };
                    self.expect(Tok::RParen)?;
                    if globals.at.is_some() {
                        return Err(self.err_here("duplicate `(at …)` clause".to_string()));
                    }
                    globals.at = Some(AtClause { start: date, end });
                }
                Tok::Ident(id) if id == "window" => {
                    self.bump();
                    self.expect(Tok::Eq)?;
                    let length = self.parse_duration()?;
                    self.expect(Tok::Comma)?;
                    self.expect_ident("step")?;
                    self.expect(Tok::Eq)?;
                    let step = self.parse_duration()?;
                    globals.window = Some(WindowSpec { length, step });
                }
                Tok::Ident(id)
                    if !matches!(id.as_str(), "proc" | "file" | "ip" | "forward" | "backward")
                        && self.peek2_is_cmp() =>
                {
                    let attr = self.any_ident("attribute name")?;
                    let op = self.parse_cmp_op()?;
                    let value = self.parse_literal()?;
                    globals.constraints.push(AttrConstraint { attr, op, value });
                }
                _ => return Ok(globals),
            }
        }
    }

    fn peek2_is_cmp(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1).map(|t| &t.tok),
            Some(Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)
        )
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => {
                return Err(self.err_here(format!("expected comparison operator, found {other}")))
            }
        };
        self.bump();
        Ok(op)
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Literal::Str(s))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Literal::Int(i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Literal::Float(x))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(i) => Ok(Literal::Int(-i)),
                    Tok::Float(x) => Ok(Literal::Float(-x)),
                    other => {
                        Err(self.err_here(format!("expected number after `-`, found {other}")))
                    }
                }
            }
            other => Err(self.err_here(format!("expected literal, found {other}"))),
        }
    }

    fn parse_duration(&mut self) -> Result<Duration, ParseError> {
        let n = match self.bump() {
            Tok::Int(i) => i,
            other => return Err(self.err_here(format!("expected duration count, found {other}"))),
        };
        let unit = self.any_ident("duration unit (us/ms/sec/min/hour/day)")?;
        let d = match unit.as_str() {
            "us" => Duration::from_micros(n),
            "ms" => Duration::from_millis(n),
            "s" | "sec" | "secs" | "second" | "seconds" => Duration::from_secs(n),
            "min" | "mins" | "minute" | "minutes" => Duration::from_mins(n),
            "h" | "hour" | "hours" => Duration::from_hours(n),
            "d" | "day" | "days" => Duration::from_days(n),
            other => return Err(self.err_here(format!("unknown duration unit `{other}`"))),
        };
        Ok(d)
    }

    // ---- entity declarations and event patterns --------------------------

    fn parse_kind_kw(&mut self) -> Result<EntityKindKw, ParseError> {
        let kw = match self.peek_ident() {
            Some("proc") => EntityKindKw::Proc,
            Some("file") => EntityKindKw::File,
            Some("ip") => EntityKindKw::Ip,
            _ => {
                return Err(self
                    .err_here(format!("expected entity kind, found {}", self.peek()))
                    .with_expected(vec!["proc".into(), "file".into(), "ip".into()]))
            }
        };
        self.bump();
        Ok(kw)
    }

    fn parse_entity_decl(&mut self) -> Result<EntityDecl, ParseError> {
        let kind = self.parse_kind_kw()?;
        let var = self.any_ident("entity variable")?;
        let mut constraints = Vec::new();
        if self.eat(&Tok::LBracket) && !self.eat(&Tok::RBracket) {
            loop {
                constraints.push(self.parse_decl_constraint()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
        }
        Ok(EntityDecl {
            kind,
            var,
            constraints,
        })
    }

    fn parse_decl_constraint(&mut self) -> Result<DeclConstraint, ParseError> {
        match self.peek() {
            Tok::Str(_) | Tok::Int(_) | Tok::Float(_) | Tok::Minus => {
                Ok(DeclConstraint::Default(self.parse_literal()?))
            }
            Tok::Ident(_) => {
                let attr = self.any_ident("attribute name")?;
                let op = self.parse_cmp_op()?;
                let value = self.parse_literal()?;
                Ok(DeclConstraint::Attr(AttrConstraint { attr, op, value }))
            }
            other => Err(self.err_here(format!(
                "expected entity constraint (literal or attr = value), found {other}"
            ))),
        }
    }

    fn parse_op_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut ops = vec![self.any_ident("operation")?];
        while self.eat(&Tok::OrOr) {
            ops.push(self.any_ident("operation")?);
        }
        Ok(ops)
    }

    fn parse_event_pattern(&mut self) -> Result<EventPattern, ParseError> {
        let subject = self.parse_entity_decl()?;
        let ops = self.parse_op_list()?;
        let object = self.parse_entity_decl()?;
        let name = if self.eat_ident("as") {
            Some(self.any_ident("event variable")?)
        } else {
            None
        };
        Ok(EventPattern {
            subject,
            ops,
            object,
            name,
        })
    }

    // ---- multievent / anomaly body ---------------------------------------

    fn parse_event_body(&mut self, globals: Globals) -> Result<Query, ParseError> {
        let mut patterns = Vec::new();
        while matches!(self.peek_ident(), Some("proc" | "file" | "ip")) {
            if self.peek_ident() != Some("proc") {
                return Err(
                    self.err_here("event pattern subject must be a process (`proc …`)".to_string())
                );
            }
            patterns.push(self.parse_event_pattern()?);
        }
        if patterns.is_empty() {
            return Err(self.err_here(format!(
                "expected at least one event pattern, found {}",
                self.peek()
            )));
        }
        let mut temporal = Vec::new();
        if self.eat_ident("with") {
            loop {
                temporal.push(self.parse_temporal_relation()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let ret = self.parse_return_clause()?;
        let mut group_by = Vec::new();
        if self.eat_ident("group") {
            self.expect_ident("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_ident("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_ident("order") {
            self.expect_ident("by")?;
            loop {
                let expr = self.parse_expr()?;
                let dir = if self.eat_ident("desc") {
                    SortDir::Desc
                } else {
                    self.eat_ident("asc");
                    SortDir::Asc
                };
                order_by.push(OrderItem { expr, dir });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_ident("limit") {
            match self.bump() {
                Tok::Int(i) if i >= 0 => Some(i as u64),
                other => return Err(self.err_here(format!("expected limit count, found {other}"))),
            }
        } else {
            None
        };

        if globals.window.is_some() {
            if !temporal.is_empty() {
                return Err(self.err_here(
                    "anomaly queries (with a window spec) do not support `with` temporal clauses"
                        .to_string(),
                ));
            }
            if !order_by.is_empty() || limit.is_some() {
                return Err(self
                    .err_here("anomaly queries do not support `order by` / `limit`".to_string()));
            }
            Ok(Query::Anomaly(AnomalyQuery {
                globals,
                patterns,
                ret,
                group_by,
                having,
            }))
        } else {
            Ok(Query::Multievent(MultieventQuery {
                globals,
                patterns,
                temporal,
                ret,
                group_by,
                having,
                order_by,
                limit,
            }))
        }
    }

    fn parse_temporal_relation(&mut self) -> Result<TemporalRelation, ParseError> {
        let left = self.any_ident("event variable")?;
        let op = match self.peek_ident() {
            Some("before") => {
                self.bump();
                TemporalOp::Before(self.parse_optional_bound()?)
            }
            Some("after") => {
                self.bump();
                TemporalOp::After(self.parse_optional_bound()?)
            }
            _ => {
                return Err(self
                    .err_here(format!("expected temporal operator, found {}", self.peek()))
                    .with_expected(vec!["before".into(), "after".into()]))
            }
        };
        let right = self.any_ident("event variable")?;
        Ok(TemporalRelation { left, op, right })
    }

    fn parse_optional_bound(&mut self) -> Result<Option<Duration>, ParseError> {
        if self.eat(&Tok::LBracket) {
            let d = self.parse_duration()?;
            self.expect(Tok::RBracket)?;
            Ok(Some(d))
        } else {
            Ok(None)
        }
    }

    fn parse_return_clause(&mut self) -> Result<ReturnClause, ParseError> {
        self.expect_ident("return")?;
        let distinct = self.eat_ident("distinct");
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.eat_ident("as") {
                Some(self.any_ident("alias")?)
            } else {
                None
            };
            items.push(ReturnItem { expr, alias });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(ReturnClause { distinct, items })
    }

    // ---- dependency body ---------------------------------------------------

    fn parse_dependency_body(&mut self, globals: Globals) -> Result<DependencyQuery, ParseError> {
        let direction = match self.any_ident("direction")?.as_str() {
            "forward" => Direction::Forward,
            "backward" => Direction::Backward,
            other => {
                return Err(
                    self.err_here(format!("expected `forward` or `backward`, found `{other}`"))
                )
            }
        };
        self.expect(Tok::Colon)?;
        let start = self.parse_entity_decl()?;
        let mut edges = Vec::new();
        loop {
            let arrow = match self.peek() {
                Tok::ArrowRight => ArrowDir::Right,
                Tok::ArrowLeft => ArrowDir::Left,
                _ => break,
            };
            self.bump();
            self.expect(Tok::LBracket)?;
            let ops = self.parse_op_list()?;
            self.expect(Tok::RBracket)?;
            let node = self.parse_entity_decl()?;
            edges.push(DepEdge { arrow, ops, node });
        }
        if edges.is_empty() {
            return Err(
                self.err_here("dependency query needs at least one edge (`->[op] …`)".to_string())
            );
        }
        let ret = self.parse_return_clause()?;
        Ok(DependencyQuery {
            globals,
            direction,
            start,
            edges,
            ret,
        })
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_ident("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_ident("and") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            // Fold negation of a numeric literal into the literal itself so
            // `-0.5` roundtrips as one node.
            match self.peek().clone() {
                Tok::Int(i) => {
                    self.bump();
                    Ok(Expr::Literal(Literal::Int(-i)))
                }
                Tok::Float(x) => {
                    self.bump();
                    Ok(Expr::Literal(Literal::Float(-x)))
                }
                _ => Ok(Expr::Neg(Box::new(self.parse_unary()?))),
            }
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Str(_) | Tok::Int(_) | Tok::Float(_) => Ok(Expr::Literal(self.parse_literal()?)),
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                // Aggregate call?
                if let Some(func) = AggFunc::parse(&name) {
                    if self.eat(&Tok::LParen) {
                        let arg = if func == AggFunc::Count && self.eat(&Tok::Star) {
                            Expr::Literal(Literal::Int(1))
                        } else {
                            self.parse_expr()?
                        };
                        self.expect(Tok::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Box::new(arg),
                        });
                    }
                }
                // Attribute reference?
                if self.eat(&Tok::Dot) {
                    let attr = self.any_ident("attribute name")?;
                    return Ok(Expr::Ref {
                        var: name,
                        attr: Some(attr),
                    });
                }
                // Historical aggregate access?
                if self.eat(&Tok::LBracket) {
                    let lag = match self.bump() {
                        Tok::Int(i) if i >= 0 => i as u32,
                        other => {
                            return Err(self.err_here(format!(
                                "expected window lag (non-negative integer), found {other}"
                            )))
                        }
                    };
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::History { name, lag });
                }
                Ok(Expr::Ref {
                    var: name,
                    attr: None,
                })
            }
            other => Err(self.err_here(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Query 1 from the paper: data exfiltration from database server.
    const QUERY1: &str = r#"
(at "03/19/2018") // time window
agentid = 5 // SQL database server
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "10.0.4.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1
"#;

    /// Query 2: forward tracking for malware ramification.
    const QUERY2: &str = r#"
(at "03/19/2018")
forward: proc p1["%/bin/cp%", agentid = 1] ->[write] file f1["/var/www/%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = 2] // tracking across hosts
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2
"#;

    /// Query 3: large data transfer from database server.
    const QUERY3: &str = r#"
(at "03/19/2018")
agentid = 5
window = 1 min, step = 10 sec
proc p write ip i[dstip = "10.0.4.129"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
"#;

    #[test]
    fn parses_paper_query_1() {
        let q = parse_query(QUERY1).unwrap();
        let Query::Multievent(m) = q else {
            panic!("expected multievent");
        };
        assert_eq!(m.globals.at, Some(AtClause::day("03/19/2018")));
        assert_eq!(m.globals.constraints.len(), 1);
        assert_eq!(m.patterns.len(), 4);
        assert_eq!(m.patterns[0].name.as_deref(), Some("evt1"));
        assert_eq!(m.patterns[3].ops, vec!["read", "write"]);
        assert_eq!(m.temporal.len(), 3);
        assert!(m.ret.distinct);
        assert_eq!(m.ret.items.len(), 6);
        // f1 redeclared without constraints in evt3 (implicit join).
        assert_eq!(m.patterns[2].object.var, "f1");
        assert!(m.patterns[2].object.constraints.is_empty());
    }

    #[test]
    fn parses_paper_query_2() {
        let q = parse_query(QUERY2).unwrap();
        let Query::Dependency(d) = q else {
            panic!("expected dependency");
        };
        assert_eq!(d.direction, Direction::Forward);
        assert_eq!(d.start.var, "p1");
        assert_eq!(d.edges.len(), 4);
        assert_eq!(d.edges[0].arrow, ArrowDir::Right);
        assert_eq!(d.edges[0].ops, vec!["write"]);
        assert_eq!(d.edges[1].arrow, ArrowDir::Left);
        assert_eq!(d.edges[1].node.var, "p2");
        assert_eq!(d.ret.items.len(), 5);
    }

    #[test]
    fn parses_paper_query_3() {
        let q = parse_query(QUERY3).unwrap();
        let Query::Anomaly(a) = q else {
            panic!("expected anomaly");
        };
        let w = a.globals.window.unwrap();
        assert_eq!(w.length, Duration::from_mins(1));
        assert_eq!(w.step, Duration::from_secs(10));
        assert_eq!(a.patterns.len(), 1);
        assert_eq!(a.group_by.len(), 1);
        let having = a.having.unwrap();
        // Explicit history accesses carry lags 1 and 2; bare `amt` parses as
        // a plain reference (the analyzer later resolves it to lag 0).
        let mut lags = Vec::new();
        let mut bare_refs = 0;
        having.visit(&mut |e| match e {
            Expr::History { lag, .. } => lags.push(*lag),
            Expr::Ref { var, attr: None } if var == "amt" => bare_refs += 1,
            _ => {}
        });
        lags.sort_unstable();
        assert_eq!(lags, vec![1, 2]);
        assert_eq!(bare_refs, 2);
    }

    #[test]
    fn return_aliases_and_aggregates() {
        let q = parse_query(
            "proc p read file f as e return p, count(e.amount) as n, sum(e.amount) as total group by p",
        )
        .unwrap();
        let Query::Multievent(m) = q else { panic!() };
        assert_eq!(m.ret.items[1].alias.as_deref(), Some("n"));
        assert!(matches!(
            m.ret.items[1].expr,
            Expr::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
        assert_eq!(m.group_by.len(), 1);
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse_query(
            "proc p read file f as e return p, f order by e.amount desc, p asc limit 10",
        )
        .unwrap();
        let Query::Multievent(m) = q else { panic!() };
        assert_eq!(m.order_by.len(), 2);
        assert_eq!(m.order_by[0].dir, SortDir::Desc);
        assert_eq!(m.order_by[1].dir, SortDir::Asc);
        assert_eq!(m.limit, Some(10));
    }

    #[test]
    fn temporal_bound() {
        let q = parse_query(
            "proc p read file f as e1 proc p write ip i as e2 with e1 before[5 min] e2 return p",
        )
        .unwrap();
        let Query::Multievent(m) = q else { panic!() };
        assert_eq!(
            m.temporal[0].op,
            TemporalOp::Before(Some(Duration::from_mins(5)))
        );
    }

    #[test]
    fn count_star() {
        let q = parse_query("proc p read file f as e return p, count(*) as n group by p").unwrap();
        let Query::Multievent(m) = q else { panic!() };
        assert!(matches!(
            m.ret.items[1].expr,
            Expr::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
    }

    #[test]
    fn error_missing_return() {
        let err = parse_query("proc p read file f as e").unwrap_err();
        assert!(err.message.contains("return"), "{err}");
    }

    #[test]
    fn error_subject_not_process() {
        let err = parse_query("file f read file g as e return f").unwrap_err();
        assert!(err.message.contains("process"), "{err}");
    }

    #[test]
    fn error_dependency_without_edges() {
        let err = parse_query("forward: proc p1 return p1").unwrap_err();
        assert!(err.message.contains("edge"), "{err}");
    }

    #[test]
    fn error_anomaly_with_temporal() {
        let err = parse_query(
            "window = 1 min, step = 10 sec proc p read file f as e1 proc p read file g as e2 with e1 before e2 return p",
        )
        .unwrap_err();
        assert!(err.message.contains("anomaly"), "{err}");
    }

    #[test]
    fn error_trailing_garbage() {
        let err = parse_query("proc p read file f as e return p p p").unwrap_err();
        assert!(err.message.contains("unexpected"), "{err}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_query("proc p read file f as e\nreturn p,").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn global_constraints_multiple() {
        let q = parse_query("agentid = 3 agentid != 4 proc p read file f as e return p").unwrap();
        assert_eq!(q.globals().constraints.len(), 2);
        assert_eq!(q.globals().constraints[1].op, CmpOp::Ne);
    }

    #[test]
    fn empty_bracket_list_allowed() {
        let q = parse_query("proc p[] read file f[] as e return p").unwrap();
        let Query::Multievent(m) = q else { panic!() };
        assert!(m.patterns[0].subject.constraints.is_empty());
    }

    #[test]
    fn at_range_parses() {
        let q =
            parse_query(r#"(at "03/19/2018" to "03/21/2018") proc p read file f as e return p"#)
                .unwrap();
        assert_eq!(
            q.globals().at,
            Some(AtClause {
                start: "03/19/2018".into(),
                end: Some("03/21/2018".into()),
            })
        );
    }

    #[test]
    fn at_range_requires_string_end() {
        let err =
            parse_query(r#"(at "03/19/2018" to 42) proc p read file f as e return p"#).unwrap_err();
        assert!(err.message.contains("end date"), "{err}");
    }

    #[test]
    fn at_range_roundtrips_through_pretty() {
        let src = r#"(at "03/19/2018" to "03/21/2018") proc p read file f as e return p"#;
        let q1 = parse_query(src).unwrap();
        let printed = crate::pretty::print_query(&q1);
        assert_eq!(parse_query(&printed).unwrap(), q1);
    }
}
