//! # AIQL — a query system for investigating complex attack behaviors
//!
//! A from-scratch Rust implementation of the AIQL system (Gao et al.,
//! VLDB 2019 demo / USENIX ATC 2018): domain-specific storage for system
//! monitoring data, the Attack Investigation Query Language, and an
//! execution engine with domain-specific optimizations — plus the
//! general-purpose baseline engines and the workload simulator used to
//! reproduce the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use aiql::{AiqlSystem, RawEvent, EntitySpec};
//! use aiql::model::{AgentId, Operation, Timestamp};
//!
//! let mut system = AiqlSystem::new();
//! // Ingest observations from your data collection agents.
//! system.ingest(&[RawEvent::instant(
//!     AgentId(1),
//!     Operation::Write,
//!     EntitySpec::process(1200, "C:\\MSSQL\\sqlservr.exe", "mssql"),
//!     EntitySpec::file("C:\\dumps\\backup1.dmp", "mssql"),
//!     Timestamp::from_date(2018, 3, 19),
//!     4096,
//! )]);
//! // Investigate with AIQL.
//! let table = system
//!     .query(r#"proc p write file f["%backup1.dmp"] as evt return p, f"#)
//!     .unwrap();
//! assert_eq!(table.rows.len(), 1);
//! println!("{}", system.render(&table));
//! ```
//!
//! The crates compose as in the paper's architecture (Figure 1): data
//! collection feeds the optimized storage ([`storage`]); the language
//! parser ([`lang`]) turns AIQL text into multievent / dependency / anomaly
//! queries; and the engine ([`engine`]) schedules per-pattern data queries
//! with pruning-power prioritization and partition parallelism. The
//! [`baseline`] engines (PostgreSQL-like, Neo4j-like) and the [`sim`]
//! workloads exist to regenerate the evaluation figures.

pub use aiql_baseline as baseline;
pub use aiql_engine as engine;
pub use aiql_lang as lang;
pub use aiql_model as model;
pub use aiql_sim as sim;
pub use aiql_storage as storage;

pub use aiql_engine::{Engine, EngineConfig, EngineError, ResultTable};
pub use aiql_lang::{parse_query, Query};
pub use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};

use std::path::Path;

/// The assembled AIQL system: optimized store + query engine, with
/// persistence hooks. This is the deployment surface a security team would
/// embed (the paper fronts it with a web UI; the `repl` example plays that
/// role here).
#[derive(Debug, Default)]
pub struct AiqlSystem {
    store: EventStore,
    engine: Engine,
}

impl AiqlSystem {
    /// Creates a system with default storage and engine configurations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a system with explicit configurations.
    pub fn with_config(store_config: StoreConfig, engine_config: EngineConfig) -> Self {
        AiqlSystem {
            store: EventStore::new(store_config),
            engine: Engine::new(engine_config),
        }
    }

    /// Ingests a batch of raw observations (committed at the end).
    pub fn ingest(&mut self, raws: &[RawEvent]) {
        self.store.ingest_all(raws);
    }

    /// Parses and executes an AIQL query.
    pub fn query(&self, source: &str) -> Result<ResultTable, EngineError> {
        self.engine.execute_text(&self.store, source)
    }

    /// Checks a query's syntax and semantics without executing it, powering
    /// editor integration (the web UI's syntax-checking feature).
    pub fn check(&self, source: &str) -> Result<Query, EngineError> {
        let q = parse_query(source)?;
        match &q {
            Query::Multievent(m) => {
                aiql_engine::analyze::analyze_multievent(m, &self.store)?;
            }
            Query::Dependency(d) => {
                let m = aiql_lang::dependency_to_multievent(d)?;
                aiql_engine::analyze::analyze_multievent(&m, &self.store)?;
            }
            Query::Anomaly(a) => {
                aiql_engine::analyze::analyze_anomaly(a, &self.store)?;
            }
        }
        Ok(q)
    }

    /// Renders a result table against this system's string dictionary.
    pub fn render(&self, table: &ResultTable) -> String {
        table.render(self.store.interner())
    }

    /// Explains how a query would execute (scheduling order, selectivity
    /// estimates, partition fan-out) without running it.
    pub fn explain(&self, source: &str) -> Result<engine::QueryPlan, EngineError> {
        let q = parse_query(source)?;
        engine::explain(&self.store, &q, self.engine.config())
    }

    /// Read access to the store.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Mutable access to the store.
    pub fn store_mut(&mut self) -> &mut EventStore {
        &mut self.store
    }

    /// Saves a binary snapshot of the store.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), storage::WalError> {
        storage::snapshot::save(&self.store, path)
    }

    /// Loads a system from a snapshot.
    pub fn load_snapshot(path: &Path) -> Result<Self, storage::WalError> {
        Ok(AiqlSystem {
            store: storage::snapshot::load(path)?,
            engine: Engine::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{AgentId, Operation, Timestamp};

    fn sample_system() -> AiqlSystem {
        let mut sys = AiqlSystem::new();
        sys.ingest(&[
            RawEvent::instant(
                AgentId(1),
                Operation::Start,
                EntitySpec::process(1, "C:\\Windows\\System32\\cmd.exe", "admin"),
                EntitySpec::process(2, "C:\\MSSQL\\osql.exe", "admin"),
                Timestamp::from_secs(100),
                0,
            ),
            RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(3, "C:\\MSSQL\\sqlservr.exe", "mssql"),
                EntitySpec::file("C:\\dumps\\backup1.dmp", "mssql"),
                Timestamp::from_secs(200),
                1 << 20,
            ),
        ]);
        sys
    }

    #[test]
    fn end_to_end_query() {
        let sys = sample_system();
        let t = sys
            .query(r#"proc p1["%cmd.exe"] start proc p2 as evt return p1, p2"#)
            .unwrap();
        assert_eq!(t.rows.len(), 1);
        let rendered = sys.render(&t);
        assert!(rendered.contains("osql.exe"));
    }

    #[test]
    fn check_accepts_valid_rejects_invalid() {
        let sys = sample_system();
        assert!(sys.check("proc p read file f as e return p").is_ok());
        assert!(sys.check("proc p read file f as e return qqq").is_err());
        assert!(sys.check("proc p frobnicate file f as e return p").is_err());
    }

    #[test]
    fn explain_via_facade() {
        let sys = sample_system();
        let plan = sys
            .explain(r#"proc p1["%cmd.exe"] start proc p2 as evt return p1"#)
            .unwrap();
        assert_eq!(plan.kind, "multievent");
        assert_eq!(plan.patterns.len(), 1);
        assert!(sys.explain("proc p bogus file f as e return p").is_err());
    }

    #[test]
    fn snapshot_roundtrip_via_facade() {
        let sys = sample_system();
        let mut path = std::env::temp_dir();
        path.push(format!("aiql-facade-snap-{}", std::process::id()));
        sys.save_snapshot(&path).unwrap();
        let loaded = AiqlSystem::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let q = r#"proc p write file f["%backup1.dmp"] as evt return p, f"#;
        assert_eq!(
            sys.query(q).unwrap().normalized().rows,
            loaded.query(q).unwrap().normalized().rows
        );
    }
}
