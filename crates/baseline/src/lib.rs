//! # aiql-baseline
//!
//! The comparison systems of the paper's evaluation, re-implemented over
//! the same data model so that the benchmarks compare *query processing
//! strategies* rather than storage formats:
//!
//! * [`RelationalEngine`] — a PostgreSQL-style executor. It receives the
//!   same analyzed query but behaves like a general-purpose engine handed
//!   the big hand-written SQL join: patterns are scanned in **textual
//!   order** with no pruning-power reordering, no binding propagation
//!   between scans, no temporal narrowing, and no partition parallelism.
//!   The `optimized_storage` flag selects between the paper's two
//!   configurations: Figure 4 runs it *with* the optimized storage (indexes
//!   and partitions available to each scan), Figure 5 *without* (every scan
//!   is a full heap scan with per-row predicate evaluation).
//! * [`GraphEngine`] — a Neo4j-style executor: entities are nodes, events
//!   are relationships, and patterns match by backtracking graph traversal.
//!   It expands adjacency lists for bound variables but, lacking hash joins
//!   and posting lists, falls back to full relationship scans whenever a
//!   pattern shares no bound variable, and evaluates every property
//!   predicate per visited edge.
//!
//! Both engines return exactly the same rows as `aiql-engine` (verified by
//! the equivalence test-suite); only their execution strategies differ.

pub mod graph;
pub mod relational;

pub use graph::GraphEngine;
pub use relational::RelationalEngine;
