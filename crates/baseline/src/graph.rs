//! Neo4j-style graph baseline.
//!
//! Entities become nodes and events become relationships; multievent
//! patterns match by backtracking traversal. The engine expands adjacency
//! lists when a pattern touches an already-bound variable, but — like a
//! graph database without hash-join support — it falls back to a full
//! relationship scan whenever a pattern shares no bound variable, and
//! evaluates every property predicate per visited relationship. As the
//! paper observes, this loses badly once attack behaviors need multi-step
//! joins.

use aiql_engine::analyze::{analyze_anomaly, analyze_multievent, AnalyzedMultievent};
use aiql_engine::exec::{residual_ok, Tuple};
use aiql_engine::{EngineError, ResultTable};
use aiql_lang::{parse_query, Query, TemporalOp};
use aiql_model::{Event, EventId};
use aiql_storage::{EventFilter, EventStore};

/// An adjacency-list property graph over a store's entities and events.
#[derive(Debug)]
pub struct GraphEngine {
    /// Outgoing relationships per entity (indices into `edges`).
    out: Vec<Vec<u32>>,
    /// Incoming relationships per entity.
    incoming: Vec<Vec<u32>>,
    /// All relationships (events).
    edges: Vec<Event>,
    /// Intermediate result cap.
    max_intermediate: usize,
}

impl GraphEngine {
    /// Builds the property graph from a store (Neo4j's import step).
    pub fn build(store: &EventStore) -> Self {
        let n = store.entities().len();
        let mut g = GraphEngine {
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
            edges: Vec::new(),
            max_intermediate: 4_000_000,
        };
        store.for_each_event(&mut |e| {
            let idx = g.edges.len() as u32;
            g.edges.push(*e);
            g.out[e.subject.index()].push(idx);
            g.incoming[e.object.index()].push(idx);
        });
        g
    }

    /// Number of relationships in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Parses and executes AIQL text with graph-traversal semantics.
    pub fn execute_text(
        &self,
        store: &EventStore,
        source: &str,
    ) -> Result<ResultTable, EngineError> {
        let q = parse_query(source)?;
        self.execute(store, &q)
    }

    /// Executes a parsed query.
    pub fn execute(&self, store: &EventStore, query: &Query) -> Result<ResultTable, EngineError> {
        match query {
            Query::Multievent(m) => {
                let a = analyze_multievent(m, store)?;
                let tuples = self.match_tuples(store, &a);
                aiql_engine::exec::project(store, &a, &tuples)
            }
            Query::Dependency(d) => {
                let m = aiql_lang::dependency_to_multievent(d)?;
                self.execute(store, &Query::Multievent(m))
            }
            Query::Anomaly(anom) => {
                let a = analyze_anomaly(anom, store)?;
                let tuples = self.match_tuples(store, &a.base);
                aiql_engine::anomaly::run_anomaly_over_tuples_naive(store, &a, tuples, false)
            }
        }
    }

    /// Backtracking pattern matcher in source order.
    ///
    /// Structural (shared-variable) consistency prunes during traversal,
    /// but cross-relationship *value* predicates — the temporal relations —
    /// are evaluated in a filter over the completed matches, the way the
    /// era's Cypher planner places `WHERE e1.end_time <= e2.start_time`
    /// above the Expand operators. This is precisely why multi-step
    /// behaviors explode on the graph engine.
    fn match_tuples(&self, store: &EventStore, a: &AnalyzedMultievent) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut tuple = Tuple {
            events: vec![None; a.patterns.len()],
            vars: vec![None; a.vars.len()],
        };
        self.backtrack(store, a, 0, &mut tuple, &mut out);
        out.retain(|t| temporal_post_filter(a, t));
        out
    }

    fn backtrack(
        &self,
        store: &EventStore,
        a: &AnalyzedMultievent,
        idx: usize,
        tuple: &mut Tuple,
        out: &mut Vec<Tuple>,
    ) {
        if out.len() >= self.max_intermediate {
            return;
        }
        if idx == a.patterns.len() {
            out.push(tuple.clone());
            return;
        }
        let p = &a.patterns[idx];
        // Candidate relationships: adjacency expansion when an endpoint is
        // bound, otherwise a full relationship scan (no join support).
        let candidates: &[u32] = if let Some(id) = tuple.vars[p.subject] {
            &self.out[id.index()]
        } else if let Some(id) = tuple.vars[p.object] {
            &self.incoming[id.index()]
        } else {
            &[]
        };
        let full_scan;
        let candidates: Box<dyn Iterator<Item = &Event>> =
            if tuple.vars[p.subject].is_some() || tuple.vars[p.object].is_some() {
                Box::new(candidates.iter().map(|&i| &self.edges[i as usize]))
            } else {
                full_scan = &self.edges;
                Box::new(full_scan.iter())
            };
        for e in candidates {
            if !self.edge_matches(store, a, idx, e) || !consistent(a, idx, e, tuple) {
                continue;
            }
            let prev_s = tuple.vars[p.subject];
            let prev_o = tuple.vars[p.object];
            tuple.events[idx] = Some(*e);
            tuple.vars[p.subject] = Some(e.subject);
            tuple.vars[p.object] = Some(e.object);
            self.backtrack(store, a, idx + 1, tuple, out);
            tuple.events[idx] = None;
            tuple.vars[p.subject] = prev_s;
            tuple.vars[p.object] = prev_o;
        }
    }

    /// Per-relationship predicate evaluation (type, time, host, endpoint
    /// properties) — no posting lists, every check is per edge.
    fn edge_matches(
        &self,
        store: &EventStore,
        a: &AnalyzedMultievent,
        idx: usize,
        e: &Event,
    ) -> bool {
        let p = &a.patterns[idx];
        if !p.ops.contains(e.op) {
            return false;
        }
        if !a.globals.window.contains(e.start_time) {
            return false;
        }
        if let Some(agents) = &a.globals.agents {
            if !agents.contains(&e.agent) {
                return false;
            }
        }
        if !residual_ok(e, &a.globals.residual) {
            return false;
        }
        for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
            let var = &a.vars[var_idx];
            if var.unsatisfiable {
                return false;
            }
            let entity = store.entities().get(id);
            if entity.kind() != var.kind {
                return false;
            }
            for c in &var.constraints {
                if !store.entities().eval(entity, c) {
                    return false;
                }
            }
        }
        p.subject != p.object || e.subject == e.object
    }
}

/// Structural consistency only: shared variables must bind the same node.
fn consistent(a: &AnalyzedMultievent, idx: usize, e: &Event, tuple: &Tuple) -> bool {
    let p = &a.patterns[idx];
    for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
        if let Some(bound) = tuple.vars[var_idx] {
            if bound != id {
                return false;
            }
        }
    }
    true
}

/// The deferred temporal filter over a complete match.
fn temporal_post_filter(a: &AnalyzedMultievent, tuple: &Tuple) -> bool {
    for rel in &a.temporal {
        let (l, r, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (Some(left_event), Some(right_event)) = (tuple.events[l], tuple.events[r]) else {
            continue;
        };
        if left_event.end_time > right_event.start_time {
            return false;
        }
        if let Some(b) = bound {
            if (right_event.start_time - left_event.end_time) > *b {
                return false;
            }
        }
    }
    true
}

/// Convenience: builds the graph and reports basic shape (used by benches
/// to exclude import cost from query timings).
pub fn import_stats(store: &EventStore) -> (usize, usize) {
    let g = GraphEngine::build(store);
    let nodes = store.entities().len();
    (nodes, g.edge_count())
}

// Quiet the unused-import lint for EventId / EventFilter which are only
// used in tests on some feature combinations.
#[allow(unused)]
fn _type_anchors(_: EventId, _: EventFilter) {}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_engine::{Engine, EngineConfig};
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, RawEvent};

    fn test_store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..150i64 {
            raws.push(RawEvent::instant(
                AgentId((i % 2) as u32),
                match i % 3 {
                    0 => Operation::Write,
                    1 => Operation::Read,
                    _ => Operation::Start,
                },
                EntitySpec::process(100 + (i % 4) as u32, &format!("exe{}.bin", i % 4), "u"),
                match i % 3 {
                    0 | 1 => EntitySpec::file(&format!("/data/f{}", i % 5), "u"),
                    _ => EntitySpec::process(200 + (i % 6) as u32, &format!("child{}", i % 6), "u"),
                },
                Timestamp::from_secs(i * 45),
                (i * 7) as u64,
            ));
        }
        s.ingest_all(&raws);
        s
    }

    #[test]
    fn graph_matches_optimized_engine() {
        let store = test_store();
        let graph = GraphEngine::build(&store);
        let engine = Engine::new(EngineConfig::default());
        for src in [
            r#"proc p["%exe1.bin"] read file f as e return distinct p, f"#,
            r#"proc p1 write file f as e1
               proc p2 read file f as e2
               with e1 before e2
               return distinct p1, p2, f"#,
            r#"proc p0 start proc p1 as e0
               proc p1 write file f as e1
               return distinct p0, p1, f"#,
        ] {
            let fast = engine.execute_text(&store, src).unwrap().normalized();
            let slow = graph.execute_text(&store, src).unwrap().normalized();
            assert_eq!(fast.rows, slow.rows, "query {src}");
        }
    }

    #[test]
    fn graph_builds_expected_shape() {
        let store = test_store();
        let (nodes, edges) = import_stats(&store);
        assert_eq!(nodes, store.entities().len());
        assert_eq!(edges as u64, store.event_count());
    }

    #[test]
    fn graph_handles_dependency_query() {
        let store = test_store();
        let graph = GraphEngine::build(&store);
        let engine = Engine::new(EngineConfig::default());
        let src = r#"forward: proc p1["%exe0.bin"] ->[write] file f1 <-[read] proc p2
                     return p1, p2, f1"#;
        let fast = engine.execute_text(&store, src).unwrap().normalized();
        let slow = graph.execute_text(&store, src).unwrap().normalized();
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn graph_handles_anomaly_query() {
        let store = test_store();
        let graph = GraphEngine::build(&store);
        let engine = Engine::new(EngineConfig::default());
        let src = r#"window = 10 min, step = 5 min
                     proc p write file f as evt
                     return p, count(evt.amount) as n
                     group by p
                     having n >= 1"#;
        let fast = engine.execute_text(&store, src).unwrap().normalized();
        let slow = graph.execute_text(&store, src).unwrap().normalized();
        assert_eq!(fast.rows, slow.rows);
    }
}
