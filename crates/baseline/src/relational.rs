//! PostgreSQL-style relational baseline.

use std::collections::HashMap;

use aiql_engine::analyze::{analyze_anomaly, analyze_multievent, AnalyzedMultievent};
use aiql_engine::exec::Tuple;
use aiql_engine::{EngineError, ResultTable};
use aiql_lang::{parse_query, Query, TemporalOp};
use aiql_model::{EntityId, Event};
use aiql_storage::{EventFilter, EventStore, IdSet};

/// A general-purpose relational executor: one scan per `events` alias in
/// the synthesized SQL, textual join order, hash joins, and no
/// domain-specific scheduling.
#[derive(Debug, Clone)]
pub struct RelationalEngine {
    /// Whether the storage optimizations (indexes, partition pruning) are
    /// available to scans. Figure 4 compares with them; Figure 5 without.
    pub optimized_storage: bool,
    /// Intermediate tuple cap (same guard as the optimized engine).
    pub max_intermediate: usize,
}

impl Default for RelationalEngine {
    fn default() -> Self {
        RelationalEngine {
            optimized_storage: true,
            max_intermediate: 4_000_000,
        }
    }
}

impl RelationalEngine {
    /// Creates a baseline with or without the storage optimizations.
    pub fn new(optimized_storage: bool) -> Self {
        RelationalEngine {
            optimized_storage,
            ..Default::default()
        }
    }

    /// Parses and executes AIQL text (the baseline executes the same
    /// semantics the hand-written SQL would).
    pub fn execute_text(
        &self,
        store: &EventStore,
        source: &str,
    ) -> Result<ResultTable, EngineError> {
        let q = parse_query(source)?;
        self.execute(store, &q)
    }

    /// Executes a parsed query.
    pub fn execute(&self, store: &EventStore, query: &Query) -> Result<ResultTable, EngineError> {
        match query {
            Query::Multievent(m) => {
                let a = analyze_multievent(m, store)?;
                let tuples = self.match_tuples(store, &a)?;
                aiql_engine::exec::project(store, &a, &tuples)
            }
            Query::Dependency(d) => {
                let m = aiql_lang::dependency_to_multievent(d)?;
                self.execute(store, &Query::Multievent(m))
            }
            Query::Anomaly(anom) => {
                let a = analyze_anomaly(anom, store)?;
                // SQL expresses windows with generate_series + LAG; the
                // equivalent processing cost here is a per-pattern scan
                // (without domain pushdown) followed by the same windowed
                // aggregation.
                let tuples = self.match_tuples(store, &a.base)?;
                run_windowed(store, &a, tuples)
            }
        }
    }

    /// Fetches every pattern's candidates in source order (no binding
    /// propagation), then hash-joins them in source order.
    fn match_tuples(
        &self,
        store: &EventStore,
        a: &AnalyzedMultievent,
    ) -> Result<Vec<Tuple>, EngineError> {
        let n = a.patterns.len();
        let mut candidates: Vec<Vec<Event>> = Vec::with_capacity(n);
        for i in 0..n {
            candidates.push(self.fetch_pattern(store, a, i));
        }
        // Hash join in source order.
        let mut tuples: Vec<Tuple> = vec![Tuple {
            events: vec![None; n],
            vars: vec![None; a.vars.len()],
        }];
        for (i, events) in candidates.iter().enumerate() {
            let p = &a.patterns[i];
            let pattern_vars: Vec<usize> = if p.subject == p.object {
                vec![p.subject]
            } else {
                vec![p.subject, p.object]
            };
            let bound_vars: Vec<usize> = pattern_vars
                .iter()
                .copied()
                .filter(|&v| tuples.first().map(|t| t.vars[v].is_some()).unwrap_or(false))
                .collect();
            let mut index: HashMap<Vec<EntityId>, Vec<&Event>> = HashMap::new();
            for e in events {
                if p.subject == p.object && e.subject != e.object {
                    continue;
                }
                let key: Vec<EntityId> = bound_vars
                    .iter()
                    .map(|&v| if v == p.subject { e.subject } else { e.object })
                    .collect();
                index.entry(key).or_default().push(e);
            }
            let mut next = Vec::new();
            'outer: for t in &tuples {
                let key: Vec<EntityId> = bound_vars
                    .iter()
                    .map(|&v| t.vars[v].expect("bound"))
                    .collect();
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                for e in matches {
                    if !temporal_ok(a, i, e, t) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.events[i] = Some(**e);
                    nt.vars[p.subject] = Some(e.subject);
                    nt.vars[p.object] = Some(e.object);
                    next.push(nt);
                    if next.len() >= self.max_intermediate {
                        break 'outer;
                    }
                }
            }
            tuples = next;
            if tuples.is_empty() {
                break;
            }
        }
        Ok(tuples)
    }

    /// One pattern's scan, modeling a SQL engine's hash-join access path:
    /// the (small) entity tables are filtered once into hash sets, then the
    /// `events` alias is scanned and each row probes those sets. What the
    /// baseline deliberately does *not* get is AIQL's domain-specific
    /// pushdown — intersecting the entity id sets with the per-segment
    /// posting lists before touching event rows — because a general-purpose
    /// planner handed one big join has no such operator.
    ///
    /// With `optimized_storage` the events scan still benefits from the
    /// storage layer (partition pruning by time/agent, operation postings),
    /// matching Figure 4's "PostgreSQL w/ our optimized storage"
    /// configuration; without it every pattern is a full heap scan
    /// (Figure 5's configuration).
    fn fetch_pattern(&self, store: &EventStore, a: &AnalyzedMultievent, idx: usize) -> Vec<Event> {
        let p = &a.patterns[idx];
        let residual = &a.globals.residual;
        // Hash-join build side: filtered entity id sets (cheap, dictionary
        // sized). Unconstrained variables probe by kind only.
        let mut sets: [Option<IdSet>; 2] = [None, None];
        for (slot, var_idx) in [(0, p.subject), (1, p.object)] {
            let var = &a.vars[var_idx];
            if var.unsatisfiable {
                return Vec::new();
            }
            if !var.constraints.is_empty() {
                let ids =
                    store
                        .entities()
                        .find(var.kind, a.globals.agents.as_deref(), &var.constraints);
                sets[slot] = Some(IdSet::from_iter(ids));
            }
        }
        let probe = |e: &Event| -> bool {
            if !residual_ok(e, residual) || !kinds_ok(store, a, idx, e) {
                return false;
            }
            if let Some(s) = &sets[0] {
                if !s.contains(e.subject) {
                    return false;
                }
            }
            if let Some(s) = &sets[1] {
                if !s.contains(e.object) {
                    return false;
                }
            }
            true
        };
        let mut out = Vec::new();
        if self.optimized_storage {
            let mut filter = EventFilter::all()
                .with_window(a.globals.window)
                .with_ops(p.ops);
            if let Some(agents) = &a.globals.agents {
                filter = filter.with_agents(agents.clone());
            }
            store.scan(&filter, &mut |e| {
                if probe(e) {
                    out.push(*e);
                }
            });
        } else {
            // Plain relational tables: an ordinary index on the operation
            // column exists (any SQL schema would have one), but none of
            // the domain optimizations — no partition pruning, no zone
            // maps; time/host predicates are verified per candidate row.
            let mut filter = EventFilter::all()
                .with_window(a.globals.window)
                .with_ops(p.ops);
            if let Some(agents) = &a.globals.agents {
                filter = filter.with_agents(agents.clone());
            }
            store.scan_op_indexed(&filter, &mut |e| {
                if probe(e) {
                    out.push(*e);
                }
            });
        }
        out
    }
}

/// Kind check for both endpoints (constraints are applied through the
/// hash-join probe sets; unconstrained variables still pin the kind).
fn kinds_ok(store: &EventStore, a: &AnalyzedMultievent, idx: usize, e: &Event) -> bool {
    let p = &a.patterns[idx];
    store.entities().get(e.subject).kind() == a.vars[p.subject].kind
        && store.entities().get(e.object).kind() == a.vars[p.object].kind
        && (p.subject != p.object || e.subject == e.object)
}

use aiql_engine::exec::residual_ok;

fn temporal_ok(a: &AnalyzedMultievent, i: usize, e: &Event, t: &Tuple) -> bool {
    for rel in &a.temporal {
        let (l, r, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_event, right_event) = if l == i && t.events[r].is_some() {
            (*e, t.events[r].expect("checked"))
        } else if r == i && t.events[l].is_some() {
            (t.events[l].expect("checked"), *e)
        } else {
            continue;
        };
        if left_event.end_time > right_event.start_time {
            return false;
        }
        if let Some(b) = bound {
            if (right_event.start_time - left_event.end_time) > *b {
                return false;
            }
        }
    }
    true
}

/// Windowed aggregation for the baseline's anomaly path: the candidates
/// were fetched without domain pushdown above; the windowing semantics are
/// shared with the engine so both return identical rows.
fn run_windowed(
    store: &EventStore,
    a: &aiql_engine::analyze::AnalyzedAnomaly,
    tuples: Vec<Tuple>,
) -> Result<ResultTable, EngineError> {
    aiql_engine::anomaly::run_anomaly_over_tuples_naive(store, a, tuples, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_engine::{Engine, EngineConfig};
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, RawEvent};

    fn test_store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..200i64 {
            raws.push(RawEvent::instant(
                AgentId((i % 3) as u32),
                if i % 4 == 0 {
                    Operation::Write
                } else {
                    Operation::Read
                },
                EntitySpec::process(100 + (i % 5) as u32, &format!("exe{}.bin", i % 5), "u"),
                EntitySpec::file(&format!("/data/f{}", i % 7), "u"),
                Timestamp::from_secs(i * 30),
                (i * 10) as u64,
            ));
        }
        s.ingest_all(&raws);
        s
    }

    const QUERIES: &[&str] = &[
        r#"proc p["%exe1.bin"] read file f as e return distinct p, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return distinct p1, p2, f"#,
        r#"agentid = 1 proc p read || write file f as e return p, count(e.amount) as n group by p"#,
    ];

    #[test]
    fn relational_matches_optimized_engine() {
        let store = test_store();
        let engine = Engine::new(EngineConfig::default());
        for optimized in [true, false] {
            let baseline = RelationalEngine::new(optimized);
            for src in QUERIES {
                let fast = engine.execute_text(&store, src).unwrap().normalized();
                let slow = baseline.execute_text(&store, src).unwrap().normalized();
                assert_eq!(fast.rows, slow.rows, "query {src} optimized={optimized}");
            }
        }
    }

    #[test]
    fn relational_handles_dependency_queries() {
        let store = test_store();
        let src = r#"forward: proc p1["%exe2.bin"] ->[write] file f1 <-[read] proc p2
                     return p1, p2, f1"#;
        let engine = Engine::new(EngineConfig::default());
        let fast = engine.execute_text(&store, src).unwrap().normalized();
        let slow = RelationalEngine::new(false)
            .execute_text(&store, src)
            .unwrap()
            .normalized();
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn relational_handles_anomaly_queries() {
        let store = test_store();
        let src = r#"window = 10 min, step = 5 min
                     proc p write file f as evt
                     return p, sum(evt.amount) as total
                     group by p
                     having total > 0"#;
        let engine = Engine::new(EngineConfig::default());
        let fast = engine.execute_text(&store, src).unwrap().normalized();
        let slow = RelationalEngine::new(true)
            .execute_text(&store, src)
            .unwrap()
            .normalized();
        assert_eq!(fast.rows, slow.rows);
    }
}
