//! Property-based equivalence of the baseline engines against the
//! optimized engine on random stores and a family of queries — the
//! benchmarks compare execution strategies, so all three must agree on
//! semantics everywhere, not just on the curated catalogs.

use aiql_baseline::{GraphEngine, RelationalEngine};
use aiql_engine::{Engine, EngineConfig};
use aiql_model::{AgentId, Operation, Timestamp};
use aiql_storage::{EntitySpec, EventStore, RawEvent, StoreConfig};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawEvent> {
    (
        0u32..3,
        prop_oneof![
            Just(Operation::Read),
            Just(Operation::Write),
            Just(Operation::Start),
            Just(Operation::Execute),
            Just(Operation::Connect),
            Just(Operation::Delete),
        ],
        0u32..5,
        0u32..6,
        0i64..4_000,
        0u64..5_000,
    )
        .prop_map(|(agent, op, subj, obj, secs, amount)| {
            let subject = EntitySpec::process(100 + subj, &format!("tool{subj}.exe"), "user");
            let object = match op {
                Operation::Start => {
                    EntitySpec::process(200 + obj, &format!("child{obj}.exe"), "user")
                }
                Operation::Connect => EntitySpec::tcp(
                    aiql_model::IpV4::from_octets(10, 0, 0, 1),
                    40_000,
                    aiql_model::IpV4::from_octets(10, 0, 4, 100 + (obj % 4) as u8),
                    443,
                ),
                _ => EntitySpec::file(&format!("/srv/data{obj}.bin"), "user"),
            };
            RawEvent::instant(
                AgentId(agent),
                op,
                subject,
                object,
                Timestamp::from_secs(secs),
                amount,
            )
        })
}

fn queries() -> Vec<&'static str> {
    vec![
        r#"proc p["%tool1.exe"] read || write file f as e return distinct p, f"#,
        r#"proc p1 write file f as e1
           proc p2 read file f as e2
           with e1 before e2
           return distinct p1, p2, f"#,
        r#"agentid = 1
           proc p1 start proc p2 as e1
           proc p2 write file f as e2
           with e1 before[30 min] e2
           return p1, p2, f"#,
        r#"proc p connect ip i[dstip = "10.0.4.101"] as e return distinct p"#,
        r#"proc p delete file f as e return p, count(*) as n group by p having n >= 1"#,
        r#"backward: file f["%data2%"] <-[write] proc p1 <-[start] proc p0 return p0, p1"#,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both relational configurations and the graph engine agree with the
    /// optimized engine on arbitrary data.
    #[test]
    fn all_engines_agree(raws in proptest::collection::vec(arb_raw(), 0..100)) {
        let mut store = EventStore::new(StoreConfig {
            dedup: false,
            ..StoreConfig::default()
        });
        store.ingest_all(&raws);
        let engine = Engine::new(EngineConfig::default());
        let rel_opt = RelationalEngine::new(true);
        let rel_unopt = RelationalEngine::new(false);
        let graph = GraphEngine::build(&store);
        for src in queries() {
            let want = engine.execute_text(&store, src).unwrap().normalized();
            let a = rel_opt.execute_text(&store, src).unwrap().normalized();
            prop_assert_eq!(&want.rows, &a.rows, "relational-opt diverged on {}", src);
            let b = rel_unopt.execute_text(&store, src).unwrap().normalized();
            prop_assert_eq!(&want.rows, &b.rows, "relational-unopt diverged on {}", src);
            let c = graph.execute_text(&store, src).unwrap().normalized();
            prop_assert_eq!(&want.rows, &c.rows, "graph diverged on {}", src);
        }
    }

    /// The graph import preserves cardinalities for arbitrary stores.
    #[test]
    fn graph_import_shape(raws in proptest::collection::vec(arb_raw(), 0..150)) {
        let mut store = EventStore::default();
        store.ingest_all(&raws);
        let graph = GraphEngine::build(&store);
        prop_assert_eq!(graph.edge_count() as u64, store.event_count());
    }
}
