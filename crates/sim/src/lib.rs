//! # aiql-sim
//!
//! Deterministic enterprise workload generation and scripted APT attacks.
//!
//! The paper evaluates AIQL on NEC Labs' 150-host deployment by performing
//! a live APT attack and investigating it over the collected audit data. We
//! cannot replay those logs, so this crate synthesizes the closest
//! equivalent (see DESIGN.md):
//!
//! * [`enterprise`] — role-aware background system activity for N hosts
//!   (workstations, a web server, a database server, a domain controller):
//!   Zipf-distributed process/file popularity, process trees, file I/O, and
//!   network transfers, all from a seeded RNG so every run is reproducible;
//! * [`attack`] — the two scripted APT campaigns: the five-step demo attack
//!   of the paper (§3: initial compromise → malware infection → privilege
//!   escalation → credential dumping → data exfiltration) and the second
//!   case-study attack evaluated in Figure 5;
//! * [`queries`] — the investigation query catalogs: the 19 Figure-4
//!   queries (`a1-1 … a5-5`, including the anomaly query that kicks off the
//!   investigation) and the 26 Figure-5 queries (`c1-1 … c5-7`);
//! * [`scenario`] — glue that assembles background + attack into a loaded
//!   [`aiql_storage::EventStore`] at a configurable scale.

pub mod attack;
pub mod enterprise;
pub mod queries;
pub mod scenario;
pub mod zipf;

pub use queries::{case_study_queries, demo_queries, CatalogQuery};
pub use scenario::{build_store, scenario_case_study, scenario_demo, Scale, Scenario};
