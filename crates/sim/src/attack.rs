//! The scripted APT campaigns.
//!
//! Campaign 1 is the five-step demo attack of §3 of the paper; campaign 2
//! is a second intrusion in the style of the USENIX ATC case study, used by
//! the Figure 5 evaluation. Every artifact name referenced by the
//! investigation query catalogs ([`crate::queries`]) is emitted here.

use aiql_model::{AgentId, Duration, IpV4, Operation, Timestamp};
use aiql_storage::{EntitySpec, RawEvent};

use crate::enterprise::{host_ip, hosts, ATTACKER_IP, C2_IP};

fn proc(pid: u32, exe: &str, user: &str) -> EntitySpec {
    EntitySpec::process(pid, exe, user)
}

fn file(name: &str, owner: &str) -> EntitySpec {
    EntitySpec::file(name, owner)
}

fn conn_to(agent: AgentId, sport: u16, dst: IpV4, dport: u16) -> EntitySpec {
    EntitySpec::tcp(host_ip(agent), sport, dst, dport)
}

fn conn_from(src: IpV4, sport: u16, agent: AgentId, dport: u16) -> EntitySpec {
    EntitySpec::tcp(src, sport, host_ip(agent), dport)
}

struct Emitter {
    t: Timestamp,
    out: Vec<RawEvent>,
}

impl Emitter {
    fn new(day: (i32, u32, u32)) -> Self {
        Emitter {
            t: Timestamp::from_date(day.0, day.1, day.2),
            out: Vec::new(),
        }
    }

    /// Moves the clock to `hh:mm:ss` of the campaign day.
    fn at(&mut self, h: i64, m: i64, s: i64) -> &mut Self {
        let midnight = Timestamp(self.t.micros() - self.t.micros().rem_euclid(86_400_000_000));
        self.t = midnight + Duration::from_secs(h * 3600 + m * 60 + s);
        self
    }

    /// Advances the clock by `secs` seconds.
    fn step(&mut self, secs: i64) -> &mut Self {
        self.t = self.t + Duration::from_secs(secs);
        self
    }

    fn emit(
        &mut self,
        agent: AgentId,
        op: Operation,
        subject: EntitySpec,
        object: EntitySpec,
        amount: u64,
    ) -> &mut Self {
        self.out.push(RawEvent::instant(
            agent, op, subject, object, self.t, amount,
        ));
        self
    }

    /// Emits a cross-host edge: the subject runs on `agent`, the object
    /// entity lives on `object_agent` (dependency-tracking connect edges).
    fn emit_x(
        &mut self,
        agent: AgentId,
        op: Operation,
        subject: EntitySpec,
        object: EntitySpec,
        object_agent: AgentId,
        amount: u64,
    ) -> &mut Self {
        self.out.push(
            RawEvent::instant(agent, op, subject, object, self.t, amount)
                .with_object_agent(object_agent),
        );
        self
    }
}

/// Emits the five-step demo APT (§3): UnrealIRCd exploit → malware
/// infection → privilege escalation (Mimikatz/Kiwi) → credential dumping on
/// the DC (PwDump7/WCE) → database dump exfiltration.
pub fn demo_attack(day: (i32, u32, u32)) -> Vec<RawEvent> {
    let mut e = Emitter::new(day);
    let web = hosts::WEB;
    let client = hosts::CLIENT;
    let dc = hosts::DC;
    let db = hosts::DB;

    let ircd = || proc(310, "/usr/sbin/ircd", "irc");
    let sh = || proc(4100, "/bin/sh", "irc");
    let telnet = || proc(4101, "/usr/bin/telnet", "irc");
    let wget = || proc(4102, "/usr/bin/wget", "irc");
    let sbblv_web = || proc(4105, "/tmp/sbblv.exe", "irc");
    let sbblv_client = || proc(5200, "C:\\Users\\alice\\AppData\\sbblv.exe", "alice");
    let mimikatz = || proc(5201, "C:\\Users\\alice\\AppData\\mimikatz.exe", "alice");
    let kiwi = || proc(5202, "C:\\Users\\alice\\AppData\\kiwi.exe", "alice");
    let sbblv_dc = || proc(6300, "C:\\Windows\\Temp\\sbblv.exe", "Administrator");
    let pwdump = || proc(6301, "C:\\Windows\\Temp\\PwDump7.exe", "Administrator");
    let wce = || proc(6302, "C:\\Windows\\Temp\\WCE.exe", "Administrator");
    let sbblv_db = || proc(7400, "C:\\Windows\\Temp\\sbblv.exe", "dbadmin");
    let cmd_db = || proc(7401, "C:\\Windows\\System32\\cmd.exe", "dbadmin");
    let osql = || proc(7402, "C:\\Program Files\\MSSQL\\osql.exe", "dbadmin");
    let sqlservr = || proc(1200, "C:\\Program Files\\MSSQL\\sqlservr.exe", "mssql");

    // a1 — Initial Compromise (web server, 09:10): the attacker exploits
    // the UnrealIRCd backdoor; ircd accepts the exploit connection, spawns
    // a shell, and the shell opens a telnet channel back to the attacker.
    e.at(9, 10, 0)
        .emit(
            web,
            Operation::Accept,
            ircd(),
            conn_from(ATTACKER_IP, 31337, web, 6667),
            0,
        )
        .step(2)
        .emit(web, Operation::Start, ircd(), sh(), 0)
        .step(3)
        .emit(web, Operation::Start, sh(), telnet(), 0)
        .step(2)
        .emit(
            web,
            Operation::Connect,
            telnet(),
            conn_to(web, 40123, ATTACKER_IP, 23),
            0,
        )
        .step(1)
        .emit(
            web,
            Operation::Write,
            telnet(),
            conn_to(web, 40123, ATTACKER_IP, 23),
            2_048,
        );

    // a2 — Malware Infection (09:40): the shell downloads the malware via
    // wget, marks it executable, runs it; the malware probes the intranet
    // and infects the Windows client (cross-host connect edge).
    e.at(9, 40, 0)
        .emit(web, Operation::Start, sh(), wget(), 0)
        .step(2)
        .emit(
            web,
            Operation::Connect,
            wget(),
            conn_to(web, 40500, ATTACKER_IP, 80),
            0,
        )
        .step(4)
        .emit(
            web,
            Operation::Write,
            wget(),
            file("/tmp/sbblv.exe", "irc"),
            918_528,
        )
        .step(3)
        .emit(
            web,
            Operation::Execute,
            sh(),
            file("/tmp/sbblv.exe", "irc"),
            0,
        )
        .step(1)
        .emit(web, Operation::Start, sh(), sbblv_web(), 0)
        .step(30)
        .emit(
            web,
            Operation::Connect,
            sbblv_web(),
            conn_to(web, 40777, host_ip(client), 445),
            0,
        )
        .step(5)
        // Cross-host tracking edge: the web-side malware reaches the client
        // process that will host the implant.
        .emit_x(
            web,
            Operation::Connect,
            sbblv_web(),
            proc(5002, "C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            client,
            0,
        )
        .step(10)
        .emit(
            client,
            Operation::Write,
            proc(5002, "C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            file("C:\\Users\\alice\\AppData\\sbblv.exe", "alice"),
            918_528,
        )
        .step(5)
        .emit(
            client,
            Operation::Start,
            proc(5002, "C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            sbblv_client(),
            0,
        );

    // a3 — Privilege Escalation (client, 11:00): the implant drops and runs
    // the memory-dumping tools to harvest admin credentials.
    e.at(11, 0, 0)
        .emit(
            client,
            Operation::Write,
            sbblv_client(),
            file("C:\\Users\\alice\\AppData\\mimikatz.exe", "alice"),
            1_204_224,
        )
        .step(4)
        .emit(client, Operation::Start, sbblv_client(), mimikatz(), 0)
        .step(6)
        .emit(
            client,
            Operation::Read,
            mimikatz(),
            file("C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            52_428_800,
        )
        .step(9)
        .emit(
            client,
            Operation::Write,
            mimikatz(),
            file("C:\\Users\\alice\\AppData\\creds.txt", "alice"),
            4_096,
        )
        .step(20)
        .emit(client, Operation::Start, sbblv_client(), kiwi(), 0)
        .step(5)
        .emit(
            client,
            Operation::Read,
            kiwi(),
            file("C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            52_428_800,
        )
        .step(8)
        .emit(
            client,
            Operation::Write,
            kiwi(),
            file("C:\\Users\\alice\\AppData\\creds2.txt", "alice"),
            4_096,
        );

    // a4 — Obtain User Credentials (DC, 13:30): with admin credentials the
    // attacker penetrates the domain controller and dumps all users.
    e.at(13, 30, 0)
        .emit(
            client,
            Operation::Connect,
            sbblv_client(),
            conn_to(client, 41200, host_ip(dc), 445),
            0,
        )
        .step(3)
        .emit_x(
            client,
            Operation::Connect,
            sbblv_client(),
            proc(6000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            dc,
            0,
        )
        .step(6)
        .emit(
            dc,
            Operation::Write,
            proc(6000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            file("C:\\Windows\\Temp\\sbblv.exe", "Administrator"),
            918_528,
        )
        .step(4)
        .emit(
            dc,
            Operation::Start,
            proc(6000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            sbblv_dc(),
            0,
        )
        .step(10)
        .emit(
            dc,
            Operation::Write,
            sbblv_dc(),
            file("C:\\Windows\\Temp\\PwDump7.exe", "Administrator"),
            393_216,
        )
        .step(2)
        .emit(dc, Operation::Start, sbblv_dc(), pwdump(), 0)
        .step(5)
        .emit(
            dc,
            Operation::Read,
            pwdump(),
            file("C:\\Windows\\System32\\config\\SAM", "SYSTEM"),
            262_144,
        )
        .step(4)
        .emit(
            dc,
            Operation::Write,
            pwdump(),
            file("C:\\Windows\\Temp\\hashes.txt", "Administrator"),
            16_384,
        )
        .step(12)
        .emit(dc, Operation::Start, sbblv_dc(), wce(), 0)
        .step(4)
        .emit(
            dc,
            Operation::Read,
            wce(),
            file("C:\\Windows\\System32\\config\\SYSTEM", "SYSTEM"),
            262_144,
        )
        .step(3)
        .emit(
            dc,
            Operation::Write,
            wce(),
            file("C:\\Windows\\Temp\\wce_out.txt", "Administrator"),
            8_192,
        )
        .step(10)
        .emit(
            dc,
            Operation::Write,
            sbblv_dc(),
            conn_to(dc, 41900, ATTACKER_IP, 443),
            32_768,
        );

    // a5 — Data Exfiltration (database server, 15:00): the attacker reaches
    // the database server, dumps the database with OSQL, and the malware
    // ships the dump to the attacker host — the behavior of Query 1.
    e.at(15, 0, 0)
        .emit_x(
            dc,
            Operation::Connect,
            sbblv_dc(),
            proc(7001, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            db,
            0,
        )
        .step(5)
        .emit(
            db,
            Operation::Write,
            proc(7001, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            file("C:\\Windows\\Temp\\sbblv.exe", "dbadmin"),
            918_528,
        )
        .step(3)
        .emit(
            db,
            Operation::Start,
            proc(7001, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            sbblv_db(),
            0,
        )
        .step(30)
        .emit(db, Operation::Start, sbblv_db(), cmd_db(), 0)
        .step(10)
        .emit(db, Operation::Start, cmd_db(), osql(), 0)
        .step(20)
        .emit(
            db,
            Operation::Write,
            osql(),
            conn_to(db, 42000, host_ip(db), 1433),
            1_024,
        )
        .step(40)
        .emit(
            db,
            Operation::Write,
            sqlservr(),
            file("C:\\dumps\\backup1.dmp", "mssql"),
            268_435_456,
        )
        .step(60)
        .emit(
            db,
            Operation::Read,
            sbblv_db(),
            file("C:\\dumps\\backup1.dmp", "mssql"),
            268_435_456,
        )
        .step(10)
        .emit(
            db,
            Operation::Connect,
            sbblv_db(),
            conn_to(db, 42107, ATTACKER_IP, 443),
            0,
        );
    // The exfiltration transfer: a burst of large writes to the attacker IP
    // over ten minutes — the spike the anomaly query (a5-1) detects.
    for i in 0..30 {
        e.step(20).emit(
            db,
            Operation::Write,
            sbblv_db(),
            conn_to(db, 42107, ATTACKER_IP, 443),
            8_388_608 + i * 1_024,
        );
    }
    e.out
}

/// Emits the second APT campaign (the ATC-style case study behind the
/// Figure 5 queries): phishing dropper → C2 staging with persistence →
/// lateral movement → discovery and credential dumping → archive staging
/// and FTP exfiltration.
pub fn case_study_attack(day: (i32, u32, u32)) -> Vec<RawEvent> {
    let mut e = Emitter::new(day);
    let client = hosts::CLIENT;
    let web = hosts::WEB;
    let dc = hosts::DC;

    let outlook = || proc(5400, "C:\\Program Files\\Office\\outlook.exe", "alice");
    let dropper = || {
        proc(
            5401,
            "C:\\Users\\alice\\Downloads\\invoice_dropper.exe",
            "alice",
        )
    };
    let cmd = || proc(5402, "C:\\Windows\\System32\\cmd.exe", "alice");
    let powershell = || proc(5403, "C:\\Windows\\System32\\powershell.exe", "alice");
    let schtasks = || proc(5404, "C:\\Windows\\System32\\schtasks.exe", "alice");
    let payload = || proc(5405, "C:\\Users\\alice\\AppData\\winupdate.exe", "alice");
    let psexec = || proc(5406, "C:\\Users\\alice\\AppData\\psexec.exe", "alice");
    let malsvc = || proc(8100, "C:\\Windows\\Temp\\malsvc.exe", "SYSTEM");
    let whoami = || proc(8101, "C:\\Windows\\System32\\whoami.exe", "SYSTEM");
    let net = || proc(8102, "C:\\Windows\\System32\\net.exe", "SYSTEM");
    let mimikatz2 = || proc(8103, "C:\\Windows\\Temp\\m64.exe", "SYSTEM");
    let rar = || proc(8104, "C:\\Windows\\Temp\\rar.exe", "SYSTEM");
    let ftp = || proc(8105, "C:\\Windows\\System32\\ftp.exe", "SYSTEM");

    // c1 — Delivery (08:55): the phishing attachment lands on disk.
    e.at(8, 55, 0)
        .emit(
            client,
            Operation::Write,
            outlook(),
            file("C:\\Users\\alice\\Downloads\\invoice_dropper.exe", "alice"),
            512_000,
        )
        .step(40)
        .emit(client, Operation::Start, outlook(), dropper(), 0);

    // c2 — Initial compromise & persistence (09:05).
    e.at(9, 5, 0)
        .emit(client, Operation::Start, dropper(), cmd(), 0)
        .step(3)
        .emit(client, Operation::Start, cmd(), powershell(), 0)
        .step(5)
        .emit(
            client,
            Operation::Connect,
            powershell(),
            conn_to(client, 43000, C2_IP, 443),
            0,
        )
        .step(8)
        .emit(
            client,
            Operation::Write,
            powershell(),
            file("C:\\Users\\alice\\AppData\\winupdate.exe", "alice"),
            786_432,
        )
        .step(4)
        .emit(
            client,
            Operation::Read,
            powershell(),
            file("C:\\Users\\alice\\Downloads\\invoice_dropper.exe", "alice"),
            512_000,
        )
        .step(6)
        .emit(client, Operation::Start, cmd(), schtasks(), 0)
        .step(2)
        .emit(
            client,
            Operation::Write,
            schtasks(),
            file("C:\\Windows\\Tasks\\winupdate.job", "SYSTEM"),
            2_048,
        )
        .step(10)
        .emit(client, Operation::Start, powershell(), payload(), 0)
        .step(5)
        .emit(
            client,
            Operation::Write,
            payload(),
            conn_to(client, 43001, C2_IP, 443),
            65_536,
        )
        .step(5)
        .emit(
            client,
            Operation::Delete,
            payload(),
            file("C:\\Users\\alice\\Downloads\\invoice_dropper.exe", "alice"),
            0,
        );

    // c3 — Lateral movement to the web/file server (10:20).
    e.at(10, 20, 0)
        .emit(
            client,
            Operation::Write,
            payload(),
            file("C:\\Users\\alice\\AppData\\psexec.exe", "alice"),
            339_968,
        )
        .step(3)
        .emit(client, Operation::Start, payload(), psexec(), 0)
        .step(4)
        .emit(
            client,
            Operation::Connect,
            psexec(),
            conn_to(client, 43100, host_ip(web), 445),
            0,
        )
        .step(2)
        .emit_x(
            client,
            Operation::Connect,
            psexec(),
            proc(8000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            web,
            0,
        )
        .step(6)
        .emit(
            web,
            Operation::Write,
            proc(8000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            file("C:\\Windows\\Temp\\malsvc.exe", "SYSTEM"),
            466_944,
        )
        .step(3)
        .emit(
            web,
            Operation::Start,
            proc(8000, "C:\\Windows\\System32\\services.exe", "SYSTEM"),
            malsvc(),
            0,
        );

    // c4 — Discovery & credential access on the server and DC (11:40).
    e.at(11, 40, 0)
        .emit(web, Operation::Start, malsvc(), whoami(), 0)
        .step(2)
        .emit(web, Operation::Start, malsvc(), net(), 0)
        .step(4)
        .emit(
            web,
            Operation::Write,
            malsvc(),
            file("C:\\Windows\\Temp\\m64.exe", "SYSTEM"),
            1_204_224,
        )
        .step(3)
        .emit(web, Operation::Start, malsvc(), mimikatz2(), 0)
        .step(5)
        .emit(
            web,
            Operation::Read,
            mimikatz2(),
            file("C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            52_428_800,
        )
        .step(4)
        .emit(
            web,
            Operation::Write,
            mimikatz2(),
            file("C:\\Windows\\Temp\\dump.txt", "SYSTEM"),
            8_192,
        )
        .step(30)
        .emit(
            web,
            Operation::Connect,
            malsvc(),
            conn_to(web, 43500, host_ip(dc), 88),
            0,
        )
        .step(4)
        .emit_x(
            web,
            Operation::Connect,
            malsvc(),
            proc(9000, "C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            dc,
            0,
        )
        .step(6)
        .emit(
            dc,
            Operation::Read,
            proc(9000, "C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            file("C:\\Windows\\NTDS\\ntds.dit", "SYSTEM"),
            134_217_728,
        );

    // c5 — Staging & exfiltration (14:10): sensitive documents are archived
    // and shipped to the C2 over FTP.
    e.at(14, 10, 0).emit(
        web,
        Operation::Write,
        malsvc(),
        file("C:\\Windows\\Temp\\rar.exe", "SYSTEM"),
        589_824,
    );
    for i in 0..8 {
        e.step(5).emit(
            web,
            Operation::Read,
            rar(),
            file(&format!("C:\\Shares\\finance\\report{i}.xlsx",), "SYSTEM"),
            2_097_152,
        );
    }
    e.step(4)
        .emit(
            web,
            Operation::Write,
            rar(),
            file("C:\\Windows\\Temp\\stage.rar", "SYSTEM"),
            16_777_216,
        )
        .step(10)
        .emit(web, Operation::Start, malsvc(), ftp(), 0)
        .step(3)
        .emit(
            web,
            Operation::Read,
            ftp(),
            file("C:\\Windows\\Temp\\stage.rar", "SYSTEM"),
            16_777_216,
        )
        .step(2)
        .emit(
            web,
            Operation::Connect,
            ftp(),
            conn_to(web, 43900, C2_IP, 21),
            0,
        );
    for i in 0..20 {
        e.step(15).emit(
            web,
            Operation::Write,
            ftp(),
            conn_to(web, 43900, C2_IP, 21),
            4_194_304 + i * 512,
        );
    }
    e.step(30)
        .emit(
            web,
            Operation::Delete,
            malsvc(),
            file("C:\\Windows\\Temp\\stage.rar", "SYSTEM"),
            0,
        )
        .step(2)
        .emit(
            web,
            Operation::Delete,
            malsvc(),
            file("C:\\Windows\\Temp\\dump.txt", "SYSTEM"),
            0,
        );

    e.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_attack_emits_query1_artifacts() {
        let raws = demo_attack((2018, 3, 19));
        let has = |pred: &dyn Fn(&RawEvent) -> bool| raws.iter().any(pred);
        assert!(has(
            &|r| matches!(&r.object, EntitySpec::File { name, .. } if name.contains("backup1.dmp"))
        ));
        assert!(has(
            &|r| matches!(&r.subject, EntitySpec::Process { exe_name, .. } if exe_name.contains("osql"))
        ));
        assert!(has(
            &|r| matches!(&r.object, EntitySpec::NetConn { dst_ip, .. } if *dst_ip == ATTACKER_IP)
        ));
        assert!(has(
            &|r| matches!(&r.subject, EntitySpec::Process { exe_name, .. } if exe_name.contains("PwDump7"))
        ));
        assert!(has(
            &|r| matches!(&r.subject, EntitySpec::Process { exe_name, .. } if exe_name.contains("mimikatz"))
        ));
    }

    #[test]
    fn demo_attack_steps_are_temporally_ordered() {
        let raws = demo_attack((2018, 3, 19));
        // The dump write happens before the dump read, which happens before
        // the exfil transfer (Query 1's temporal chain).
        let find = |f: &dyn Fn(&RawEvent) -> bool| {
            raws.iter()
                .find(|r| f(r))
                .expect("event present")
                .start_time
        };
        let dump_write = find(&|r| {
            r.op == Operation::Write
                && matches!(&r.object, EntitySpec::File { name, .. } if name.contains("backup1"))
        });
        let dump_read = find(&|r| {
            r.op == Operation::Read
                && matches!(&r.object, EntitySpec::File { name, .. } if name.contains("backup1"))
        });
        let exfil = find(&|r| {
            r.op == Operation::Write
                && matches!(&r.object, EntitySpec::NetConn { dst_ip, .. } if *dst_ip == ATTACKER_IP)
                && r.amount > 1_000_000
        });
        assert!(dump_write < dump_read);
        assert!(dump_read < exfil);
    }

    #[test]
    fn case_study_emits_catalog_artifacts() {
        let raws = case_study_attack((2018, 4, 2));
        let has = |s: &str| {
            raws.iter().any(|r| {
                matches!(&r.subject, EntitySpec::Process { exe_name, .. } if exe_name.contains(s))
                    || matches!(&r.object, EntitySpec::File { name, .. } if name.contains(s))
            })
        };
        for artifact in [
            "invoice_dropper",
            "winupdate",
            "psexec",
            "malsvc",
            "m64.exe",
            "stage.rar",
            "ftp.exe",
            "schtasks",
        ] {
            assert!(has(artifact), "missing artifact {artifact}");
        }
    }

    #[test]
    fn attacks_are_deterministic() {
        assert_eq!(demo_attack((2018, 3, 19)), demo_attack((2018, 3, 19)));
        assert_eq!(
            case_study_attack((2018, 4, 2)),
            case_study_attack((2018, 4, 2))
        );
    }
}
