//! Zipf-distributed sampling.
//!
//! Real system activity is heavily skewed: a handful of processes and files
//! account for most events. The generator draws subjects and objects from a
//! Zipf distribution (rank-frequency ∝ 1/rank^s) implemented by inverse CDF
//! over precomputed cumulative weights — exact, and fast enough for the
//! population sizes we use (≤ tens of thousands).

use rand::Rng;

/// A Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` items with exponent `s` (s=0 is uniform,
    /// s≈1 is classic Zipf).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize to [0, 1].
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_cover_domain_and_skew() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 far more popular than rank 50.
        assert!(counts[0] > counts[50] * 10);
        // Every sample is in range (no panic) and the tail is reachable.
        assert!(counts[99] > 0);
    }

    #[test]
    fn uniform_when_s_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "uniform sampling skewed: {counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_domain() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(zipf.sample(&mut rng), 0);
    }
}
