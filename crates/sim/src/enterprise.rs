//! Role-aware enterprise background activity.
//!
//! Mirrors the demonstration setup of Figure 2: a Windows client, a Linux
//! web server, a database server, a Windows domain controller, and any
//! number of additional workstations, all monitored by per-host agents.
//! Each host runs a role-specific process population; events (file I/O,
//! process starts, network transfers) are drawn with Zipf-skewed popularity
//! from a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aiql_model::{AgentId, IpV4, Operation, Timestamp};
use aiql_storage::{EntitySpec, RawEvent};

use crate::zipf::Zipf;

/// Well-known agent ids of the demonstration topology.
pub mod hosts {
    use aiql_model::AgentId;
    /// Windows client workstation.
    pub const CLIENT: AgentId = AgentId(0);
    /// Linux web server (UnrealIRCd also runs here in the demo attack).
    pub const WEB: AgentId = AgentId(1);
    /// SQL database server.
    pub const DB: AgentId = AgentId(2);
    /// Windows domain controller.
    pub const DC: AgentId = AgentId(3);
}

/// The attacker's external address — the paper obfuscates it as `XXX.129`.
pub const ATTACKER_IP: IpV4 = IpV4::from_octets(172, 16, 99, 129);

/// Secondary C2 address used by the case-study attack.
pub const C2_IP: IpV4 = IpV4::from_octets(172, 16, 99, 200);

/// Internal address of a host.
pub fn host_ip(agent: AgentId) -> IpV4 {
    IpV4::from_octets(10, 0, 0, 10 + agent.raw() as u8)
}

/// Background generation parameters.
#[derive(Debug, Clone)]
pub struct EnterpriseConfig {
    /// Number of monitored hosts (≥ 4; the first four take the demo roles).
    pub hosts: u32,
    /// Civil date of the simulated day.
    pub day: (i32, u32, u32),
    /// Background events generated per host.
    pub events_per_host: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        EnterpriseConfig {
            hosts: 6,
            day: (2018, 3, 19),
            events_per_host: 2_000,
            seed: 0xA1_91,
        }
    }
}

/// Role-specific process population for a host.
fn process_population(agent: AgentId) -> Vec<(u32, &'static str, &'static str)> {
    let mut procs: Vec<(u32, &'static str, &'static str)> = Vec::new();
    let base: &[(&str, &str)] = if agent == hosts::WEB {
        &[
            ("/usr/sbin/apache2", "www-data"),
            ("/usr/sbin/sshd", "root"),
            ("/usr/sbin/ircd", "irc"),
            ("/usr/bin/python3", "www-data"),
            ("/bin/bash", "admin"),
            ("/usr/sbin/cron", "root"),
            ("/usr/sbin/rsyslogd", "root"),
        ]
    } else if agent == hosts::DB {
        &[
            ("C:\\Program Files\\MSSQL\\sqlservr.exe", "mssql"),
            ("C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\cmd.exe", "dbadmin"),
            ("C:\\Windows\\System32\\services.exe", "SYSTEM"),
            ("C:\\Windows\\explorer.exe", "dbadmin"),
            ("C:\\Program Files\\MSSQL\\sqlagent.exe", "mssql"),
        ]
    } else if agent == hosts::DC {
        &[
            ("C:\\Windows\\System32\\lsass.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\services.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\dns.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\ntds.exe", "SYSTEM"),
        ]
    } else {
        &[
            ("C:\\Windows\\explorer.exe", "alice"),
            ("C:\\Program Files\\Firefox\\firefox.exe", "alice"),
            ("C:\\Windows\\System32\\svchost.exe", "SYSTEM"),
            ("C:\\Windows\\System32\\cmd.exe", "alice"),
            ("C:\\Program Files\\Office\\outlook.exe", "alice"),
            ("C:\\Windows\\System32\\powershell.exe", "alice"),
            ("C:\\Windows\\System32\\services.exe", "SYSTEM"),
        ]
    };
    for (i, (exe, user)) in base.iter().enumerate() {
        procs.push((1000 + agent.raw() * 100 + i as u32, exe, user));
    }
    procs
}

/// Role-specific file population.
fn file_population(agent: AgentId, n: usize) -> Vec<(String, &'static str)> {
    let mut files = Vec::with_capacity(n);
    let (prefix, owner): (&str, &str) = if agent == hosts::WEB {
        ("/var/www/html/page", "www-data")
    } else if agent == hosts::DB {
        ("C:\\MSSQL\\data\\table", "mssql")
    } else if agent == hosts::DC {
        ("C:\\Windows\\NTDS\\log", "SYSTEM")
    } else {
        ("C:\\Users\\alice\\Documents\\doc", "alice")
    };
    for i in 0..n {
        files.push((format!("{prefix}{i}.dat"), owner));
    }
    files
}

/// Generates one day of background activity for all hosts.
pub fn generate_background(cfg: &EnterpriseConfig) -> Vec<RawEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let day_start = Timestamp::from_date(cfg.day.0, cfg.day.1, cfg.day.2);
    let day_micros = 24 * 3600 * 1_000_000i64;
    let mut out = Vec::with_capacity(cfg.hosts as usize * cfg.events_per_host);

    for h in 0..cfg.hosts {
        let agent = AgentId(h);
        let procs = process_population(agent);
        let files = file_population(agent, 40);
        let proc_zipf = Zipf::new(procs.len(), 1.1);
        let file_zipf = Zipf::new(files.len(), 1.0);

        for _ in 0..cfg.events_per_host {
            let t = day_start + aiql_model::Duration(rng.gen_range(0..day_micros));
            let (pid, exe, user) = procs[proc_zipf.sample(&mut rng)];
            let subject = EntitySpec::process(pid, exe, user);
            let roll: f64 = rng.gen();
            let event = if roll < 0.45 {
                // File I/O.
                let (name, owner) = &files[file_zipf.sample(&mut rng)];
                let op = if rng.gen_bool(0.6) {
                    Operation::Read
                } else {
                    Operation::Write
                };
                RawEvent::instant(
                    agent,
                    op,
                    subject,
                    EntitySpec::file(name, owner),
                    t,
                    rng.gen_range(128..65_536),
                )
            } else if roll < 0.6 {
                // Process starts (parent → child within the population).
                let (cpid, cexe, cuser) = procs[proc_zipf.sample(&mut rng)];
                RawEvent::instant(
                    agent,
                    Operation::Start,
                    subject,
                    EntitySpec::process(cpid + 10_000, cexe, cuser),
                    t,
                    0,
                )
            } else if roll < 0.75 {
                // Outbound connection setup.
                let peer = IpV4::from_octets(10, 0, 0, rng.gen_range(10..40));
                RawEvent::instant(
                    agent,
                    Operation::Connect,
                    subject,
                    EntitySpec::tcp(host_ip(agent), rng.gen_range(40_000..65_000), peer, 443),
                    t,
                    0,
                )
            } else {
                // Data transfer over a connection (modest volumes; the
                // exfiltration events of the attack dwarf these).
                let peer = IpV4::from_octets(10, 0, 0, rng.gen_range(10..40));
                let op = if rng.gen_bool(0.5) {
                    Operation::Write
                } else {
                    Operation::Read
                };
                RawEvent::instant(
                    agent,
                    op,
                    subject,
                    EntitySpec::tcp(host_ip(agent), rng.gen_range(40_000..65_000), peer, 443),
                    t,
                    rng.gen_range(256..32_768),
                )
            };
            out.push(event);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = EnterpriseConfig {
            events_per_host: 200,
            ..Default::default()
        };
        let a = generate_background(&cfg);
        let b = generate_background(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6 * 200);
    }

    #[test]
    fn all_hosts_emit_events() {
        let cfg = EnterpriseConfig {
            hosts: 5,
            events_per_host: 100,
            ..Default::default()
        };
        let raws = generate_background(&cfg);
        for h in 0..5 {
            assert!(
                raws.iter().any(|r| r.agent == AgentId(h)),
                "host {h} silent"
            );
        }
    }

    #[test]
    fn events_fall_within_the_day() {
        let cfg = EnterpriseConfig {
            events_per_host: 300,
            ..Default::default()
        };
        let day = aiql_model::TimeWindow::day(2018, 3, 19);
        for r in generate_background(&cfg) {
            assert!(day.contains(r.start_time));
        }
    }

    #[test]
    fn role_processes_differ_per_host() {
        let web = process_population(hosts::WEB);
        let db = process_population(hosts::DB);
        assert!(web.iter().any(|(_, exe, _)| exe.contains("ircd")));
        assert!(db.iter().any(|(_, exe, _)| exe.contains("sqlservr")));
        assert!(!db.iter().any(|(_, exe, _)| exe.contains("ircd")));
    }

    #[test]
    fn background_never_touches_attacker_ip() {
        let cfg = EnterpriseConfig {
            events_per_host: 500,
            ..Default::default()
        };
        for r in generate_background(&cfg) {
            if let EntitySpec::NetConn { dst_ip, .. } = &r.object {
                assert_ne!(*dst_ip, ATTACKER_IP);
            }
        }
    }
}
