//! Scenario assembly: background noise + attack traces → a loaded store.

use aiql_storage::{EventStore, RawEvent, StoreConfig};

use crate::attack;
use crate::enterprise::{generate_background, EnterpriseConfig};

/// Dataset scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of monitored hosts.
    pub hosts: u32,
    /// Background events per host.
    pub events_per_host: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            hosts: 6,
            events_per_host: 2_000,
            seed: 0xA1_91,
        }
    }
}

impl Scale {
    /// A small scale for unit/integration tests.
    pub fn test() -> Self {
        Scale {
            hosts: 4,
            events_per_host: 500,
            seed: 7,
        }
    }

    /// The benchmark scale (hundreds of thousands of events — a laptop
    /// stand-in for the paper's 257M-event deployment).
    pub fn bench() -> Self {
        Scale {
            hosts: 8,
            events_per_host: 25_000,
            seed: 0xA1_91,
        }
    }
}

/// A generated dataset: raw observations plus its simulated day.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// The simulated civil day.
    pub day: (i32, u32, u32),
    /// All raw observations (background + attack), time-sorted.
    pub raws: Vec<RawEvent>,
}

fn assemble(
    name: &'static str,
    day: (i32, u32, u32),
    scale: Scale,
    attack: Vec<RawEvent>,
) -> Scenario {
    let mut raws = generate_background(&EnterpriseConfig {
        hosts: scale.hosts.max(4),
        day,
        events_per_host: scale.events_per_host,
        seed: scale.seed,
    });
    raws.extend(attack);
    raws.sort_by_key(|r| r.start_time);
    Scenario { name, day, raws }
}

/// The demo-attack scenario (Figure 4 dataset).
pub fn scenario_demo(scale: Scale) -> Scenario {
    let day = (2018, 3, 19);
    assemble("demo-apt", day, scale, attack::demo_attack(day))
}

/// The case-study scenario (Figure 5 dataset).
pub fn scenario_case_study(scale: Scale) -> Scenario {
    let day = (2018, 4, 2);
    assemble("case-study-apt", day, scale, attack::case_study_attack(day))
}

/// Loads a scenario into a store with the given configuration.
pub fn build_store(scenario: &Scenario, config: StoreConfig) -> EventStore {
    let mut store = EventStore::new(config);
    store.ingest_all(&scenario.raws);
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_and_sorted() {
        let a = scenario_demo(Scale::test());
        let b = scenario_demo(Scale::test());
        assert_eq!(a.raws, b.raws);
        assert!(a
            .raws
            .windows(2)
            .all(|w| w[0].start_time <= w[1].start_time));
    }

    #[test]
    fn store_loads_background_and_attack() {
        let s = scenario_demo(Scale::test());
        let store = build_store(&s, StoreConfig::default());
        // Attack adds ~80 events on top of the background; dedup may merge
        // a few, so just check the magnitude.
        assert!(store.event_count() > 4 * 500 / 2);
        assert!(store.stats().agents >= 4);
        assert!(store.stats().partitions > 4);
    }

    #[test]
    fn case_study_store_builds() {
        let s = scenario_case_study(Scale::test());
        let store = build_store(&s, StoreConfig::default());
        assert!(store.event_count() > 0);
        assert_eq!(s.day, (2018, 4, 2));
    }
}
