//! The investigation query catalogs.
//!
//! Figure 4 evaluates the 19 queries an analyst issued while investigating
//! the demo attack (`a1-1 … a5-5`; the a5 investigation *starts* with the
//! anomaly query, per the paper's live-investigation narrative). Figure 5
//! evaluates the 26 queries of the second APT case study (`c1-1 … c5-7`).
//! Every query references artifacts emitted by [`crate::attack`], so all of
//! them return non-empty results against the scenario stores.

/// One catalog entry: the query id used on the figures' x-axes, what the
/// analyst is asking, and the AIQL text.
#[derive(Debug, Clone)]
pub struct CatalogQuery {
    /// Figure label, e.g. `a5-5`.
    pub id: &'static str,
    /// Investigation intent.
    pub description: &'static str,
    /// AIQL source.
    pub aiql: String,
}

fn q(id: &'static str, description: &'static str, aiql: &str) -> CatalogQuery {
    CatalogQuery {
        id,
        description,
        aiql: aiql.to_string(),
    }
}

/// The date both scenarios simulate (kept in the queries' `at` clauses).
pub const DEMO_DATE: &str = "03/19/2018";
/// The case-study date.
pub const CASE_DATE: &str = "04/02/2018";

/// The 19 investigation queries of Figure 4 (demo attack).
pub fn demo_queries() -> Vec<CatalogQuery> {
    vec![
        // ---- a1: initial compromise on the web server (agent 1) ----
        q(
            "a1-1",
            "Which processes on the web server accepted connections from the suspicious external host?",
            r#"(at "03/19/2018") agentid = 1
proc p accept ip i[srcip = "172.16.99.129"] as evt
return distinct p, i.src_ip"#,
        ),
        q(
            "a1-2",
            "What did the IRC daemon spawn after the exploit?",
            r#"(at "03/19/2018") agentid = 1
proc p1["%ircd"] start proc p2 as evt
return distinct p1, p2"#,
        ),
        q(
            "a1-3",
            "Backtrack the telnet channel to its root process.",
            r#"(at "03/19/2018")
backward: proc p3["%telnet"] <-[start] proc p2["%/bin/sh"] <-[start] proc p1
return p1, p2, p3"#,
        ),
        q(
            "a1-4",
            "Confirm the reverse shell: telnet connecting back to the attacker.",
            r#"(at "03/19/2018") agentid = 1
proc p["%telnet"] connect ip i[dstip = "172.16.99.129"] as evt
return distinct p, i"#,
        ),
        // ---- a2: malware infection ----
        q(
            "a2-1",
            "Which files did wget download onto the web server?",
            r#"(at "03/19/2018") agentid = 1
proc p["%wget"] write file f as evt
return distinct p, f"#,
        ),
        q(
            "a2-2",
            "Full infection chain: download, execution, and process start of the malware.",
            r#"(at "03/19/2018") agentid = 1
proc p1["%wget"] write file f1["%sbblv%"] as evt1
proc p2["%/bin/sh"] execute file f1 as evt2
proc p2 start proc p3["%sbblv%"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, f1, p2, p3"#,
        ),
        q(
            "a2-3",
            "Forward-track the malware's ramification from the web server into the client.",
            r#"(at "03/19/2018")
forward: proc p1["%sbblv%", agentid = 1] ->[connect] proc p2[agentid = 0]
->[write] file f2["%sbblv%"]
return p1, p2, f2"#,
        ),
        // ---- a3: privilege escalation on the client (agent 0) ----
        q(
            "a3-1",
            "Which tools did the client-side implant start?",
            r#"(at "03/19/2018") agentid = 0
proc p1["%sbblv%"] start proc p2 as evt
return distinct p1, p2"#,
        ),
        q(
            "a3-2",
            "Did the memory dumpers read LSASS?",
            r#"(at "03/19/2018") agentid = 0
proc p read file f["%lsass.exe"] as evt
return distinct p, f, evt.amount"#,
        ),
        q(
            "a3-3",
            "Credential files produced after reading LSASS (dropper, read, then write).",
            r#"(at "03/19/2018") agentid = 0
proc p1["%sbblv%"] start proc p2 as evt1
proc p2 read file f1["%lsass.exe"] as evt2
proc p2 write file f2["%creds%"] as evt3
with evt1 before evt2, evt2 before evt3
return distinct p2, f2"#,
        ),
        // ---- a4: credential dumping on the DC (agent 3) ----
        q(
            "a4-1",
            "Which implant copies landed on the domain controller, and who wrote them?",
            r#"(at "03/19/2018") agentid = 3
proc p write file f["%sbblv%"] as evt
return distinct p, f"#,
        ),
        q(
            "a4-2",
            "Password-dumping tools executed on the DC.",
            r#"(at "03/19/2018") agentid = 3
proc p1 start proc p2["%PwDump7%"] as evt1
proc p3 start proc p4["%WCE%"] as evt2
return distinct p1, p2, p3, p4"#,
        ),
        q(
            "a4-3",
            "Registry hives read by the dumping tools, and their output files.",
            r#"(at "03/19/2018") agentid = 3
proc p1["%PwDump7%"] read file f1["%SAM"] as evt1
proc p1 write file f2 as evt2
with evt1 before evt2
return distinct p1, f1, f2"#,
        ),
        q(
            "a4-4",
            "Did anything on the DC talk to the attacker host afterwards?",
            r#"(at "03/19/2018") agentid = 3
proc p write ip i[dstip = "172.16.99.129"] as evt
return distinct p, i, evt.amount"#,
        ),
        // ---- a5: data exfiltration from the database server (agent 2) ----
        q(
            "a5-1",
            "Anomaly model: processes on the DB server whose per-window outbound volume spikes over the moving average.",
            r#"(at "03/19/2018") agentid = 2
window = 1 min, step = 10 sec
proc p write ip i as evt
return p, i, avg(evt.amount) as amt
group by p, i
having amt > 2 * (amt + amt[1] + amt[2]) / 3 and amt > 1000000"#,
        ),
        q(
            "a5-2",
            "Which files did the suspicious process read before transferring data?",
            r#"(at "03/19/2018") agentid = 2
proc p["%sbblv%"] read file f as evt
return distinct p, f, evt.amount"#,
        ),
        q(
            "a5-3",
            "Who created the database dump file?",
            r#"(at "03/19/2018") agentid = 2
proc p write file f["%backup1.dmp"] as evt
return distinct p, f"#,
        ),
        q(
            "a5-4",
            "Did the malware open the channel to the attacker before the transfer?",
            r#"(at "03/19/2018") agentid = 2
proc p["%sbblv%"] connect ip i[dstip = "172.16.99.129"] as evt1
proc p write ip i2[dstip = "172.16.99.129"] as evt2
with evt1 before evt2
return distinct p, i"#,
        ),
        q(
            "a5-5",
            "The end-to-end exfiltration behavior (Query 1 of the paper): OSQL dump, malware read, network transfer.",
            r#"(at "03/19/2018") agentid = 2
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv%"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "172.16.99.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1"#,
        ),
    ]
}

/// The 26 investigation queries of Figure 5 (second APT case study).
pub fn case_study_queries() -> Vec<CatalogQuery> {
    vec![
        // ---- c1: delivery ----
        q(
            "c1-1",
            "Who wrote the phishing dropper to disk?",
            r#"(at "04/02/2018") agentid = 0
proc p write file f["%invoice_dropper%"] as evt
return distinct p, f"#,
        ),
        // ---- c2: initial compromise & persistence ----
        q(
            "c2-1",
            "What did the dropper start?",
            r#"(at "04/02/2018") agentid = 0
proc p1["%invoice_dropper%"] start proc p2 as evt
return distinct p1, p2"#,
        ),
        q(
            "c2-2",
            "Shell chain from the dropper to PowerShell.",
            r#"(at "04/02/2018") agentid = 0
proc p1["%invoice_dropper%"] start proc p2["%cmd.exe"] as evt1
proc p2 start proc p3["%powershell%"] as evt2
with evt1 before evt2
return distinct p1, p2, p3"#,
        ),
        q(
            "c2-3",
            "Outbound C2 connections from PowerShell.",
            r#"(at "04/02/2018") agentid = 0
proc p["%powershell%"] connect ip i[dstip = "172.16.99.200"] as evt
return distinct p, i"#,
        ),
        q(
            "c2-4",
            "Payloads written by PowerShell after the C2 contact.",
            r#"(at "04/02/2018") agentid = 0
proc p["%powershell%"] connect ip i[dstip = "172.16.99.200"] as evt1
proc p write file f as evt2
with evt1 before evt2
return distinct p, f"#,
        ),
        q(
            "c2-5",
            "Persistence: scheduled-task artifacts.",
            r#"(at "04/02/2018") agentid = 0
proc p["%schtasks%"] write file f as evt
return distinct p, f"#,
        ),
        q(
            "c2-6",
            "Who started the scheduled-task tool?",
            r#"(at "04/02/2018") agentid = 0
proc p1 start proc p2["%schtasks%"] as evt
return distinct p1, p2"#,
        ),
        q(
            "c2-7",
            "Execution of the staged payload and its first beacon.",
            r#"(at "04/02/2018") agentid = 0
proc p1["%powershell%"] start proc p2["%winupdate%"] as evt1
proc p2 write ip i[dstip = "172.16.99.200"] as evt2
with evt1 before evt2
return distinct p1, p2, i"#,
        ),
        q(
            "c2-8",
            "Anti-forensics: who deleted the dropper?",
            r#"(at "04/02/2018") agentid = 0
proc p delete file f["%invoice_dropper%"] as evt
return distinct p, f"#,
        ),
        // ---- c3: lateral movement ----
        q(
            "c3-1",
            "PsExec staging and remote service connection.",
            r#"(at "04/02/2018") agentid = 0
proc p1 write file f["%psexec%"] as evt1
proc p2["%psexec%"] connect ip i as evt2
with evt1 before evt2
return distinct p1, f, p2, i"#,
        ),
        q(
            "c3-2",
            "Forward-track PsExec into the server: remote service drops and starts the implant.",
            r#"(at "04/02/2018")
forward: proc p1["%psexec%", agentid = 0] ->[connect] proc p2[agentid = 1]
->[write] file f["%malsvc%"]
return p1, p2, f"#,
        ),
        // ---- c4: discovery & credential access ----
        q(
            "c4-1",
            "Discovery commands launched by the server implant.",
            r#"(at "04/02/2018") agentid = 1
proc p1["%malsvc%"] start proc p2 as evt
return distinct p1, p2"#,
        ),
        q(
            "c4-2",
            "whoami execution on the server.",
            r#"(at "04/02/2018") agentid = 1
proc p1 start proc p2["%whoami%"] as evt
return distinct p1, p2"#,
        ),
        q(
            "c4-3",
            "net.exe enumeration on the server.",
            r#"(at "04/02/2018") agentid = 1
proc p1 start proc p2["%net.exe"] as evt
return distinct p1, p2"#,
        ),
        q(
            "c4-4",
            "Where did the credential dumper binary come from?",
            r#"(at "04/02/2018") agentid = 1
proc p write file f["%m64.exe"] as evt
return distinct p, f"#,
        ),
        q(
            "c4-5",
            "LSASS memory read by the credential dumper.",
            r#"(at "04/02/2018") agentid = 1
proc p["%m64.exe"] read file f["%lsass.exe"] as evt
return distinct p, f, evt.amount"#,
        ),
        q(
            "c4-6",
            "Dumper output files after the LSASS read.",
            r#"(at "04/02/2018") agentid = 1
proc p["%m64.exe"] read file f1["%lsass.exe"] as evt1
proc p write file f2 as evt2
with evt1 before evt2
return distinct p, f2"#,
        ),
        q(
            "c4-7",
            "Kerberos hop: implant connecting toward the domain controller.",
            r#"(at "04/02/2018") agentid = 1
proc p["%malsvc%"] connect ip i[dstport = 88] as evt
return distinct p, i"#,
        ),
        q(
            "c4-8",
            "Cross-host: did the DC's LSASS read the directory database after the implant's contact?",
            r#"(at "04/02/2018")
forward: proc p1["%malsvc%", agentid = 1] ->[connect] proc p2[agentid = 3]
->[read] file f["%ntds.dit"]
return p1, p2, f"#,
        ),
        // ---- c5: staging & exfiltration ----
        q(
            "c5-1",
            "Archiver staged onto the server.",
            r#"(at "04/02/2018") agentid = 1
proc p write file f["%rar.exe"] as evt
return distinct p, f"#,
        ),
        q(
            "c5-2",
            "Documents the archiver read.",
            r#"(at "04/02/2018") agentid = 1
proc p["%rar.exe"] read file f as evt
return distinct f"#,
        ),
        q(
            "c5-3",
            "The staged archive.",
            r#"(at "04/02/2018") agentid = 1
proc p["%rar.exe"] write file f["%stage.rar"] as evt
return distinct p, f, evt.amount"#,
        ),
        q(
            "c5-4",
            "Who read the archive afterwards?",
            r#"(at "04/02/2018") agentid = 1
proc p1["%rar.exe"] write file f["%stage.rar"] as evt1
proc p2 read file f as evt2
with evt1 before evt2
return distinct p2, f"#,
        ),
        q(
            "c5-5",
            "FTP channel to the C2 host.",
            r#"(at "04/02/2018") agentid = 1
proc p["%ftp.exe"] connect ip i[dstip = "172.16.99.200"] as evt
return distinct p, i"#,
        ),
        q(
            "c5-6",
            "End-to-end staging-to-exfiltration behavior (archive, read, connect, transfer).",
            r#"(at "04/02/2018") agentid = 1
proc p1["%rar.exe"] write file f["%stage.rar"] as evt1
proc p2["%ftp.exe"] read file f as evt2
proc p2 connect ip i[dstip = "172.16.99.200"] as evt3
proc p2 write ip i2[dstip = "172.16.99.200"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, f, p2, i2"#,
        ),
        q(
            "c5-7",
            "Anti-forensics: cleanup of the staged artifacts.",
            r#"(at "04/02/2018") agentid = 1
proc p delete file f["%stage.rar%"] as evt
return distinct p, f"#,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_lang::parse_query;

    #[test]
    fn demo_catalog_has_19_queries_with_figure_labels() {
        let qs = demo_queries();
        assert_eq!(qs.len(), 19);
        assert_eq!(qs[0].id, "a1-1");
        assert_eq!(qs.last().unwrap().id, "a5-5");
        // 4 + 3 + 3 + 4 + 5 per attack step, as on the Figure 4 x-axis.
        for step in 1..=5 {
            let n = qs
                .iter()
                .filter(|q| q.id.starts_with(&format!("a{step}-")))
                .count();
            let expected = [4, 3, 3, 4, 5][step - 1];
            assert_eq!(n, expected, "step a{step}");
        }
    }

    #[test]
    fn case_catalog_has_26_queries_with_figure_labels() {
        let qs = case_study_queries();
        assert_eq!(qs.len(), 26);
        for (step, expected) in [(1, 1), (2, 8), (3, 2), (4, 8), (5, 7)] {
            let n = qs
                .iter()
                .filter(|q| q.id.starts_with(&format!("c{step}-")))
                .count();
            assert_eq!(n, expected, "step c{step}");
        }
    }

    #[test]
    fn every_catalog_query_parses() {
        for cq in demo_queries().iter().chain(case_study_queries().iter()) {
            parse_query(&cq.aiql)
                .unwrap_or_else(|e| panic!("query {} failed to parse: {}\n{}", cq.id, e, cq.aiql));
        }
    }

    #[test]
    fn demo_catalog_contains_one_anomaly_query() {
        let anomalies: Vec<_> = demo_queries()
            .into_iter()
            .filter(|cq| matches!(parse_query(&cq.aiql).unwrap(), aiql_lang::Query::Anomaly(_)))
            .collect();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].id, "a5-1");
    }

    #[test]
    fn catalogs_contain_dependency_queries() {
        let deps = |qs: Vec<CatalogQuery>| {
            qs.into_iter()
                .filter(|cq| {
                    matches!(
                        parse_query(&cq.aiql).unwrap(),
                        aiql_lang::Query::Dependency(_)
                    )
                })
                .count()
        };
        assert!(deps(demo_queries()) >= 2);
        assert!(deps(case_study_queries()) >= 2);
    }
}
