//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of proptest: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, strategies for ranges, tuples,
//! string patterns, `Just`, `any`, `collection::vec`, `option::of`, the
//! `prop_oneof!`/`proptest!`/`prop_assert!`/`prop_assert_eq!` macros, and a
//! deterministic [`test_runner::TestRng`]. No shrinking: a failing case
//! panics with the generated inputs in the assertion message.

pub mod strategy;
pub mod test_runner;

/// String-pattern generation (subset of regex syntax).
pub mod string_pattern;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements drawn
    /// from `element`.
    pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            let span = (len.end - len.start).max(1) as u64;
            let n = len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// Strategy producing `Some` three times out of four.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `prop_assert!` — assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_oneof!` — uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `proptest!` — declares property test functions whose arguments are drawn
/// from strategies for a configurable number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            $(let $arg = $crate::strategy::Strategy::boxed($strat);)*
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                // The closure gives property bodies a `?`-capturing scope
                // (real proptest bodies return Result<(), TestCaseError>).
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property {} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -50i64..50) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-50..50).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn option_of_produces_both(o in crate::option::of(Just(7u8))) {
            prop_assert!(o.is_none() || o == Some(7));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 16);
        }
    }
}
