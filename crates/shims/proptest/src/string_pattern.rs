//! Generation of strings from the small regex subset the tests use:
//! literal characters, escapes (`\n`, `\t`, `\\`), character classes with
//! ranges (`[a-z0-9./\-]`), and `{m,n}` / `{n}` repetition.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// One choice from an expanded character class.
    Class(Vec<char>),
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                return set;
            }
            '\\' => {
                let lit = unescape(chars.next().expect("dangling escape in class"));
                if let Some(p) = pending {
                    set.push(p);
                }
                pending = Some(lit);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("range start");
                let mut hi = chars.next().expect("range end");
                if hi == '\\' {
                    hi = unescape(chars.next().expect("dangling escape in range"));
                }
                assert!(lo <= hi, "invalid class range {lo}-{hi}");
                for x in lo as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(x) {
                        set.push(ch);
                    }
                }
            }
            other => {
                if let Some(p) = pending {
                    set.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("repeat min"),
            n.trim().parse().expect("repeat max"),
        ),
        None => {
            let n: usize = spec.trim().parse().expect("repeat count");
            (n, n)
        }
    }
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let set = parse_class(&mut chars);
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(set)
            }
            '\\' => Atom::Literal(unescape(chars.next().expect("dangling escape"))),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_repeat(&mut chars);
        atoms.push((atom, min, max));
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse(pattern) {
        let n = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    let i = (rng.next_u64() % set.len() as u64) as usize;
                    out.push(set[i]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_ranges_and_repeats() {
        let mut rng = TestRng::for_test("pat");
        for _ in 0..200 {
            let s = generate_pattern("[a-c][0-9]{2,4}x", &mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!(('a'..='c').contains(&chars[0]));
            assert!(chars[1..chars.len() - 1].iter().all(char::is_ascii_digit));
            assert_eq!(*chars.last().unwrap(), 'x');
            assert!(s.len() >= 4 && s.len() <= 6);
        }
    }

    #[test]
    fn escapes_in_classes() {
        let mut rng = TestRng::for_test("esc");
        for _ in 0..100 {
            let s = generate_pattern("[ -~\\n]{0,20}", &mut rng);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::for_test("dash");
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = generate_pattern("[a\\-]{1}", &mut rng);
            assert!(s == "a" || s == "-");
            saw_dash |= s == "-";
        }
        assert!(saw_dash);
    }
}
