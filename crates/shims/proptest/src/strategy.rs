//! The [`Strategy`] trait and the combinators used by this workspace.

use std::ops::Range;
use std::rc::Rc;

use crate::string_pattern::generate_pattern;
use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking — a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }

    /// Builds recursive values: at each of `depth` levels the generator
    /// either stops at the base strategy or recurses through `recurse`.
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let leaf = base.clone();
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.next_u64() % 3 == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from the macro's boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128;
                (self.start as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// String literals act as pattern strategies (subset of regex syntax:
/// character classes, escapes, `{m,n}` repetition).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
