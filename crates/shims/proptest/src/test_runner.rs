//! Deterministic test RNG and run configuration.

/// Failure of one generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the case failed with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Marks the case rejected (treated the same as failure here, since the
    /// shim does not resample).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG (xoshiro256++), seeded from the test name so every
/// property explores its own sequence but failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a 64-bit value via splitmix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
