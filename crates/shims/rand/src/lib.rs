//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: [`StdRng`] (xoshiro256++
//! seeded via splitmix64), the [`Rng`] extension methods the simulator uses
//! (`gen`, `gen_bool`, `gen_range`), and [`SeedableRng::seed_from_u64`].
//! Deterministic for a given seed, which is all the workload simulator and
//! property tests require — not cryptographically secure.

use std::ops::Range;

/// Core random number source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable from a `Range` (`rng.gen_range(a..b)`).
pub trait SampleUniform: Sized + Copy {
    /// Samples uniformly from `[low, high)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u128) - (low as u128);
                // Rejection-free multiply-shift; bias is negligible for the
                // simulator's purposes (span << 2^64).
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let x = rng.next_u64() as u128;
                (low as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — the algorithm behind `rand`'s SmallRng; deterministic and
/// fast, which is what the simulator needs from `StdRng` here.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `rand::rngs` module shape.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = rng.gen_range(40_000..65_000);
            assert!((40_000..65_000).contains(&x));
            let y: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&y));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
