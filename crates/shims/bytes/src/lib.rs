//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset the storage codecs use: [`BytesMut`] (a growable byte buffer that
//! derefs to `[u8]`), the [`BufMut`] write trait, and the [`Buf`] read trait
//! implemented for `&[u8]` (reads advance the slice).

use std::ops::{Deref, DerefMut};

/// Write-side buffer trait.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Read-side buffer trait. Reads consume from the front.
///
/// Callers must check [`Buf::remaining`] before the fixed-width getters;
/// getters panic on underflow exactly like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-12345);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -12345);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
