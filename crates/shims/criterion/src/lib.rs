//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of criterion: benchmark groups, `iter`
//! timing, `BenchmarkId`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is best-of-N wall clock (first sample warms caches) and
//! results print as `name … best/mean` lines. Set `CRITERION_JSON=<path>`
//! to also append one JSON line per benchmark for downstream tooling.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (identity in this shim —
/// results produced by `iter` closures are consumed by the harness).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A two-part benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to the group's sample count (bounded by its
    /// measurement time). The first sample is treated as warm-up and
    /// excluded from statistics when more than one sample was collected.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let budget_start = Instant::now();
        for i in 0..self.target_samples.max(2) {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if i >= 1 && budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn stats(&self) -> Option<(Duration, Duration)> {
        let measured = if self.samples.len() > 1 {
            &self.samples[1..]
        } else {
            &self.samples[..]
        };
        let best = measured.iter().min()?;
        let mean = measured.iter().sum::<Duration>() / measured.len() as u32;
        Some((*best, mean))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, b: &Bencher) {
    let Some((best, mean)) = b.stats() else {
        println!("{name:<48} (no samples)");
        return;
    };
    println!(
        "{name:<48} best {:>12}   mean {:>12}   ({} samples)",
        fmt_duration(best),
        fmt_duration(mean),
        b.samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"bench\":\"{}\",\"best_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
            name.replace('"', "'"),
            best.as_nanos(),
            mean.as_nanos(),
            b.samples.len()
        );
        let _ = append_line(&path, &line);
    }
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up time (accepted for API compatibility; warm-up here
    /// is the discarded first sample).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the wall-clock budget of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares throughput for reporting (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&name, &b);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized>(
        &mut self,
        id: I,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Throughput declaration (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _parent: self,
        };
        group.bench_function(id, f);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
