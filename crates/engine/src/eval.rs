//! Row-level expression evaluation.
//!
//! Evaluates AIQL expressions against a *binding*: one entity per entity
//! variable, one event per event variable, plus (for aggregated contexts)
//! alias values and per-window aggregate history. The context-aware syntax
//! shortcuts live here: a bare `p1` in a return clause evaluates to the
//! default attribute of its entity kind (`p1.exe_name` for processes).

use std::collections::HashMap;

use aiql_lang::{BinOp, Expr, Literal};
use aiql_model::{EntityId, Event, Value};
use aiql_storage::EventStore;

use crate::error::EngineError;

/// The evaluation context of one result row.
#[derive(Default)]
pub struct RowCtx<'a> {
    /// Entity variable bindings.
    pub var_entity: HashMap<&'a str, EntityId>,
    /// Event variable bindings.
    pub events: HashMap<&'a str, Event>,
    /// Aggregate alias values (current window / current group).
    pub aliases: HashMap<String, Value>,
    /// Precomputed aggregate values keyed by the aggregate node's canonical
    /// key (see [`agg_key`]).
    pub agg_values: HashMap<String, Value>,
    /// Historical alias values: `(alias, lag) → value`. Missing history is
    /// treated as 0 (stream semantics: an empty previous window contributed
    /// nothing).
    pub history: HashMap<(String, u32), Value>,
}

/// Canonical key identifying an aggregate expression node.
pub fn agg_key(e: &Expr) -> String {
    format!("{e:?}")
}

/// Evaluates an expression in a row context.
pub fn eval(expr: &Expr, store: &EventStore, ctx: &RowCtx<'_>) -> Result<Value, EngineError> {
    match expr {
        Expr::Literal(lit) => Ok(match lit {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => match store.interner().get(s) {
                Some(sym) => Value::Str(sym),
                None => Value::Null,
            },
        }),
        Expr::Ref { var, attr } => {
            if let Some(event) = ctx.events.get(var.as_str()) {
                let attr = attr.as_deref().unwrap_or("id");
                return event.get(attr).map_err(EngineError::Model);
            }
            if let Some(&id) = ctx.var_entity.get(var.as_str()) {
                let entity = store.entities().get(id);
                return match attr {
                    Some(a) => entity.get(a).map_err(EngineError::Model),
                    None => Ok(entity.attrs.default_value()),
                };
            }
            if attr.is_none() {
                if let Some(v) = ctx.aliases.get(var.as_str()) {
                    return Ok(*v);
                }
            }
            Err(EngineError::Analysis(format!("unbound variable `{var}`")))
        }
        Expr::Agg { .. } => ctx.agg_values.get(&agg_key(expr)).copied().ok_or_else(|| {
            EngineError::Analysis("aggregate evaluated outside aggregation context".into())
        }),
        Expr::History { name, lag } => {
            if *lag == 0 {
                return Ok(ctx
                    .aliases
                    .get(name.as_str())
                    .copied()
                    .unwrap_or(Value::Null));
            }
            Ok(ctx
                .history
                .get(&(name.clone(), *lag))
                .copied()
                .unwrap_or(Value::Float(0.0)))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, store, ctx)?;
            let r = eval(rhs, store, ctx)?;
            Ok(apply_binop(*op, l, r))
        }
        Expr::Neg(inner) => {
            let v = eval(inner, store, ctx)?;
            Ok(match v {
                Value::Int(i) => Value::Int(-i),
                Value::Float(x) => Value::Float(-x),
                _ => Value::Null,
            })
        }
    }
}

/// A slot-compiled expression: every variable, alias, and aggregate
/// reference is resolved to a dense slot index at compile time, so the
/// per-tuple evaluation loop never hashes a name. Compiled once per query
/// by [`compile_slots`]; evaluated against a [`SlotRow`].
#[derive(Debug, Clone)]
pub enum SlotExpr {
    /// A literal, resolved once (string literals to their dictionary
    /// symbol — the store is immutable for the duration of a query).
    Const(Value),
    /// Event attribute through the pattern's event slot.
    Event {
        /// Pattern index.
        slot: usize,
        /// Resolved attribute name (`id` when the reference was bare).
        attr: String,
        /// Source variable name (for error parity with the dynamic path).
        name: String,
    },
    /// Entity attribute through the variable's slot (`attr: None` = the
    /// kind's default attribute).
    Entity {
        /// Variable index.
        slot: usize,
        /// Attribute name, or `None` for the kind default.
        attr: Option<String>,
        /// Source variable name.
        name: String,
    },
    /// Alias of an earlier return item (populated only in aggregated
    /// projections, mirroring the dynamic path).
    Alias {
        /// Alias slot (item order).
        slot: usize,
        /// Alias text.
        name: String,
    },
    /// Precomputed aggregate value by dense aggregate index.
    Agg(usize),
    /// Binary operator.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<SlotExpr>,
        /// Right operand.
        rhs: Box<SlotExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<SlotExpr>),
}

/// Dense per-tuple bindings for slot-compiled evaluation: flat arrays
/// indexed by variable/pattern/alias/aggregate slot, replacing the
/// [`RowCtx`] hash maps. Reused across tuples; only the slots a query's
/// compiled expressions reference are ever written or read.
#[derive(Debug, Default)]
pub struct SlotRow {
    /// Entity id per variable slot.
    pub entities: Vec<Option<EntityId>>,
    /// Materialized event per pattern slot.
    pub events: Vec<Option<Event>>,
    /// Alias values of already-evaluated return items.
    pub aliases: Vec<Option<Value>>,
    /// Aggregate values, parallel to the query's dense aggregate list.
    pub aggs: Vec<Value>,
}

impl SlotRow {
    /// A row with every slot unbound, sized for a query.
    pub fn new(nvars: usize, npatterns: usize, naliases: usize, naggs: usize) -> Self {
        SlotRow {
            entities: vec![None; nvars],
            events: vec![None; npatterns],
            aliases: vec![None; naliases],
            aggs: vec![Value::Null; naggs],
        }
    }
}

/// Name environment of [`compile_slots`]: resolves variable, event, alias,
/// and aggregate names to their dense slots. Lookup precedence mirrors
/// [`eval`] exactly: event bindings shadow entity bindings shadow aliases.
pub struct SlotEnv<'a> {
    /// Entity variable name → variable slot.
    pub vars: HashMap<&'a str, usize>,
    /// Event variable name → pattern slot.
    pub events: HashMap<&'a str, usize>,
    /// Alias name → alias slot (item order).
    pub aliases: HashMap<&'a str, usize>,
    /// Canonical aggregate key ([`agg_key`]) → dense aggregate index.
    pub aggs: HashMap<String, usize>,
}

/// Compiles an expression against a slot environment. Returns `None` when
/// the expression cannot be slot-compiled (unknown name, historical access)
/// — callers fall back to the dynamic [`eval`] path, which reproduces the
/// legacy behavior including its error messages.
pub fn compile_slots(e: &Expr, store: &EventStore, env: &SlotEnv<'_>) -> Option<SlotExpr> {
    Some(match e {
        Expr::Literal(lit) => SlotExpr::Const(match lit {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => match store.interner().get(s) {
                Some(sym) => Value::Str(sym),
                None => Value::Null,
            },
        }),
        Expr::Ref { var, attr } => {
            if let Some(&slot) = env.events.get(var.as_str()) {
                SlotExpr::Event {
                    slot,
                    attr: attr.clone().unwrap_or_else(|| "id".to_string()),
                    name: var.clone(),
                }
            } else if let Some(&slot) = env.vars.get(var.as_str()) {
                SlotExpr::Entity {
                    slot,
                    attr: attr.clone(),
                    name: var.clone(),
                }
            } else if attr.is_none() {
                let &slot = env.aliases.get(var.as_str())?;
                SlotExpr::Alias {
                    slot,
                    name: var.clone(),
                }
            } else {
                return None;
            }
        }
        Expr::Agg { .. } => SlotExpr::Agg(*env.aggs.get(&agg_key(e))?),
        // Historical access only exists in anomaly having clauses, which
        // keep the dynamic path.
        Expr::History { .. } => return None,
        Expr::Binary { op, lhs, rhs } => SlotExpr::Binary {
            op: *op,
            lhs: Box::new(compile_slots(lhs, store, env)?),
            rhs: Box::new(compile_slots(rhs, store, env)?),
        },
        Expr::Neg(inner) => SlotExpr::Neg(Box::new(compile_slots(inner, store, env)?)),
    })
}

impl SlotExpr {
    /// Visits every node of the compiled tree.
    pub fn visit(&self, f: &mut impl FnMut(&SlotExpr)) {
        f(self);
        match self {
            SlotExpr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            SlotExpr::Neg(inner) => inner.visit(f),
            _ => {}
        }
    }

    /// Evaluates the compiled expression against a slot row.
    pub fn eval(&self, store: &EventStore, row: &SlotRow) -> Result<Value, EngineError> {
        match self {
            SlotExpr::Const(v) => Ok(*v),
            SlotExpr::Event { slot, attr, name } => match &row.events[*slot] {
                Some(e) => e.get(attr).map_err(EngineError::Model),
                None => Err(unbound(name)),
            },
            SlotExpr::Entity { slot, attr, name } => match row.entities[*slot] {
                Some(id) => {
                    let entity = store.entities().get(id);
                    match attr {
                        Some(a) => entity.get(a).map_err(EngineError::Model),
                        None => Ok(entity.attrs.default_value()),
                    }
                }
                None => Err(unbound(name)),
            },
            SlotExpr::Alias { slot, name } => row.aliases[*slot].ok_or_else(|| unbound(name)),
            SlotExpr::Agg(i) => Ok(row.aggs[*i]),
            SlotExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(store, row)?;
                let r = rhs.eval(store, row)?;
                Ok(apply_binop(*op, l, r))
            }
            SlotExpr::Neg(inner) => {
                let v = inner.eval(store, row)?;
                Ok(match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(x) => Value::Float(-x),
                    _ => Value::Null,
                })
            }
        }
    }
}

fn unbound(name: &str) -> EngineError {
    EngineError::Analysis(format!("unbound variable `{name}`"))
}

/// Applies a binary operator with numeric coercion; `Null` propagates
/// through arithmetic and fails comparisons.
pub fn apply_binop(op: BinOp, l: Value, r: Value) -> Value {
    use std::cmp::Ordering;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                return Value::Int(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    _ => a * b,
                });
            }
            match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => Value::Float(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    _ => a * b,
                }),
                _ => Value::Null,
            }
        }
        BinOp::Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            _ => Value::Null,
        },
        BinOp::Eq => Value::Bool(l.compare(r) == Some(Ordering::Equal)),
        BinOp::Ne => Value::Bool(matches!(
            l.compare(r),
            Some(Ordering::Less) | Some(Ordering::Greater)
        )),
        BinOp::Lt => Value::Bool(l.compare(r) == Some(Ordering::Less)),
        BinOp::Le => Value::Bool(matches!(
            l.compare(r),
            Some(Ordering::Less) | Some(Ordering::Equal)
        )),
        BinOp::Gt => Value::Bool(l.compare(r) == Some(Ordering::Greater)),
        BinOp::Ge => Value::Bool(matches!(
            l.compare(r),
            Some(Ordering::Greater) | Some(Ordering::Equal)
        )),
        BinOp::And => Value::Bool(l.truthy() && r.truthy()),
        BinOp::Or => Value::Bool(l.truthy() || r.truthy()),
    }
}

/// Compares two values for sorting: comparable values use their natural
/// order; everything else falls back to a stable textual order.
pub fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    a.compare(*b)
        .unwrap_or_else(|| format!("{a:?}").cmp(&format!("{b:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, RawEvent};

    fn store_and_event() -> (EventStore, Event) {
        let mut s = EventStore::default();
        s.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(10, "sbblv.exe", "system"),
            EntitySpec::file("/tmp/x", "system"),
            Timestamp::from_secs(5),
            4096,
        )]);
        let e = s.scan_collect(&aiql_storage::EventFilter::all())[0];
        (s, e)
    }

    fn having_expr(src: &str) -> Expr {
        let q = parse_query(&format!("proc p read file f as e return p having {src}")).unwrap();
        let aiql_lang::Query::Multievent(m) = q else {
            panic!()
        };
        m.having.unwrap()
    }

    #[test]
    fn arithmetic_precedence_and_types() {
        let (s, _) = store_and_event();
        let ctx = RowCtx::default();
        let e = having_expr("1 + 2 * 3");
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Int(7));
        let e = having_expr("7 / 2");
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Float(3.5));
        let e = having_expr("2 * 3.5");
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Float(7.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let (s, _) = store_and_event();
        let e = having_expr("1 / 0");
        assert_eq!(eval(&e, &s, &RowCtx::default()).unwrap(), Value::Null);
    }

    #[test]
    fn event_attribute_access() {
        let (s, event) = store_and_event();
        let mut ctx = RowCtx::default();
        ctx.events.insert("e", event);
        let e = having_expr("e.amount > 1000");
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn entity_default_attribute_shortcut() {
        let (s, event) = store_and_event();
        let mut ctx = RowCtx::default();
        ctx.var_entity.insert("p", event.subject);
        let e = having_expr(r#"p = "sbblv.exe""#);
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Bool(true));
        let e2 = having_expr(r#"p.user = "system""#);
        assert_eq!(eval(&e2, &s, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn alias_and_history_lookup() {
        let (s, _) = store_and_event();
        let mut ctx = RowCtx::default();
        ctx.aliases.insert("amt".into(), Value::Float(100.0));
        ctx.history.insert(("amt".into(), 1), Value::Float(40.0));
        // amt > 2 * (amt + amt[1] + amt[2]) / 3 with amt[2] missing (=0).
        let e = having_expr("amt > 2 * (amt[0] + amt[1] + amt[2]) / 3");
        // 100 > 2*(100+40+0)/3 = 93.3 → true
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Bool(true));
        ctx.history.insert(("amt".into(), 2), Value::Float(80.0));
        // 100 > 2*(100+40+80)/3 = 146.7 → false
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn logic_operators() {
        let (s, _) = store_and_event();
        let ctx = RowCtx::default();
        let e = having_expr("1 < 2 and 3 < 2 or 1 = 1");
        assert_eq!(eval(&e, &s, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unbound_variable_errors() {
        let (s, _) = store_and_event();
        let e = having_expr("zz > 1");
        assert!(eval(&e, &s, &RowCtx::default()).is_err());
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(
            apply_binop(BinOp::Add, Value::Null, Value::Int(1)),
            Value::Null
        );
        assert_eq!(
            apply_binop(BinOp::Gt, Value::Null, Value::Int(1)),
            Value::Bool(false)
        );
    }
}
