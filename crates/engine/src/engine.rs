//! The engine facade: parse → analyze → route → execute.

use aiql_lang::{parse_query, Query};
use aiql_storage::EventStore;

use crate::analyze;
use crate::anomaly;
use crate::error::EngineError;
use crate::exec::{ExecStats, MultieventExec};
use crate::result::ResultTable;

/// Engine tunables. Every domain-specific optimization can be switched off
/// individually, which is how the ablation benchmarks isolate their
/// contributions.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for partition-parallel scans.
    pub parallelism: usize,
    /// Schedule patterns by estimated pruning power (vs. source order).
    pub prioritize_pruning: bool,
    /// Scan hypertable partitions in parallel.
    pub partition_parallel: bool,
    /// Resolve entity constraints against the dictionary and push the id
    /// sets into the event scans as posting-list lookups — the paper's
    /// per-pattern data-query synthesis. Without it, entity predicates are
    /// evaluated per scanned row (hash-join style).
    pub entity_pushdown: bool,
    /// Push bindings of executed patterns into later data queries.
    pub semi_join_pushdown: bool,
    /// Narrow scan windows using temporal relations and observed bounds.
    pub temporal_narrowing: bool,
    /// Minimum estimated scan size before partition-parallelism kicks in
    /// (thread fan-out is pure overhead for tiny scans).
    pub parallel_threshold: usize,
    /// Cap on intermediate join tuples (guard against pattern explosion).
    pub max_intermediate: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            prioritize_pruning: true,
            partition_parallel: true,
            entity_pushdown: true,
            semi_join_pushdown: true,
            temporal_narrowing: true,
            parallel_threshold: 8_192,
            max_intermediate: 4_000_000,
        }
    }
}

impl EngineConfig {
    /// A configuration with every domain-specific optimization disabled —
    /// scheduling degrades to source order with no pushdown, mirroring how
    /// a general-purpose engine would execute the synthesized plan.
    pub fn unoptimized() -> Self {
        EngineConfig {
            parallelism: 1,
            prioritize_pruning: false,
            partition_parallel: false,
            entity_pushdown: false,
            semi_join_pushdown: false,
            temporal_narrowing: false,
            parallel_threshold: usize::MAX,
            max_intermediate: 4_000_000,
        }
    }
}

/// The AIQL query engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Parses and executes AIQL query text against a store.
    pub fn execute_text(
        &self,
        store: &EventStore,
        source: &str,
    ) -> Result<ResultTable, EngineError> {
        let query = parse_query(source)?;
        self.execute(store, &query)
    }

    /// Executes a parsed query.
    pub fn execute(&self, store: &EventStore, query: &Query) -> Result<ResultTable, EngineError> {
        match query {
            Query::Multievent(m) => {
                let a = analyze::analyze_multievent(m, store)?;
                MultieventExec::new(store, &a, &self.config).run()
            }
            Query::Dependency(d) => {
                // §2.3: compile to a semantically equivalent multievent query.
                let m = aiql_lang::dependency_to_multievent(d)?;
                let a = analyze::analyze_multievent(&m, store)?;
                MultieventExec::new(store, &a, &self.config).run()
            }
            Query::Anomaly(anom) => {
                let a = analyze::analyze_anomaly(anom, store)?;
                anomaly::run_anomaly(store, &a, &self.config)
            }
        }
    }

    /// Executes a multievent query and returns execution statistics
    /// (pattern order, per-pattern fetch counts) for benchmarking.
    pub fn execute_multievent_with_stats(
        &self,
        store: &EventStore,
        m: &aiql_lang::MultieventQuery,
    ) -> Result<(ResultTable, ExecStats), EngineError> {
        let a = analyze::analyze_multievent(m, store)?;
        MultieventExec::new(store, &a, &self.config).run_with_stats()
    }
}
