//! The engine facade: parse → analyze → route → execute.

use aiql_lang::{parse_query, Query};
use aiql_storage::EventStore;

use crate::analyze;
use crate::anomaly;
use crate::error::EngineError;
use crate::exec::{ExecStats, MultieventExec};
use crate::governor::{ExecBudget, Governor};
use crate::result::ResultTable;

/// Engine tunables. Every domain-specific optimization can be switched off
/// individually, which is how the ablation benchmarks isolate their
/// contributions.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for partition-parallel scans.
    pub parallelism: usize,
    /// Schedule patterns by estimated pruning power (vs. source order).
    pub prioritize_pruning: bool,
    /// Scan hypertable partitions in parallel.
    pub partition_parallel: bool,
    /// Resolve entity constraints against the dictionary and push the id
    /// sets into the event scans as posting-list lookups — the paper's
    /// per-pattern data-query synthesis. Without it, entity predicates are
    /// evaluated per scanned row (hash-join style).
    pub entity_pushdown: bool,
    /// Push bindings of executed patterns into later data queries.
    pub semi_join_pushdown: bool,
    /// Narrow scan windows using temporal relations and observed bounds.
    pub temporal_narrowing: bool,
    /// Carry ⟨partition, row⟩ references through candidate lists and the
    /// join, materializing events only for surviving tuples. Disabled, every
    /// scan copies full events and the join clones them (the seed's path).
    pub late_materialization: bool,
    /// Run parallel scans on a persistent worker pool. Disabled, every
    /// parallel scan spawns scoped threads (the seed's per-scan fan-out).
    pub scan_pool: bool,
    /// Use the process-wide shared scan executor (sized by
    /// `std::thread::available_parallelism`, spawned once per process)
    /// instead of a private per-engine pool. Per-query fan-out stays
    /// capped at `parallelism` either way; disabling this is the override
    /// for engines that need an isolated worker set of exactly
    /// `parallelism` threads.
    pub shared_scan_pool: bool,
    /// Partition the multi-way join's tuple frontier across the scan
    /// executor (contiguous ranges merged deterministically, so results
    /// are byte-identical to the serial join). Disabled, every join step
    /// runs on the query thread.
    pub parallel_join: bool,
    /// Join partition count. 0 = auto: `4 × parallelism` partitions once a
    /// step's probe work clears [`EngineConfig::parallel_join_min_work`]. A
    /// non-zero value forces exactly that many partitions on every step big
    /// enough to split (ablation and differential tests pin this).
    pub join_partitions: usize,
    /// Minimum per-step probe work (frontier tuples, or candidates for the
    /// first pattern) before the join fans out in auto mode. Below this the
    /// fork/merge overhead outweighs the step.
    pub parallel_join_min_work: usize,
    /// Minimum candidate-list size before a join step's hash-index *build*
    /// fans out into key-hash shards in auto mode. Below this the two-phase
    /// scatter/gather costs more than the serial insert loop.
    pub parallel_index_min_build: usize,
    /// Build join-step indexes with a time-bucket dimension: each key's
    /// posting list carries dense start/end columns plus per-chunk bucket
    /// zone maps (bucket width chosen from the candidate timestamp range at
    /// build time, surfaced in EXPLAIN). Probes compute the admissible
    /// start/end intervals from the tuple's already-placed events once, skip
    /// whole chunks whose buckets cannot satisfy the temporal relations, and
    /// verify survivors against the dense columns — instead of re-resolving
    /// time columns per (tuple, candidate) pair. Results are byte-identical
    /// either way.
    pub time_bucket_join: bool,
    /// Re-partition the parallel join probe by join key: each executor
    /// shard probes only its locally built shard of the index (aligned with
    /// the scatter/gather build), and shard outputs merge back in frontier
    /// order, so results stay byte-identical to the serial traversal.
    /// Applies to parallel steps with bound variables and a sharded index;
    /// other steps keep the contiguous frontier-range partitioning.
    pub partitioned_probe: bool,
    /// Sideways filter pushdown: pattern scans publish bitmap filters over
    /// their candidates' join-key domains, and the join uses them to (a)
    /// drop build-side candidates no frontier tuple can probe, (b) skip
    /// probes whose key is absent from the step's candidate domain, and (c)
    /// shrink the seed frontier by the next pattern's domain before it is
    /// ever joined. All three are output-invisible: results (including
    /// truncation prefixes) are byte-identical with the flag off.
    pub sideways_filters: bool,
    /// Demand-driven blocked join drive: instead of materializing each join
    /// step's full frontier breadth-first, take the seed frontier in runs of
    /// [`EngineConfig::join_block_tuples`] tuples and drive each run
    /// depth-first through every remaining step, reusing the per-step
    /// indexes (still built once, up front). Runs are merged in ascending
    /// seed order, so uncapped results are byte-identical to the
    /// breadth-first drive; when `max_intermediate` or a governor budget
    /// trips, the output is a prefix *in nested-loop emission order* of the
    /// untruncated result — a strictly stronger contract than breadth-first
    /// truncation. Applies to multievent joins with ≥ 2 patterns on the
    /// late-materialization path.
    pub blocked_join_drive: bool,
    /// Seed-frontier run size (in tuples) for the blocked join drive. The
    /// result is byte-identical across block sizes; smaller blocks bound
    /// live intermediate state more tightly, larger blocks amortize
    /// per-run overhead.
    pub join_block_tuples: usize,
    /// Memoize dictionary constraint resolutions and filter estimates in
    /// an LRU shared by every query this engine (and its clones) runs —
    /// repeated investigations skip the shared phase. Invalidation is
    /// partition-scoped: resolutions are guarded by the store's dictionary
    /// epoch, estimates by the ⟨partition, epoch⟩ dependencies they read,
    /// so cached plans survive ingest into partitions they never touched.
    pub plan_cache: bool,
    /// Compile return items, group keys, and aggregate arguments to dense
    /// variable/event slot indices before the tuple loop, replacing the
    /// per-tuple `RowCtx` hash maps with indexed flat arrays (and
    /// materializing only the event slots the projection actually reads).
    pub compiled_projection: bool,
    /// Minimum estimated scan size before partition-parallelism kicks in
    /// (thread fan-out is pure overhead for tiny scans).
    pub parallel_threshold: usize,
    /// Cap on intermediate join tuples (guard against pattern explosion).
    pub max_intermediate: usize,
    /// Wall-clock deadline per query in milliseconds; 0 disables. Tripping
    /// the deadline yields [`EngineError::DeadlineExceeded`] unless
    /// `partial_results` is on.
    pub deadline_ms: u64,
    /// Byte budget for in-flight intermediate state (candidate lists plus
    /// the join frontier); 0 disables. Tripping yields
    /// [`EngineError::MemoryBudget`] unless `partial_results` is on.
    pub memory_budget_bytes: u64,
    /// On a governor trip, return the prefix of results produced so far
    /// (flagged `truncated` with a [`crate::governor::Warning`]) instead
    /// of an error.
    pub partial_results: bool,
    /// Fault injection: panic inside a pooled scan worker. Exercises the
    /// panic-isolation path ([`EngineError::WorkerPanic`]) in tests; never
    /// set in production configs.
    pub inject_scan_panic: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            prioritize_pruning: true,
            partition_parallel: true,
            entity_pushdown: true,
            semi_join_pushdown: true,
            temporal_narrowing: true,
            late_materialization: true,
            scan_pool: true,
            shared_scan_pool: true,
            parallel_join: true,
            join_partitions: 0,
            parallel_join_min_work: 1024,
            parallel_index_min_build: 4096,
            time_bucket_join: true,
            partitioned_probe: true,
            sideways_filters: true,
            blocked_join_drive: true,
            join_block_tuples: 4096,
            plan_cache: true,
            compiled_projection: true,
            parallel_threshold: 8_192,
            max_intermediate: 4_000_000,
            deadline_ms: 0,
            memory_budget_bytes: 0,
            partial_results: false,
            inject_scan_panic: false,
        }
    }
}

impl EngineConfig {
    /// A configuration with every domain-specific optimization disabled —
    /// scheduling degrades to source order with no pushdown, mirroring how
    /// a general-purpose engine would execute the synthesized plan.
    pub fn unoptimized() -> Self {
        EngineConfig {
            parallelism: 1,
            prioritize_pruning: false,
            partition_parallel: false,
            entity_pushdown: false,
            semi_join_pushdown: false,
            temporal_narrowing: false,
            late_materialization: false,
            scan_pool: false,
            shared_scan_pool: false,
            parallel_join: false,
            join_partitions: 0,
            parallel_join_min_work: 1024,
            parallel_index_min_build: 4096,
            time_bucket_join: false,
            partitioned_probe: false,
            sideways_filters: false,
            blocked_join_drive: false,
            join_block_tuples: 4096,
            plan_cache: false,
            compiled_projection: false,
            parallel_threshold: usize::MAX,
            max_intermediate: 4_000_000,
            deadline_ms: 0,
            memory_budget_bytes: 0,
            partial_results: false,
            inject_scan_panic: false,
        }
    }

    /// The execution budget implied by the configuration's governor
    /// tunables (`deadline_ms`, `memory_budget_bytes`, `partial_results`).
    /// Unlimited when none are set.
    pub fn budget(&self) -> crate::governor::ExecBudget {
        let mut b =
            crate::governor::ExecBudget::unlimited().with_partial_results(self.partial_results);
        if self.deadline_ms > 0 {
            b = b.with_deadline(std::time::Duration::from_millis(self.deadline_ms));
        }
        if self.memory_budget_bytes > 0 {
            b = b.with_memory_bytes(self.memory_budget_bytes);
        }
        b
    }
}

/// The AIQL query engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    /// Persistent scan pool, spawned lazily on the first parallel query.
    /// The cell itself is shared, so clones of an engine — whenever they
    /// were made — use one pool.
    pool: std::sync::Arc<std::sync::OnceLock<std::sync::Arc<crate::pool::ScanPool>>>,
    /// Cross-query plan-resolution cache, shared by clones the same way.
    plan_cache: std::sync::Arc<crate::schedule::PlanCache>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            pool: std::sync::Arc::new(std::sync::OnceLock::new()),
            plan_cache: std::sync::Arc::new(crate::schedule::PlanCache::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The plan-resolution cache handle, if the configuration wants one.
    fn cache(&self) -> Option<std::sync::Arc<crate::schedule::PlanCache>> {
        self.config.plan_cache.then(|| self.plan_cache.clone())
    }

    /// The persistent scan pool handle, if the configuration wants one:
    /// the process-wide shared executor by default, or a private pool of
    /// exactly `parallelism` workers when `shared_scan_pool` is off.
    fn pool(&self) -> Option<std::sync::Arc<crate::pool::ScanPool>> {
        if !self.config.scan_pool || !self.config.partition_parallel || self.config.parallelism <= 1
        {
            return None;
        }
        if self.config.shared_scan_pool {
            return Some(crate::pool::shared());
        }
        Some(
            self.pool
                .get_or_init(|| {
                    std::sync::Arc::new(crate::pool::ScanPool::new(self.config.parallelism))
                })
                .clone(),
        )
    }

    /// `(hits, misses)` of the engine's plan-resolution cache, for tests
    /// and benches asserting cache behavior (e.g. that a cached plan
    /// survives an ingest into a partition it never read).
    pub fn plan_cache_counters(&self) -> (u64, u64) {
        self.plan_cache.counters()
    }

    /// The governor for a budget: `Some` only when the budget actually
    /// limits something, so unbudgeted queries keep the zero-overhead
    /// ungoverned path.
    fn governor(&self, budget: &ExecBudget) -> Option<std::sync::Arc<Governor>> {
        budget
            .is_limited()
            .then(|| std::sync::Arc::new(Governor::new(budget)))
    }

    /// Parses and executes AIQL query text against a store.
    pub fn execute_text(
        &self,
        store: &EventStore,
        source: &str,
    ) -> Result<ResultTable, EngineError> {
        let query = parse_query(source)?;
        self.execute(store, &query)
    }

    /// Parses and executes AIQL query text under an explicit execution
    /// budget (see [`Engine::execute_with_budget`]).
    pub fn execute_text_with_budget(
        &self,
        store: &EventStore,
        source: &str,
        budget: &ExecBudget,
    ) -> Result<ResultTable, EngineError> {
        let query = parse_query(source)?;
        self.execute_with_budget(store, &query, budget)
    }

    /// Executes a parsed query under the configuration's implied budget
    /// (`deadline_ms` / `memory_budget_bytes` / `partial_results`; all off
    /// by default, i.e. ungoverned).
    pub fn execute(&self, store: &EventStore, query: &Query) -> Result<ResultTable, EngineError> {
        self.execute_with_budget(store, query, &self.config.budget())
    }

    /// Executes a parsed query under an explicit execution budget: a
    /// wall-clock deadline, a cooperative [`crate::governor::CancelToken`],
    /// and/or a byte budget on intermediate state, checked cooperatively
    /// at batch boundaries throughout the pipeline. With
    /// `partial_results`, a tripped budget returns the prefix of results
    /// produced so far (flagged with a warning) instead of an error.
    ///
    /// Anomaly queries run their aggregation loop ungoverned for now: their
    /// per-partition pass has no intermediate frontier to budget, so only
    /// multievent and dependency queries consult the governor.
    pub fn execute_with_budget(
        &self,
        store: &EventStore,
        query: &Query,
        budget: &ExecBudget,
    ) -> Result<ResultTable, EngineError> {
        match query {
            Query::Multievent(m) => {
                let a = analyze::analyze_multievent(m, store)?;
                MultieventExec::new(store, &a, &self.config)
                    .with_pool(self.pool())
                    .with_plan_cache(self.cache())
                    .with_governor(self.governor(budget))
                    .run()
            }
            Query::Dependency(d) => {
                // §2.3: compile to a semantically equivalent multievent query.
                let m = aiql_lang::dependency_to_multievent(d)?;
                let a = analyze::analyze_multievent(&m, store)?;
                MultieventExec::new(store, &a, &self.config)
                    .with_pool(self.pool())
                    .with_plan_cache(self.cache())
                    .with_governor(self.governor(budget))
                    .run()
            }
            Query::Anomaly(anom) => {
                let a = analyze::analyze_anomaly(anom, store)?;
                anomaly::run_anomaly_pooled(store, &a, &self.config, self.pool())
            }
        }
    }

    /// Executes a multievent query and returns execution statistics
    /// (pattern order, per-pattern fetch counts) for benchmarking.
    pub fn execute_multievent_with_stats(
        &self,
        store: &EventStore,
        m: &aiql_lang::MultieventQuery,
    ) -> Result<(ResultTable, ExecStats), EngineError> {
        let a = analyze::analyze_multievent(m, store)?;
        MultieventExec::new(store, &a, &self.config)
            .with_pool(self.pool())
            .with_plan_cache(self.cache())
            .with_governor(self.governor(&self.config.budget()))
            .run_with_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_scan_pool_even_before_first_use() {
        let e1 = Engine::new(EngineConfig {
            parallelism: 2,
            shared_scan_pool: false, // exercise the private-pool override
            ..EngineConfig::default()
        });
        let e2 = e1.clone(); // cloned before the pool ever spun up
        let p1 = e1.pool().expect("parallel config wants a pool");
        let p2 = e2.pool().expect("parallel config wants a pool");
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn independent_engines_share_the_process_wide_pool() {
        let e1 = Engine::new(EngineConfig {
            parallelism: 2,
            ..EngineConfig::default()
        });
        let e2 = Engine::new(EngineConfig {
            parallelism: 4,
            ..EngineConfig::default()
        });
        let p1 = e1.pool().expect("parallel config wants a pool");
        let p2 = e2.pool().expect("parallel config wants a pool");
        assert!(
            std::sync::Arc::ptr_eq(&p1, &p2),
            "default-config engines must use one process-wide executor"
        );
        // A private-pool engine opts out of the shared executor.
        let private = Engine::new(EngineConfig {
            parallelism: 2,
            shared_scan_pool: false,
            ..EngineConfig::default()
        });
        let p3 = private.pool().expect("parallel config wants a pool");
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
        assert_eq!(p3.threads(), 2);
    }

    #[test]
    fn serial_config_gets_no_pool() {
        let e = Engine::new(EngineConfig {
            parallelism: 1,
            ..EngineConfig::default()
        });
        assert!(e.pool().is_none());
        let unopt = Engine::new(EngineConfig::unoptimized());
        assert!(unopt.pool().is_none());
    }
}
