//! Sliding-window anomaly query execution.
//!
//! Per §2.3: "for an anomaly query, the engine partitions the events into
//! sliding windows by the timestamp, computes the aggregate results, and
//! enforces the filters." Windows may overlap (`length > step`), events
//! contribute to every window containing them, and per-group aggregate
//! history is retained so `having` clauses can reference `alias[k]` — the
//! aggregate value `k` windows earlier, the language's hook for
//! frequency-based behavioral models (e.g. moving averages).

use std::collections::HashMap;

use aiql_lang::Expr;
use aiql_model::{Duration, Timestamp, Value};
use aiql_storage::EventStore;

use crate::analyze::AnalyzedAnomaly;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::eval::{self, RowCtx};
use crate::exec::{MultieventExec, Tuple};
use crate::result::ResultTable;

/// Executes an anomaly query end to end.
pub fn run_anomaly(
    store: &EventStore,
    a: &AnalyzedAnomaly,
    config: &EngineConfig,
) -> Result<ResultTable, EngineError> {
    run_anomaly_pooled(store, a, config, None)
}

/// [`run_anomaly`] with an optional persistent scan pool for the candidate
/// fetch.
pub fn run_anomaly_pooled(
    store: &EventStore,
    a: &AnalyzedAnomaly,
    config: &EngineConfig,
    pool: Option<std::sync::Arc<crate::pool::ScanPool>>,
) -> Result<ResultTable, EngineError> {
    // Phase 1: fetch matching events with the multievent machinery (one
    // pattern, so tuples are single events).
    let exec = MultieventExec::new(store, &a.base, config).with_pool(pool);
    let (tuples, truncated, _) = exec.match_tuples()?;
    run_anomaly_over_tuples(store, a, tuples, truncated)
}

/// Runs the sliding-window aggregation over already-fetched tuples (shared
/// with the baseline engines, which fetch candidates their own way).
pub fn run_anomaly_over_tuples(
    store: &EventStore,
    a: &AnalyzedAnomaly,
    tuples: Vec<Tuple>,
    truncated: bool,
) -> Result<ResultTable, EngineError> {
    run_anomaly_windows(store, a, tuples, truncated, false)
}

/// Like [`run_anomaly_over_tuples`] but assigning events to windows by a
/// per-window linear filter instead of sort + binary search — the cost
/// model of a general-purpose engine nested-looping `generate_series`
/// against the event set (used by the baselines).
pub fn run_anomaly_over_tuples_naive(
    store: &EventStore,
    a: &AnalyzedAnomaly,
    tuples: Vec<Tuple>,
    truncated: bool,
) -> Result<ResultTable, EngineError> {
    run_anomaly_windows(store, a, tuples, truncated, true)
}

fn run_anomaly_windows(
    store: &EventStore,
    a: &AnalyzedAnomaly,
    mut tuples: Vec<Tuple>,
    truncated: bool,
    naive_window_assignment: bool,
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a
        .base
        .ret
        .items
        .iter()
        .map(|i| {
            i.alias
                .clone()
                .unwrap_or_else(|| aiql_lang::pretty::print_expr(&i.expr))
        })
        .collect();
    let mut table = ResultTable::new(columns);
    table.truncated = truncated;
    if tuples.is_empty() {
        return Ok(table);
    }
    tuples.sort_by_key(|t| t.events[0].map(|e| e.start_time).unwrap_or(Timestamp(0)));

    // Window range: the query's global window when bounded, else the data's.
    let first = tuples
        .first()
        .and_then(|t| t.events[0])
        .expect("nonempty tuples");
    let last = tuples
        .last()
        .and_then(|t| t.events[0])
        .expect("nonempty tuples");
    let range_start = if a.base.globals.window.start == Timestamp::MIN {
        first.start_time
    } else {
        a.base.globals.window.start
    };
    let range_end = if a.base.globals.window.end == Timestamp::MAX {
        last.start_time + Duration(1)
    } else {
        a.base.globals.window.end
    };
    let step = a.window_spec.step.micros();
    let length = a.window_spec.length.micros();

    let aggs = crate::exec::collect_aggs(&a.base);
    // Rewrite every aggregate node into a synthetic alias reference so the
    // per-window evaluation is a hash lookup instead of a structural-key
    // computation (this loop runs per window × group).
    let agg_aliases: Vec<String> = (0..aggs.len()).map(|i| format!("__agg{i}")).collect();
    let rewritten_items: Vec<(Option<String>, Expr)> = a
        .base
        .ret
        .items
        .iter()
        .map(|item| {
            (
                item.alias.clone(),
                replace_aggs(&item.expr, &aggs, &agg_aliases),
            )
        })
        .collect();
    let rewritten_having: Option<Expr> = a
        .base
        .having
        .as_ref()
        .map(|h| replace_aggs(h, &aggs, &agg_aliases));
    // Aliased aggregate values per window per group, for history access:
    // window index → group key → alias → value.
    let mut window_history: Vec<HashMap<String, HashMap<String, Value>>> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();

    let start_times: Vec<i64> = tuples
        .iter()
        .map(|t| t.events[0].expect("single pattern").start_time.micros())
        .collect();

    // Per-tuple group keys and aggregate inputs are window-independent;
    // compute them once instead of per overlapping window.
    let mut tuple_keys: Vec<String> = Vec::with_capacity(tuples.len());
    let mut tuple_inputs: Vec<Vec<Value>> = Vec::with_capacity(tuples.len());
    for t in &tuples {
        let ctx = tuple_ctx_for(&a.base, t);
        let mut key_vals = Vec::with_capacity(a.base.group_by.len());
        for g in &a.base.group_by {
            key_vals.push(eval::eval(g, store, &ctx)?);
        }
        tuple_keys.push(ResultTable::row_key(&key_vals));
        let mut inputs = Vec::with_capacity(aggs.len());
        for (_, _, arg) in &aggs {
            inputs.push(eval::eval(arg, store, &ctx)?);
        }
        tuple_inputs.push(inputs);
    }

    // History lags referenced by the having clause (computed once).
    let mut lags: Vec<(String, u32)> = Vec::new();
    if let Some(h) = &rewritten_having {
        h.visit(&mut |e| {
            if let Expr::History { name, lag } = e {
                if *lag > 0 && !lags.contains(&(name.clone(), *lag)) {
                    lags.push((name.clone(), *lag));
                }
            }
        });
    }

    let mut indices_buf: Vec<usize> = Vec::new();
    let mut w_start = range_start.micros();
    while w_start < range_end.micros() {
        let w_end = w_start + length;
        // Tuples with start_time in [w_start, w_end).
        indices_buf.clear();
        if naive_window_assignment {
            // Nested-loop window assignment: touch every event per window —
            // the cost model of generate_series × events in SQL.
            for (i, &t) in start_times.iter().enumerate() {
                if t >= w_start && t < w_end {
                    indices_buf.push(i);
                }
            }
        } else {
            // Sorted input + binary search: the domain-aware plan.
            let lo = start_times.partition_point(|&t| t < w_start);
            let hi = start_times.partition_point(|&t| t < w_end);
            indices_buf.extend(lo..hi);
        }
        let k = window_history.len();
        let mut this_window: HashMap<String, HashMap<String, Value>> = HashMap::new();

        if !indices_buf.is_empty() {
            // Group by precomputed keys, accumulating precomputed inputs.
            let mut order: Vec<&str> = Vec::new();
            let mut groups: HashMap<&str, (usize, Vec<PublicAgg>)> = HashMap::new();
            for &ti in &indices_buf {
                let key = tuple_keys[ti].as_str();
                let entry = match groups.get_mut(key) {
                    Some(e) => e,
                    None => {
                        order.push(key);
                        groups
                            .entry(key)
                            .or_insert((ti, aggs.iter().map(|_| PublicAgg::default()).collect()))
                    }
                };
                for (acc, v) in entry.1.iter_mut().zip(&tuple_inputs[ti]) {
                    acc.add(*v);
                }
            }
            for key in order {
                let (rep_idx, accs) = groups.remove(key).expect("group exists");
                let rep = &tuples[rep_idx];
                let mut ctx = tuple_ctx_for(&a.base, rep);
                for ((name, (_, func, _)), acc) in
                    agg_aliases.iter().zip(aggs.iter()).zip(accs.iter())
                {
                    ctx.aliases.insert(name.clone(), acc.finalize_public(*func));
                }
                // Alias env from return items (needed by having and by
                // future windows' history lookups).
                for (alias, expr) in &rewritten_items {
                    if let Some(alias) = alias {
                        let v = eval::eval(expr, store, &ctx)?;
                        ctx.aliases.insert(alias.clone(), v);
                    }
                }
                // Wire up history: alias values from windows k-1, k-2, …
                for (name, lag) in &lags {
                    let v = window_history
                        .get(k.wrapping_sub(*lag as usize))
                        .and_then(|w| w.get(key))
                        .and_then(|m| m.get(name))
                        .copied()
                        .unwrap_or(Value::Float(0.0));
                    ctx.history.insert((name.clone(), *lag), v);
                }
                let keep = match &rewritten_having {
                    Some(h) => eval::eval(h, store, &ctx)?.truthy(),
                    None => true,
                };
                // Only groups passing the filter materialize a row — the
                // common case (quiet background window) stops here.
                if keep {
                    let mut row = Vec::with_capacity(rewritten_items.len());
                    for (_, expr) in &rewritten_items {
                        row.push(eval::eval(expr, store, &ctx)?);
                    }
                    rows.push(row);
                }
                this_window.insert(key.to_string(), std::mem::take(&mut ctx.aliases));
            }
        }
        window_history.push(this_window);
        w_start += step;
    }

    if a.base.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(ResultTable::row_key(r)));
    }
    table.rows = rows;
    Ok(table)
}

/// Structurally replaces every aggregate node with a lag-0 history access
/// to its synthetic alias (aggregate identity matched by canonical key).
fn replace_aggs(e: &Expr, aggs: &[(String, aiql_lang::AggFunc, Expr)], names: &[String]) -> Expr {
    match e {
        Expr::Agg { .. } => {
            let key = crate::eval::agg_key(e);
            let idx = aggs
                .iter()
                .position(|(k, _, _)| *k == key)
                .expect("aggregate collected during analysis");
            Expr::History {
                name: names[idx].clone(),
                lag: 0,
            }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(replace_aggs(lhs, aggs, names)),
            rhs: Box::new(replace_aggs(rhs, aggs, names)),
        },
        Expr::Neg(inner) => Expr::Neg(Box::new(replace_aggs(inner, aggs, names))),
        other => other.clone(),
    }
}

fn tuple_ctx_for<'a>(base: &'a crate::analyze::AnalyzedMultievent, t: &Tuple) -> RowCtx<'a> {
    let mut ctx = RowCtx::default();
    for (vi, var) in base.vars.iter().enumerate() {
        if let Some(id) = t.vars[vi] {
            ctx.var_entity.insert(var.name.as_str(), id);
        }
    }
    for (pi, p) in base.patterns.iter().enumerate() {
        if let Some(e) = t.events[pi] {
            ctx.events.insert(p.name.as_str(), e);
        }
    }
    ctx
}

/// A small standalone aggregate accumulator (the exec one is private).
#[derive(Debug, Clone, Default)]
pub struct PublicAgg {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
    any_float: bool,
}

impl PublicAgg {
    /// Adds one value (Null is skipped).
    pub fn add(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        if let Some(x) = v.as_f64() {
            self.count += 1;
            self.sum += x;
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
            if !matches!(v, Value::Int(_)) {
                self.any_float = true;
            }
        }
    }

    /// Finalizes for an aggregate function.
    pub fn finalize_public(&self, func: aiql_lang::AggFunc) -> Value {
        use aiql_lang::AggFunc::*;
        match func {
            Count => Value::Int(self.count as i64),
            Sum => {
                if self.any_float {
                    Value::Float(self.sum)
                } else {
                    Value::Int(self.sum as i64)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.map(Value::Float).unwrap_or(Value::Null),
            Max => self.max.map(Value::Float).unwrap_or(Value::Null),
        }
    }
}
