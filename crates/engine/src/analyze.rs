//! Semantic analysis: resolving a parsed query against a store.
//!
//! Analysis (a) validates the query — variable kinds are consistent,
//! subjects are processes, operations exist and fit their object kinds,
//! temporal relations reference declared events — and (b) lowers textual
//! constraints to typed [`EntityConstraint`]s: string literals with
//! wildcards become `LIKE` patterns, IP-attribute strings parse to
//! addresses, and exact strings resolve through the store's dictionary
//! (an exact string absent from the dictionary makes the constraint
//! *unsatisfiable*, which the scheduler exploits as maximal pruning power).

use std::collections::HashMap;

use aiql_lang::{
    AnomalyQuery, AttrConstraint, CmpOp, DeclConstraint, EntityDecl, Expr, Literal,
    MultieventQuery, ReturnClause, TemporalOp, WindowSpec,
};
use aiql_model::{
    AgentId, EntityKind, Interner, IpV4, Operation, StringPattern, TimeWindow, Value,
};
use aiql_storage::{AttrCmp, EntityConstraint, EventStore, OpSet};

use crate::error::EngineError;

/// A query variable with its merged constraints from every declaration site.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source variable name.
    pub name: String,
    /// Resolved entity kind.
    pub kind: EntityKind,
    /// Conjunction of all constraints on the variable.
    pub constraints: Vec<EntityConstraint>,
    /// True when some constraint can never match (e.g. an exact name not
    /// present in the dictionary).
    pub unsatisfiable: bool,
}

/// One analyzed event pattern.
#[derive(Debug, Clone)]
pub struct AnalyzedPattern {
    /// Position in the query (execution may reorder; results do not).
    pub index: usize,
    /// Event variable name (synthesized `evtN` when the query omits `as`).
    pub name: String,
    /// Subject variable index into [`AnalyzedMultievent::vars`].
    pub subject: usize,
    /// Object variable index.
    pub object: usize,
    /// Operations to match.
    pub ops: OpSet,
}

/// Analyzed global clause.
#[derive(Debug, Clone)]
pub struct AnalyzedGlobals {
    /// Temporal constraint.
    pub window: TimeWindow,
    /// Spatial constraint (`None` = all hosts; `Some([])` = unsatisfiable).
    pub agents: Option<Vec<AgentId>>,
    /// Event-level residual predicates (attr, op, value) checked per event.
    pub residual: Vec<(String, CmpOp, Value)>,
}

/// A temporal relationship between two pattern indices.
#[derive(Debug, Clone)]
pub struct TemporalConstraint {
    /// Index of the left pattern.
    pub left: usize,
    /// The operator.
    pub op: TemporalOp,
    /// Index of the right pattern.
    pub right: usize,
}

/// One temporal relation of a join step, resolved against the set of
/// already-placed patterns: `other` is the placed pattern on the far side,
/// `cand_is_left` says which side the step's candidate occupies, and
/// `bound` is the optional gap bound in microseconds. `before` and `after`
/// normalize to the same left-ends-no-later-than-right-starts form the
/// join verifies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepRel {
    /// The already-placed pattern on the other side of the relation.
    pub(crate) other: usize,
    /// Whether the step's candidate is the *left* (earlier) event.
    pub(crate) cand_is_left: bool,
    /// Maximum gap between left end and right start, in microseconds.
    pub(crate) bound: Option<i64>,
}

/// A fully analyzed multievent query, ready for scheduling and execution.
#[derive(Debug, Clone)]
pub struct AnalyzedMultievent {
    /// All entity variables.
    pub vars: Vec<VarInfo>,
    /// All event patterns in source order.
    pub patterns: Vec<AnalyzedPattern>,
    /// Temporal relationships (pattern-index based).
    pub temporal: Vec<TemporalConstraint>,
    /// Global constraints.
    pub globals: AnalyzedGlobals,
    /// Projection (AST reused; evaluation resolves variables dynamically).
    pub ret: ReturnClause,
    /// Grouping keys.
    pub group_by: Vec<Expr>,
    /// Post-aggregation filter.
    pub having: Option<Expr>,
    /// Ordering keys.
    pub order_by: Vec<aiql_lang::OrderItem>,
    /// Row limit.
    pub limit: Option<u64>,
}

impl AnalyzedMultievent {
    /// The temporal relations the join step placing pattern `i` must
    /// verify, given which patterns are already placed — the statically
    /// known subset the per-tuple probe checks (self-relations and
    /// relations to unplaced patterns never fire at this step).
    pub(crate) fn step_relations(&self, i: usize, placed: &[bool]) -> Vec<StepRel> {
        let mut rels = Vec::new();
        for rel in &self.temporal {
            let (l, r, bound) = match &rel.op {
                TemporalOp::Before(b) => (rel.left, rel.right, *b),
                // (after is before with sides swapped)
                TemporalOp::After(b) => (rel.right, rel.left, *b),
            };
            let bound = bound.map(|d| d.micros());
            if l == i && r != i && placed[r] {
                rels.push(StepRel {
                    other: r,
                    cand_is_left: true,
                    bound,
                });
            } else if r == i && l != i && placed[l] {
                rels.push(StepRel {
                    other: l,
                    cand_is_left: false,
                    bound,
                });
            }
        }
        rels
    }
}

/// An analyzed anomaly query.
#[derive(Debug, Clone)]
pub struct AnalyzedAnomaly {
    /// The underlying single-pattern multievent skeleton.
    pub base: AnalyzedMultievent,
    /// Sliding-window specification.
    pub window_spec: WindowSpec,
}

/// Analyzes a multievent query against a store.
pub fn analyze_multievent(
    q: &MultieventQuery,
    store: &EventStore,
) -> Result<AnalyzedMultievent, EngineError> {
    let globals = analyze_globals(&q.globals, store.interner())?;
    let mut vars: Vec<VarInfo> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut patterns = Vec::with_capacity(q.patterns.len());
    let mut event_index: HashMap<String, usize> = HashMap::new();

    for (i, p) in q.patterns.iter().enumerate() {
        let subject = bind_var(&p.subject, &mut vars, &mut var_index, store.interner())?;
        if vars[subject].kind != EntityKind::Process {
            return Err(EngineError::Analysis(format!(
                "pattern {} subject `{}` must be a process",
                i + 1,
                p.subject.var
            )));
        }
        let object = bind_var(&p.object, &mut vars, &mut var_index, store.interner())?;
        let mut ops = OpSet::EMPTY;
        for op_name in &p.ops {
            let op = Operation::parse(op_name)
                .map_err(|_| EngineError::Analysis(format!("unknown operation `{op_name}`")))?;
            let object_kind = vars[object].kind;
            if !op.allowed_object_kinds().contains(&object_kind) {
                return Err(EngineError::Analysis(format!(
                    "operation `{op_name}` cannot target a {} entity (`{}`)",
                    object_kind.keyword(),
                    p.object.var
                )));
            }
            ops = ops.with(op);
        }
        let name = p.name.clone().unwrap_or_else(|| format!("evt{}", i + 1));
        if event_index.insert(name.clone(), i).is_some() {
            return Err(EngineError::Analysis(format!(
                "duplicate event variable `{name}`"
            )));
        }
        patterns.push(AnalyzedPattern {
            index: i,
            name,
            subject,
            object,
            ops,
        });
    }

    let mut temporal = Vec::with_capacity(q.temporal.len());
    for t in &q.temporal {
        let left = *event_index.get(&t.left).ok_or_else(|| {
            EngineError::Analysis(format!(
                "unknown event variable `{}` in with clause",
                t.left
            ))
        })?;
        let right = *event_index.get(&t.right).ok_or_else(|| {
            EngineError::Analysis(format!(
                "unknown event variable `{}` in with clause",
                t.right
            ))
        })?;
        if left == right {
            return Err(EngineError::Analysis(format!(
                "temporal relation relates `{}` to itself",
                t.left
            )));
        }
        temporal.push(TemporalConstraint {
            left,
            op: t.op.clone(),
            right,
        });
    }

    // Validate return/group/having references.
    let known = |name: &str| var_index.contains_key(name) || event_index.contains_key(name);
    let mut aliases: Vec<String> = Vec::new();
    for item in &q.ret.items {
        validate_expr(&item.expr, &known, &aliases, false)?;
        if let Some(a) = &item.alias {
            aliases.push(a.clone());
        }
    }
    for g in &q.group_by {
        validate_expr(g, &known, &aliases, false)?;
    }
    if let Some(h) = &q.having {
        validate_expr(h, &known, &aliases, false)?;
    }

    Ok(AnalyzedMultievent {
        vars,
        patterns,
        temporal,
        globals,
        ret: q.ret.clone(),
        group_by: q.group_by.clone(),
        having: q.having.clone(),
        order_by: q.order_by.clone(),
        limit: q.limit,
    })
}

/// Analyzes an anomaly query (exactly one event pattern, a window spec, and
/// optional history references in `having`).
pub fn analyze_anomaly(
    q: &AnomalyQuery,
    store: &EventStore,
) -> Result<AnalyzedAnomaly, EngineError> {
    let window_spec = q
        .globals
        .window
        .ok_or_else(|| EngineError::Analysis("anomaly query requires a window spec".into()))?;
    if !window_spec.length.is_positive() || !window_spec.step.is_positive() {
        return Err(EngineError::Analysis(
            "window length and step must be positive".into(),
        ));
    }
    if q.patterns.len() != 1 {
        return Err(EngineError::Analysis(format!(
            "anomaly queries take exactly one event pattern, found {}",
            q.patterns.len()
        )));
    }
    let skeleton = MultieventQuery {
        globals: aiql_lang::Globals {
            at: q.globals.at.clone(),
            constraints: q.globals.constraints.clone(),
            window: None,
        },
        patterns: q.patterns.clone(),
        temporal: Vec::new(),
        ret: q.ret.clone(),
        group_by: q.group_by.clone(),
        having: None, // having is window-scoped; validated separately below
        order_by: Vec::new(),
        limit: None,
    };
    let mut base = analyze_multievent(&skeleton, store)?;
    // Validate having with history allowed.
    if let Some(h) = &q.having {
        let aliases: Vec<String> = q.ret.items.iter().filter_map(|i| i.alias.clone()).collect();
        let known = |name: &str| {
            base.vars.iter().any(|v| v.name == name) || base.patterns.iter().any(|p| p.name == name)
        };
        validate_expr(h, &known, &aliases, true)?;
        base.having = Some(h.clone());
    }
    Ok(AnalyzedAnomaly { base, window_spec })
}

fn validate_expr(
    e: &Expr,
    known_var: &dyn Fn(&str) -> bool,
    aliases: &[String],
    allow_history: bool,
) -> Result<(), EngineError> {
    let mut err = None;
    e.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            Expr::Ref { var, .. } if !known_var(var) && !aliases.iter().any(|a| a == var) => {
                err = Some(EngineError::Analysis(format!("unknown variable `{var}`")));
            }
            Expr::History { name, .. } => {
                if !allow_history {
                    err = Some(EngineError::Analysis(format!(
                        "historical access `{name}[…]` is only allowed in anomaly having clauses"
                    )));
                } else if !aliases.iter().any(|a| a == name) {
                    err = Some(EngineError::Analysis(format!(
                        "historical access references unknown aggregate alias `{name}`"
                    )));
                }
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn bind_var(
    decl: &EntityDecl,
    vars: &mut Vec<VarInfo>,
    var_index: &mut HashMap<String, usize>,
    interner: &Interner,
) -> Result<usize, EngineError> {
    let kind = decl.kind.kind();
    let idx = match var_index.get(&decl.var) {
        Some(&i) => {
            if vars[i].kind != kind {
                return Err(EngineError::Analysis(format!(
                    "variable `{}` declared as both {} and {}",
                    decl.var,
                    vars[i].kind.keyword(),
                    kind.keyword()
                )));
            }
            i
        }
        None => {
            let i = vars.len();
            vars.push(VarInfo {
                name: decl.var.clone(),
                kind,
                constraints: Vec::new(),
                unsatisfiable: false,
            });
            var_index.insert(decl.var.clone(), i);
            i
        }
    };
    for c in &decl.constraints {
        let (attr, op, lit) = match c {
            DeclConstraint::Default(lit) => (String::new(), CmpOp::Eq, lit.clone()),
            DeclConstraint::Attr(AttrConstraint { attr, op, value }) => {
                (attr.clone(), *op, value.clone())
            }
        };
        match lower_constraint(kind, &attr, op, &lit, interner)? {
            Lowered::Constraint(ec) => vars[idx].constraints.push(ec),
            Lowered::AlwaysTrue => {}
            Lowered::AlwaysFalse => vars[idx].unsatisfiable = true,
        }
    }
    Ok(idx)
}

enum Lowered {
    Constraint(EntityConstraint),
    AlwaysTrue,
    AlwaysFalse,
}

/// Whether an attribute holds an IP address.
fn is_ip_attr(kind: EntityKind, attr: &str) -> bool {
    kind == EntityKind::NetConn && matches!(attr, "" | "dstip" | "dst_ip" | "srcip" | "src_ip")
}

fn lower_constraint(
    kind: EntityKind,
    attr: &str,
    op: CmpOp,
    lit: &Literal,
    interner: &Interner,
) -> Result<Lowered, EngineError> {
    let make = |cmp: AttrCmp| {
        Lowered::Constraint(if attr.is_empty() {
            EntityConstraint::on_default(cmp)
        } else {
            EntityConstraint::on(attr, cmp)
        })
    };
    let lowered = match lit {
        Literal::Str(s) => {
            // `_` alone does not make a pattern: artifact names routinely
            // contain underscores (`info_stealer`). Only `%` opts in to
            // LIKE matching (where `_` then acts as a one-char wildcard).
            let wild = s.contains('%');
            if is_ip_attr(kind, attr) {
                if wild {
                    if op != CmpOp::Eq {
                        return Err(EngineError::Analysis(format!(
                            "pattern constraint on `{attr}` requires `=`"
                        )));
                    }
                    make(AttrCmp::Like(StringPattern::new(s)))
                } else {
                    let ip = IpV4::parse(s).map_err(EngineError::Model)?;
                    make(numeric_cmp(op, Value::Ip(ip)))
                }
            } else if wild {
                if op != CmpOp::Eq {
                    return Err(EngineError::Analysis(format!(
                        "pattern constraint {s:?} requires `=`"
                    )));
                }
                make(AttrCmp::Like(StringPattern::new(s)))
            } else {
                match op {
                    CmpOp::Eq => match interner.get(s) {
                        Some(sym) => make(AttrCmp::Eq(Value::Str(sym))),
                        // Exact string not in the dictionary: nothing matches.
                        None => Lowered::AlwaysFalse,
                    },
                    CmpOp::Ne => match interner.get(s) {
                        Some(sym) => make(AttrCmp::Ne(Value::Str(sym))),
                        // Nothing carries this string, so `!=` always holds.
                        None => Lowered::AlwaysTrue,
                    },
                    _ => {
                        return Err(EngineError::Analysis(format!(
                            "ordered comparison `{}` is not defined on string attribute `{attr}`",
                            op.symbol()
                        )))
                    }
                }
            }
        }
        Literal::Int(i) => make(numeric_cmp(op, Value::Int(*i))),
        Literal::Float(x) => make(numeric_cmp(op, Value::Float(*x))),
    };
    Ok(lowered)
}

fn numeric_cmp(op: CmpOp, v: Value) -> AttrCmp {
    match op {
        CmpOp::Eq => AttrCmp::Eq(v),
        CmpOp::Ne => AttrCmp::Ne(v),
        CmpOp::Lt => AttrCmp::Lt(v),
        CmpOp::Le => AttrCmp::Le(v),
        CmpOp::Gt => AttrCmp::Gt(v),
        CmpOp::Ge => AttrCmp::Ge(v),
    }
}

fn analyze_globals(
    g: &aiql_lang::Globals,
    interner: &Interner,
) -> Result<AnalyzedGlobals, EngineError> {
    let window = match &g.at {
        Some(at) => {
            let first = TimeWindow::parse_day(&at.start).map_err(EngineError::Model)?;
            match &at.end {
                Some(end) => {
                    let last = TimeWindow::parse_day(end).map_err(EngineError::Model)?;
                    if last.end < first.start {
                        return Err(EngineError::Analysis(format!(
                            "at-range end {end:?} precedes start {:?}",
                            at.start
                        )));
                    }
                    TimeWindow::new(first.start, last.end)
                }
                None => first,
            }
        }
        None => TimeWindow::ALL,
    };
    let mut agents: Option<Vec<AgentId>> = None;
    let mut residual = Vec::new();
    for c in &g.constraints {
        if c.attr == "agentid" && c.op == CmpOp::Eq {
            let id = match &c.value {
                Literal::Int(i) if *i >= 0 => AgentId(*i as u32),
                other => {
                    return Err(EngineError::Analysis(format!(
                        "agentid must be a non-negative integer, found {other}"
                    )))
                }
            };
            agents = Some(match agents {
                // Conjunctive semantics: two different exact agents can never
                // both hold.
                Some(prev) if !prev.contains(&id) && !prev.is_empty() => vec![],
                _ => vec![id],
            });
        } else {
            let value = match &c.value {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => match interner.get(s) {
                    Some(sym) => Value::Str(sym),
                    None => Value::Null,
                },
            };
            residual.push((c.attr.clone(), c.op, value));
        }
    }
    Ok(AnalyzedGlobals {
        window,
        agents,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_lang::parse_query;
    use aiql_model::Timestamp;
    use aiql_storage::{EntitySpec, RawEvent};

    fn store() -> EventStore {
        let mut s = EventStore::default();
        s.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Read,
            EntitySpec::process(1, "C:\\Windows\\cmd.exe", "bob"),
            EntitySpec::file("C:\\data\\backup1.dmp", "bob"),
            Timestamp::from_secs(10),
            100,
        )]);
        s
    }

    fn analyze(src: &str) -> Result<AnalyzedMultievent, EngineError> {
        let q = parse_query(src).unwrap();
        let aiql_lang::Query::Multievent(m) = q else {
            panic!("expected multievent");
        };
        analyze_multievent(&m, &store())
    }

    #[test]
    fn merges_constraints_across_declaration_sites() {
        let a = analyze(
            r#"proc p1 write file f1["%backup1.dmp"] as e1
               proc p2 read file f1[owner = "bob"] as e2
               return f1"#,
        )
        .unwrap();
        let f1 = a.vars.iter().find(|v| v.name == "f1").unwrap();
        assert_eq!(f1.constraints.len(), 2);
    }

    #[test]
    fn wildcards_lower_to_like() {
        let a = analyze(r#"proc p["%cmd.exe"] read file f as e return p"#).unwrap();
        let p = &a.vars[0];
        assert!(matches!(p.constraints[0].cmp, AttrCmp::Like(_)));
    }

    #[test]
    fn exact_string_absent_from_dictionary_is_unsatisfiable() {
        let a = analyze(r#"proc p["no_such_binary.exe"] read file f as e return p"#).unwrap();
        assert!(a.vars[0].unsatisfiable);
    }

    #[test]
    fn exact_string_present_resolves_to_symbol() {
        let a = analyze(r#"proc p["C:\\Windows\\cmd.exe"] read file f as e return p"#).unwrap();
        assert!(!a.vars[0].unsatisfiable);
        assert!(matches!(
            a.vars[0].constraints[0].cmp,
            AttrCmp::Eq(Value::Str(_))
        ));
    }

    #[test]
    fn ip_literals_parse() {
        let a = analyze(r#"proc p write ip i[dstip = "10.0.4.129"] as e return p"#).unwrap();
        let i = a.vars.iter().find(|v| v.name == "i").unwrap();
        assert!(matches!(i.constraints[0].cmp, AttrCmp::Eq(Value::Ip(_))));
    }

    #[test]
    fn bad_ip_rejected() {
        let err = analyze(r#"proc p write ip i[dstip = "10.0.4"] as e return p"#).unwrap_err();
        assert!(err.to_string().contains("IPv4"), "{err}");
    }

    #[test]
    fn agentid_global_becomes_spatial_filter() {
        let a = analyze("agentid = 1 proc p read file f as e return p").unwrap();
        assert_eq!(a.globals.agents, Some(vec![AgentId(1)]));
    }

    #[test]
    fn at_range_widens_the_window() {
        let a = analyze(r#"(at "03/19/2018" to "03/21/2018") proc p read file f as e return p"#)
            .unwrap();
        assert_eq!(
            a.globals.window.start,
            aiql_model::Timestamp::from_date(2018, 3, 19)
        );
        assert_eq!(
            a.globals.window.end,
            aiql_model::Timestamp::from_date(2018, 3, 22) // end day inclusive
        );
    }

    #[test]
    fn at_range_backwards_rejected() {
        let err = analyze(r#"(at "03/21/2018" to "03/19/2018") proc p read file f as e return p"#)
            .unwrap_err();
        assert!(err.to_string().contains("precedes"), "{err}");
    }

    #[test]
    fn contradictory_agentids_unsatisfiable() {
        let a = analyze("agentid = 1 agentid = 2 proc p read file f as e return p").unwrap();
        assert_eq!(a.globals.agents, Some(vec![]));
    }

    #[test]
    fn kind_conflict_rejected() {
        let err =
            analyze("proc p read file x as e1 proc x read file f as e2 return p").unwrap_err();
        assert!(err.to_string().contains("declared as both"), "{err}");
    }

    #[test]
    fn op_object_kind_mismatch_rejected() {
        // `read`/`write` legally target files and connections, but
        // `execute` only files and `start` only processes.
        let err = analyze("proc p execute ip i as e return p").unwrap_err();
        assert!(err.to_string().contains("cannot target"), "{err}");
        let err = analyze("proc p start file f as e return p").unwrap_err();
        assert!(err.to_string().contains("cannot target"), "{err}");
        assert!(analyze("proc p read ip i as e return p").is_ok());
    }

    #[test]
    fn connect_to_process_allowed() {
        // Cross-host tracking edge.
        assert!(analyze("proc p connect proc q as e return p").is_ok());
    }

    #[test]
    fn unknown_temporal_event_rejected() {
        let err = analyze("proc p read file f as e1 with e1 before e9 return p").unwrap_err();
        assert!(err.to_string().contains("e9"), "{err}");
    }

    #[test]
    fn unknown_return_variable_rejected() {
        let err = analyze("proc p read file f as e return q").unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }

    #[test]
    fn history_rejected_outside_anomaly() {
        let err = analyze(
            "proc p read file f as e return p, avg(e.amount) as amt group by p having amt[1] > 0",
        )
        .unwrap_err();
        assert!(err.to_string().contains("anomaly"), "{err}");
    }

    #[test]
    fn anomaly_analysis_accepts_history() {
        let q = parse_query(
            r#"window = 1 min, step = 10 sec
               proc p write ip i as evt
               return p, avg(evt.amount) as amt
               group by p
               having amt > 2 * amt[1]"#,
        )
        .unwrap();
        let aiql_lang::Query::Anomaly(anom) = q else {
            panic!()
        };
        let a = analyze_anomaly(&anom, &store()).unwrap();
        assert!(a.base.having.is_some());
        assert_eq!(a.window_spec.step, aiql_model::Duration::from_secs(10));
    }

    #[test]
    fn anomaly_requires_single_pattern() {
        let q = parse_query(
            r#"window = 1 min, step = 10 sec
               proc p write ip i as e1
               proc p read file f as e2
               return p"#,
        )
        .unwrap();
        let aiql_lang::Query::Anomaly(anom) = q else {
            panic!()
        };
        assert!(analyze_anomaly(&anom, &store()).is_err());
    }
}
