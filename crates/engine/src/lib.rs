//! # aiql-engine
//!
//! The optimized AIQL query execution engine (§2.3 of the paper).
//!
//! Rather than weaving all joins and constraints of a multievent query into
//! one large SQL statement and relying on a general-purpose planner, the
//! engine synthesizes **one data query per event pattern** and schedules
//! their execution with two domain-specific insights:
//!
//! 1. **Pruning-power priority** ([`schedule`]): patterns whose constraints
//!    are most selective (estimated from the entity dictionary and segment
//!    statistics) execute first, and their bindings are pushed into later
//!    data queries as entity-id semi-joins — irrelevant events are discarded
//!    as early as possible.
//! 2. **Temporal/spatial partitioning** ([`op`]): each data query is
//!    split along the hypertable's ⟨time-bucket, agent⟩ partitions and the
//!    partitions are scanned in parallel on a process-wide shared worker
//!    pool ([`pool`]); the multi-way join itself partitions its tuple
//!    frontier across the same executor.
//!
//! Execution is structured as a tree of physical operators ([`op`]):
//! `SemiJoinNarrow → PatternScan` per pattern, `TemporalJoin`,
//! `Project`/`Aggregate` — assembled by the scheduler, driven by
//! [`exec`], and rendered verbatim by `EXPLAIN` ([`explain`]).
//!
//! The data path is columnar end to end ([`exec`]): scans produce
//! selection vectors, candidate lists and the multi-way join carry
//! ⟨partition, row⟩ references through a flat arena, and events are
//! materialized once — for the tuples that survive the join. The seed's
//! materializing pipeline is retained behind
//! `EngineConfig::late_materialization` for ablation.
//!
//! Dependency queries are rewritten to equivalent multievent queries (in
//! `aiql-lang`) and reuse the same pipeline. Anomaly queries are executed by
//! a sliding-window aggregation operator ([`anomaly`]) that maintains
//! per-group aggregate history so `having` clauses can reference previous
//! windows (`amt[1]`).
//!
//! Execution is fault-contained: an optional per-query governor
//! ([`governor`]) enforces wall-clock deadlines, cooperative cancellation,
//! and byte budgets on intermediate state at batch boundaries, either
//! erroring with a structured [`EngineError`] or — under
//! `partial_results` — returning a prefix of the full answer with a
//! warning. Worker panics are caught at the pool boundary ([`pool`]) and
//! delivered to the owning query as [`EngineError::WorkerPanic`] while the
//! shared executor keeps serving other queries.
//!
//! Above single-query execution sits the multi-tenant query [`service`]:
//! per-analyst sessions with private plan caches and variable bindings,
//! admission control that carves a global memory pool into per-query
//! governor budgets, deficit-round-robin fairness across sessions, and
//! explicit overload shedding with client-side backoff — many concurrent
//! investigations over one store without sharing their failures.
//!
//! Every optimization is individually toggleable through [`EngineConfig`]
//! for the ablation benchmarks. The [`mod@reference`] module provides a tiny,
//! obviously-correct executor used as the property-testing oracle.

pub mod analyze;
pub mod anomaly;
pub mod engine;
pub mod error;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod governor;
pub mod op;
pub mod pool;
pub mod reference;
pub mod result;
pub mod schedule;
pub mod service;

pub use analyze::{analyze_multievent, AnalyzedGlobals, AnalyzedMultievent, AnalyzedPattern};
pub use engine::{Engine, EngineConfig};
pub use error::EngineError;
pub use explain::{explain, QueryPlan};
pub use governor::{CancelToken, Clock, ExecBudget, Governor, ManualClock, SystemClock, Warning};
pub use pool::PoolPanic;
pub use result::ResultTable;
pub use service::{
    BackoffPolicy, QueryResponse, QueryService, QueryTicket, ServiceConfig, ServiceError,
    ServiceStats, SessionId,
};
