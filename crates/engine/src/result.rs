//! Query result tables.

use crate::governor::Warning;

use aiql_model::{Interner, Value};

/// A materialized query result: named columns and rows of dynamic values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Column headers (return item aliases or rendered expressions).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// True when the engine truncated intermediate results at its cap.
    pub truncated: bool,
    /// Governor warnings: set when `partial_results` execution hit a
    /// budget and the table holds a prefix of the full answer.
    pub warnings: Vec<Warning>,
}

impl ResultTable {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        ResultTable {
            columns,
            rows: Vec::new(),
            truncated: false,
            warnings: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII (the web UI's interactive table,
    /// in terminal form), resolving interned strings through `interner`.
    pub fn render(&self, interner: &Interner) -> String {
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len() + 1);
        cells.push(self.columns.clone());
        for row in &self.rows {
            cells.push(row.iter().map(|v| v.render(interner)).collect());
        }
        let ncols = self.columns.len().max(1);
        let mut widths = vec![0usize; ncols];
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (r, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{cell:<width$}", width = widths[i]))
                .collect();
            out.push_str(line.join(" | ").trim_end());
            out.push('\n');
            if r == 0 {
                let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&sep.join("-+-"));
                out.push('\n');
            }
        }
        if self.truncated {
            out.push_str("(truncated)\n");
        }
        for w in &self.warnings {
            out.push_str(&format!("(warning: {w})\n"));
        }
        out
    }

    /// Exports the table as CSV (RFC-4180 quoting), resolving interned
    /// strings through `interner` — the web UI's result-download feature.
    pub fn to_csv(&self, interner: &Interner) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| field(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| field(&v.render(interner))).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Canonical key for a row, used for `distinct` and for order-insensitive
    /// result comparison in tests.
    pub fn row_key(row: &[Value]) -> String {
        let mut key = String::new();
        for v in row {
            key.push_str(&format!("{v:?}\u{1f}"));
        }
        key
    }

    /// Sorts rows by their canonical keys (test helper for set comparison).
    pub fn normalized(mut self) -> Self {
        self.rows.sort_by_key(|r| Self::row_key(r));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut interner = Interner::new();
        let s = interner.intern("powershell.exe");
        let mut t = ResultTable::new(vec!["p".into(), "amt".into()]);
        t.rows.push(vec![Value::Str(s), Value::Float(1234.5)]);
        t.rows
            .push(vec![Value::Str(interner.intern("x")), Value::Int(7)]);
        let text = t.render(&interner);
        assert!(text.contains("powershell.exe"));
        assert!(text.lines().count() >= 4);
        let header = text.lines().next().unwrap();
        assert!(header.contains("p"));
        assert!(header.contains("amt"));
    }

    #[test]
    fn row_keys_distinguish_types() {
        assert_ne!(
            ResultTable::row_key(&[Value::Int(1)]),
            ResultTable::row_key(&[Value::Float(1.0)])
        );
        assert_eq!(
            ResultTable::row_key(&[Value::Int(1), Value::Bool(true)]),
            ResultTable::row_key(&[Value::Int(1), Value::Bool(true)])
        );
    }

    #[test]
    fn normalized_sorts_rows() {
        let mut t = ResultTable::new(vec!["x".into()]);
        t.rows.push(vec![Value::Int(2)]);
        t.rows.push(vec![Value::Int(1)]);
        let n = t.normalized();
        assert_eq!(n.rows[0][0], Value::Int(1));
    }

    #[test]
    fn csv_export_quotes_correctly() {
        let mut interner = Interner::new();
        let tricky = interner.intern("a,b \"quoted\"");
        let mut t = ResultTable::new(vec!["p".into(), "n".into()]);
        t.rows.push(vec![Value::Str(tricky), Value::Int(7)]);
        let csv = t.to_csv(&interner);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("p,n"));
        assert_eq!(lines.next(), Some("\"a,b \"\"quoted\"\"\",7"));
    }

    #[test]
    fn truncated_flag_rendered() {
        let mut interner = Interner::new();
        interner.intern("x");
        let mut t = ResultTable::new(vec!["c".into()]);
        t.truncated = true;
        assert!(t.render(&interner).contains("truncated"));
    }
}
