//! Engine error types.
//!
//! # Error taxonomy
//!
//! Every failure a query can surface is a structured [`EngineError`]
//! variant; nothing on the execution path panics past the pool boundary.
//! The variants split into three families:
//!
//! | Variant | Family | Raised by | Retryable? |
//! |---------|--------|-----------|------------|
//! | [`Parse`](EngineError::Parse) | query rejection | the AIQL parser | no — fix the query text |
//! | [`Analysis`](EngineError::Analysis) | query rejection | semantic analysis | no — fix the query |
//! | [`Model`](EngineError::Model) | query rejection | literal conversion (dates, IPs) | no — fix the query |
//! | [`TooManyMatches`](EngineError::TooManyMatches) | resource governance | the join budget (`max_intermediate`) | yes — refine predicates or raise the cap |
//! | [`DeadlineExceeded`](EngineError::DeadlineExceeded) | resource governance | the governor's wall-clock deadline | yes — raise `deadline_ms` or narrow the time window |
//! | [`Cancelled`](EngineError::Cancelled) | resource governance | a caller-held [`CancelToken`](crate::governor::CancelToken) | yes — the query was killed on purpose |
//! | [`MemoryBudget`](EngineError::MemoryBudget) | resource governance | the governor's byte accounting over arena + frontier | yes — raise `memory_budget_bytes` or refine |
//! | [`WorkerPanic`](EngineError::WorkerPanic) | fault containment | a panic caught on a pool worker | maybe — indicates a bug; the pool stays healthy |
//! | [`Internal`](EngineError::Internal) | fault containment | a broken engine invariant caught on a fallible path (missing pool/partition, unstaged scan filter) | no — indicates a bug; the query unwinds cleanly instead of panicking |
//!
//! Resource-governance errors are *clean* stops: they are raised at batch
//! boundaries, the engine unwinds normally, and the shared scan pool and
//! plan cache remain fully usable. Under
//! [`partial_results`](crate::EngineConfig::partial_results) the governance
//! family (except `Cancelled`-free paths that never started) is downgraded
//! to a truncated [`ResultTable`](crate::ResultTable) carrying
//! [`Warning`](crate::governor::Warning)s instead of an `Err`.

use std::fmt;

use aiql_lang::ParseError;
use aiql_model::ModelError;

/// Errors raised while analyzing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// Semantic analysis rejected the query (message explains why).
    Analysis(String),
    /// A model-level conversion failed (bad date, bad IP, …).
    Model(ModelError),
    /// The intermediate result exceeded the configured bound.
    TooManyMatches {
        /// The configured cap that was exceeded.
        cap: usize,
    },
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The caller cancelled the query through its [`CancelToken`]
    /// (crate::governor::CancelToken).
    Cancelled,
    /// The query's intermediate state exceeded its memory budget.
    MemoryBudget {
        /// The configured budget, in bytes.
        budget_bytes: u64,
    },
    /// A worker panicked while executing part of this query. The panic was
    /// contained: the message is captured here and the shared pool keeps
    /// serving other queries.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An engine invariant broke mid-query (a bug, not a user error). The
    /// query unwinds cleanly with this instead of panicking, so one broken
    /// plan cannot take down the sessions sharing the process.
    Internal {
        /// Which invariant broke.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Analysis(m) => write!(f, "semantic error: {m}"),
            EngineError::Model(e) => write!(f, "semantic error: {e}"),
            EngineError::TooManyMatches { cap } => {
                write!(
                    f,
                    "intermediate result exceeded {cap} tuples; refine the query"
                )
            }
            EngineError::DeadlineExceeded { deadline_ms } => {
                write!(f, "query exceeded its {deadline_ms} ms deadline")
            }
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::MemoryBudget { budget_bytes } => {
                write!(
                    f,
                    "query exceeded its {budget_bytes}-byte memory budget; refine the query"
                )
            }
            EngineError::WorkerPanic { message } => {
                write!(f, "worker panicked during query execution: {message}")
            }
            EngineError::Internal { message } => {
                write!(f, "internal engine error: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        assert!(EngineError::Analysis("unknown variable `p9`".into())
            .to_string()
            .contains("p9"));
        assert!(EngineError::TooManyMatches { cap: 10 }
            .to_string()
            .contains("10"));
        assert!(EngineError::DeadlineExceeded { deadline_ms: 250 }
            .to_string()
            .contains("250"));
        assert!(EngineError::MemoryBudget {
            budget_bytes: 1 << 20
        }
        .to_string()
        .contains("1048576"));
        assert!(EngineError::WorkerPanic {
            message: "index out of bounds".into()
        }
        .to_string()
        .contains("index out of bounds"));
        assert!(EngineError::Internal {
            message: "scan executor missing".into()
        }
        .to_string()
        .contains("scan executor missing"));
    }
}
