//! Engine error types.

use std::fmt;

use aiql_lang::ParseError;
use aiql_model::ModelError;

/// Errors raised while analyzing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// Semantic analysis rejected the query (message explains why).
    Analysis(String),
    /// A model-level conversion failed (bad date, bad IP, …).
    Model(ModelError),
    /// The intermediate result exceeded the configured bound.
    TooManyMatches {
        /// The configured cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Analysis(m) => write!(f, "semantic error: {m}"),
            EngineError::Model(e) => write!(f, "semantic error: {e}"),
            EngineError::TooManyMatches { cap } => {
                write!(
                    f,
                    "intermediate result exceeded {cap} tuples; refine the query"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        assert!(EngineError::Analysis("unknown variable `p9`".into())
            .to_string()
            .contains("p9"));
        assert!(EngineError::TooManyMatches { cap: 10 }
            .to_string()
            .contains("10"));
    }
}
