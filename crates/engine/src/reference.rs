//! Brute-force reference executor — the property-testing oracle.
//!
//! Matches a multievent query by exhaustive backtracking over *all* events
//! with no indexes, no scheduling, no pushdown, and no partitioning. It is
//! deliberately the dumbest correct implementation; the optimized executor
//! must produce exactly the same tuples (verified in the engine's property
//! tests and in `tests/engine_equivalence.rs`).

use aiql_lang::TemporalOp;
use aiql_model::Event;
use aiql_storage::{EventFilter, EventStore};

use crate::analyze::AnalyzedMultievent;
use crate::error::EngineError;
use crate::exec::Tuple;
use crate::result::ResultTable;

/// Runs a multievent query by brute force, producing the final table with
/// the shared projection code.
pub fn run_reference(
    store: &EventStore,
    a: &AnalyzedMultievent,
) -> Result<ResultTable, EngineError> {
    let tuples = match_reference(store, a);
    crate::exec::project(store, a, &tuples)
}

/// Brute-force tuple matching.
pub fn match_reference(store: &EventStore, a: &AnalyzedMultievent) -> Vec<Tuple> {
    // All events, unconditionally.
    let all = store.scan_unoptimized_collect(&EventFilter::all());
    let n = a.patterns.len();
    let mut out = Vec::new();
    let mut tuple = Tuple {
        events: vec![None; n],
        vars: vec![None; a.vars.len()],
    };
    backtrack(store, a, &all, 0, &mut tuple, &mut out);
    out
}

fn event_satisfies_pattern(
    store: &EventStore,
    a: &AnalyzedMultievent,
    idx: usize,
    e: &Event,
) -> bool {
    let p = &a.patterns[idx];
    if !p.ops.contains(e.op) {
        return false;
    }
    if !a.globals.window.contains(e.start_time) {
        return false;
    }
    if let Some(agents) = &a.globals.agents {
        if !agents.contains(&e.agent) {
            return false;
        }
    }
    for (attr, op, value) in &a.globals.residual {
        let Ok(actual) = e.get(attr) else {
            return false;
        };
        let bin = match op {
            aiql_lang::CmpOp::Eq => aiql_lang::BinOp::Eq,
            aiql_lang::CmpOp::Ne => aiql_lang::BinOp::Ne,
            aiql_lang::CmpOp::Lt => aiql_lang::BinOp::Lt,
            aiql_lang::CmpOp::Le => aiql_lang::BinOp::Le,
            aiql_lang::CmpOp::Gt => aiql_lang::BinOp::Gt,
            aiql_lang::CmpOp::Ge => aiql_lang::BinOp::Ge,
        };
        if !crate::eval::apply_binop(bin, actual, *value).truthy() {
            return false;
        }
    }
    // Entity constraints (and kind checks) for subject and object.
    for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
        let var = &a.vars[var_idx];
        if var.unsatisfiable {
            return false;
        }
        let entity = store.entities().get(id);
        if entity.kind() != var.kind {
            return false;
        }
        for c in &var.constraints {
            if !store.entities().eval(entity, c) {
                return false;
            }
        }
    }
    if p.subject == p.object && e.subject != e.object {
        return false;
    }
    true
}

fn consistent(a: &AnalyzedMultievent, idx: usize, e: &Event, tuple: &Tuple) -> bool {
    let p = &a.patterns[idx];
    for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
        if let Some(bound) = tuple.vars[var_idx] {
            if bound != id {
                return false;
            }
        }
    }
    // Temporal relations with already-placed patterns.
    for rel in &a.temporal {
        let (l, r, bound) = match &rel.op {
            TemporalOp::Before(b) => (rel.left, rel.right, b),
            TemporalOp::After(b) => (rel.right, rel.left, b),
        };
        let (left_event, right_event) = if l == idx && tuple.events[r].is_some() {
            (*e, tuple.events[r].expect("checked"))
        } else if r == idx && tuple.events[l].is_some() {
            (tuple.events[l].expect("checked"), *e)
        } else {
            continue;
        };
        if left_event.end_time > right_event.start_time {
            return false;
        }
        if let Some(b) = bound {
            if (right_event.start_time - left_event.end_time) > *b {
                return false;
            }
        }
    }
    true
}

fn backtrack(
    store: &EventStore,
    a: &AnalyzedMultievent,
    all: &[Event],
    idx: usize,
    tuple: &mut Tuple,
    out: &mut Vec<Tuple>,
) {
    if idx == a.patterns.len() {
        out.push(tuple.clone());
        return;
    }
    let p = &a.patterns[idx];
    for e in all {
        if !event_satisfies_pattern(store, a, idx, e) || !consistent(a, idx, e, tuple) {
            continue;
        }
        let prev_s = tuple.vars[p.subject];
        let prev_o = tuple.vars[p.object];
        tuple.events[idx] = Some(*e);
        tuple.vars[p.subject] = Some(e.subject);
        tuple.vars[p.object] = Some(e.object);
        backtrack(store, a, all, idx + 1, tuple, out);
        tuple.events[idx] = None;
        tuple.vars[p.subject] = prev_s;
        tuple.vars[p.object] = prev_o;
    }
}
