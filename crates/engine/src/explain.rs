//! Query plan explanation.
//!
//! `EXPLAIN` for AIQL: shows how the engine will schedule a query — the
//! per-pattern data queries, their selectivity estimates, the resolved
//! entity-candidate set sizes, and the partition fan-out — without running
//! it. The web UI's execution-status panel surfaces this; the `repl`
//! example exposes it as `:explain`.

use std::fmt::Write as _;

use aiql_lang::Query;
use aiql_storage::EventStore;

use crate::analyze::{self, AnalyzedMultievent};
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::schedule;

/// The plan of one pattern's data query.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    /// Pattern index in source order.
    pub index: usize,
    /// Event variable name.
    pub name: String,
    /// Execution position (0 = first).
    pub position: usize,
    /// Estimated matching events from storage statistics.
    pub estimate: usize,
    /// Resolved candidate-set size for the subject variable
    /// (`None` = unconstrained).
    pub subject_candidates: Option<usize>,
    /// Resolved candidate-set size for the object variable.
    pub object_candidates: Option<usize>,
    /// Hypertable partitions the data query will touch.
    pub partitions: usize,
}

/// A full query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Query kind (`multievent`, `dependency`, `anomaly`).
    pub kind: &'static str,
    /// Whether a dependency query was rewritten to multievent form.
    pub rewritten: bool,
    /// Per-pattern plans, in source order.
    pub patterns: Vec<PatternPlan>,
    /// Number of temporal relations.
    pub temporal_relations: usize,
    /// Whether pruning-power scheduling is active.
    pub pruning_priority: bool,
    /// Scan parallelism.
    pub parallelism: usize,
}

impl QueryPlan {
    /// Renders the plan as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} query{} | {} temporal relation(s) | pruning priority: {} | parallelism: {}",
            self.kind,
            if self.rewritten {
                " (rewritten to multievent)"
            } else {
                ""
            },
            self.temporal_relations,
            if self.pruning_priority { "on" } else { "off" },
            self.parallelism,
        );
        let mut by_position: Vec<&PatternPlan> = self.patterns.iter().collect();
        by_position.sort_by_key(|p| p.position);
        for p in by_position {
            let fmt_c = |c: Option<usize>| match c {
                Some(n) => n.to_string(),
                None => "*".to_string(),
            };
            let _ = writeln!(
                out,
                "  #{} {:<10} est {:>8} events | subjects {:>6} | objects {:>6} | {} partition(s)",
                p.position + 1,
                p.name,
                p.estimate,
                fmt_c(p.subject_candidates),
                fmt_c(p.object_candidates),
                p.partitions,
            );
        }
        out
    }
}

/// Builds the execution plan for a query without executing it.
pub fn explain(
    store: &EventStore,
    query: &Query,
    config: &EngineConfig,
) -> Result<QueryPlan, EngineError> {
    let (analyzed, kind, rewritten): (AnalyzedMultievent, &'static str, bool) = match query {
        Query::Multievent(m) => (analyze::analyze_multievent(m, store)?, "multievent", false),
        Query::Dependency(d) => {
            let m = aiql_lang::dependency_to_multievent(d)?;
            (analyze::analyze_multievent(&m, store)?, "dependency", true)
        }
        Query::Anomaly(a) => {
            let an = analyze::analyze_anomaly(a, store)?;
            (an.base, "anomaly", false)
        }
    };
    let resolved = schedule::resolve_vars(&analyzed, store);
    let plan = schedule::plan(&analyzed, store, &resolved, config.prioritize_pruning);
    let patterns = analyzed
        .patterns
        .iter()
        .map(|p| {
            let filter = schedule::base_filter(&analyzed, p.index, &resolved);
            PatternPlan {
                index: p.index,
                name: p.name.clone(),
                position: plan
                    .order
                    .iter()
                    .position(|&i| i == p.index)
                    .expect("pattern scheduled"),
                estimate: plan.estimates[p.index],
                subject_candidates: resolved[p.subject].as_ref().map(Vec::len),
                object_candidates: resolved[p.object].as_ref().map(Vec::len),
                partitions: store.partitions_for(&filter).len(),
            }
        })
        .collect();
    Ok(QueryPlan {
        kind,
        rewritten,
        patterns,
        temporal_relations: analyzed.temporal.len(),
        pruning_priority: config.prioritize_pruning,
        parallelism: config.parallelism,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, RawEvent};

    fn store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..300 {
            raws.push(RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(1, "sqlservr.exe", "mssql"),
                EntitySpec::file(&format!("/data/f{i}"), "mssql"),
                Timestamp::from_secs(i * 60),
                100,
            ));
        }
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(10),
            0,
        ));
        s.ingest_all(&raws);
        s
    }

    #[test]
    fn selective_pattern_is_scheduled_first_in_plan() {
        let store = store();
        let q = parse_query(
            r#"proc p3 write file f1 as big
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as rare
               return p1"#,
        )
        .unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        let rare = plan.patterns.iter().find(|p| p.name == "rare").unwrap();
        let big = plan.patterns.iter().find(|p| p.name == "big").unwrap();
        assert_eq!(rare.position, 0, "rare pattern must execute first");
        assert!(rare.estimate < big.estimate);
        assert_eq!(rare.subject_candidates, Some(1));
        assert!(big.subject_candidates.is_none());
    }

    #[test]
    fn dependency_plans_are_marked_rewritten() {
        let store = store();
        let q = parse_query(r#"forward: proc p1["%cmd.exe"] ->[start] proc p2 return p2"#).unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        assert!(plan.rewritten);
        assert_eq!(plan.kind, "dependency");
        assert_eq!(plan.temporal_relations, 0);
    }

    #[test]
    fn render_is_readable() {
        let store = store();
        let q = parse_query(
            r#"proc p1["%cmd.exe"] start proc p2 as e1
               proc p2 write file f as e2
               with e1 before e2
               return p1, f"#,
        )
        .unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        let text = plan.render();
        assert!(text.contains("multievent query"));
        assert!(text.contains("1 temporal relation"));
        assert!(text.contains("#1"));
        assert!(text.contains("e1"));
    }

    #[test]
    fn source_order_without_pruning_priority() {
        let store = store();
        let q = parse_query(
            r#"proc p3 write file f1 as big
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as rare
               return p1"#,
        )
        .unwrap();
        let config = EngineConfig {
            prioritize_pruning: false,
            ..EngineConfig::default()
        };
        let plan = explain(&store, &q, &config).unwrap();
        let big = plan.patterns.iter().find(|p| p.name == "big").unwrap();
        assert_eq!(big.position, 0);
    }
}
