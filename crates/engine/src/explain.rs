//! Query plan explanation.
//!
//! `EXPLAIN` for AIQL: shows how the engine will schedule a query — the
//! per-pattern data queries, their selectivity estimates, the resolved
//! entity-candidate set sizes, and the partition fan-out — without running
//! it. The web UI's execution-status panel surfaces this; the `repl`
//! example exposes it as `:explain`.

use std::fmt::Write as _;

use aiql_lang::Query;
use aiql_storage::EventStore;

use crate::analyze::{self, AnalyzedMultievent};
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::schedule;

/// The plan of one pattern's data query.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    /// Pattern index in source order.
    pub index: usize,
    /// Event variable name.
    pub name: String,
    /// Execution position (0 = first).
    pub position: usize,
    /// Estimated matching events from storage statistics.
    pub estimate: usize,
    /// Resolved candidate-set size for the subject variable
    /// (`None` = unconstrained).
    pub subject_candidates: Option<usize>,
    /// Resolved candidate-set size for the object variable.
    pub object_candidates: Option<usize>,
    /// Hypertable partitions the data query will touch.
    pub partitions: usize,
    /// Columnar segments across those partitions (== `partitions` when the
    /// store is fully compacted; higher means fragmented layouts).
    pub segments: usize,
}

/// One node of the physical operator tree, as `EXPLAIN` renders it:
/// the same shape [`crate::op::query_tree`] assembles for execution.
#[derive(Debug, Clone)]
pub struct OpPlanNode {
    /// Operator kind (`PatternScan`, `SemiJoinNarrow`, `TemporalJoin`,
    /// `Project`, `Aggregate`) — matches [`crate::op::OpStat::kind`].
    pub kind: &'static str,
    /// Human-readable operator detail (pattern, estimates, access path,
    /// fan-out).
    pub detail: String,
    /// Child operators (executed before this one).
    pub children: Vec<OpPlanNode>,
}

impl OpPlanNode {
    fn render_into(&self, out: &mut String, depth: usize) {
        let _ = writeln!(out, "  {}{} {}", "  ".repeat(depth), self.kind, self.detail);
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A full query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Query kind (`multievent`, `dependency`, `anomaly`).
    pub kind: &'static str,
    /// Whether a dependency query was rewritten to multievent form.
    pub rewritten: bool,
    /// Per-pattern plans, in source order.
    pub patterns: Vec<PatternPlan>,
    /// Number of temporal relations.
    pub temporal_relations: usize,
    /// Whether pruning-power scheduling is active.
    pub pruning_priority: bool,
    /// Scan parallelism.
    pub parallelism: usize,
    /// Governor limits in effect (`None` when the query runs ungoverned):
    /// rendered summary of deadline / memory budget / partial-results mode.
    pub governor: Option<String>,
    /// Novelty-overlay state of the store snapshot being planned against
    /// (`None` when every partition is fully sealed): recently-ingested
    /// rows the scans will read from open overlays, and how many overlay
    /// flushes the store has absorbed.
    pub overlay: Option<String>,
    /// The physical operator tree the executor will run.
    pub operators: OpPlanNode,
}

impl QueryPlan {
    /// Renders the plan as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} query{} | {} temporal relation(s) | pruning priority: {} | parallelism: {}",
            self.kind,
            if self.rewritten {
                " (rewritten to multievent)"
            } else {
                ""
            },
            self.temporal_relations,
            if self.pruning_priority { "on" } else { "off" },
            self.parallelism,
        );
        let mut by_position: Vec<&PatternPlan> = self.patterns.iter().collect();
        by_position.sort_by_key(|p| p.position);
        for p in by_position {
            let fmt_c = |c: Option<usize>| match c {
                Some(n) => n.to_string(),
                None => "*".to_string(),
            };
            let _ = writeln!(
                out,
                "  #{} {:<10} est {:>8} events | subjects {:>6} | objects {:>6} | {} partition(s) / {} segment(s)",
                p.position + 1,
                p.name,
                p.estimate,
                fmt_c(p.subject_candidates),
                fmt_c(p.object_candidates),
                p.partitions,
                p.segments,
            );
        }
        if let Some(gov) = &self.governor {
            let _ = writeln!(out, "governor: {gov}");
        }
        if let Some(overlay) = &self.overlay {
            let _ = writeln!(out, "novelty overlay: {overlay}");
        }
        let _ = writeln!(out, "physical operator tree:");
        self.operators.render_into(&mut out, 0);
        out
    }
}

/// Builds the execution plan for a query without executing it.
pub fn explain(
    store: &EventStore,
    query: &Query,
    config: &EngineConfig,
) -> Result<QueryPlan, EngineError> {
    let (analyzed, kind, rewritten): (AnalyzedMultievent, &'static str, bool) = match query {
        Query::Multievent(m) => (analyze::analyze_multievent(m, store)?, "multievent", false),
        Query::Dependency(d) => {
            let m = aiql_lang::dependency_to_multievent(d)?;
            (analyze::analyze_multievent(&m, store)?, "dependency", true)
        }
        Query::Anomaly(a) => {
            let an = analyze::analyze_anomaly(a, store)?;
            (an.base, "anomaly", false)
        }
    };
    let resolved = schedule::resolve_vars(&analyzed, store);
    let plan = schedule::plan(&analyzed, store, &resolved, config.prioritize_pruning);
    let patterns: Vec<PatternPlan> = analyzed
        .patterns
        .iter()
        .map(|p| {
            let filter = schedule::base_filter(&analyzed, p.index, &resolved);
            let keys = store.partitions_for(&filter);
            PatternPlan {
                index: p.index,
                name: p.name.clone(),
                position: plan
                    .order
                    .iter()
                    .position(|&i| i == p.index)
                    .expect("pattern scheduled"),
                estimate: plan.estimates[p.index],
                subject_candidates: resolved[p.subject].as_ref().map(Vec::len),
                object_candidates: resolved[p.object].as_ref().map(Vec::len),
                segments: segment_count(store, &keys),
                partitions: keys.len(),
            }
        })
        .collect();
    let operators = operator_tree(store, &analyzed, &resolved, &plan, config);
    Ok(QueryPlan {
        kind,
        rewritten,
        patterns,
        temporal_relations: analyzed.temporal.len(),
        pruning_priority: config.prioritize_pruning,
        parallelism: config.parallelism,
        governor: governor_summary(config),
        overlay: overlay_summary(store),
        operators,
    })
}

/// Renders the store's novelty-overlay state for `EXPLAIN`, or `None` when
/// every partition is fully sealed (the overlay-off steady state).
fn overlay_summary(store: &EventStore) -> Option<String> {
    let stats = store.stats();
    if stats.novelty_events == 0 {
        return None;
    }
    Some(format!(
        "{} unsealed row(s) across open overlays | {} flush(es) absorbed",
        stats.novelty_events, stats.novelty_flushes
    ))
}

/// Renders the configuration's governor tunables for `EXPLAIN`, or `None`
/// when no limit is set (the zero-overhead ungoverned path).
fn governor_summary(config: &EngineConfig) -> Option<String> {
    if config.deadline_ms == 0 && config.memory_budget_bytes == 0 {
        return None;
    }
    let mut parts = Vec::new();
    if config.deadline_ms > 0 {
        parts.push(format!("deadline {}ms", config.deadline_ms));
    }
    if config.memory_budget_bytes > 0 {
        parts.push(format!("memory {} bytes", config.memory_budget_bytes));
    }
    parts.push(if config.partial_results {
        "on trip: partial results".to_string()
    } else {
        "on trip: error".to_string()
    });
    Some(parts.join(" | "))
}

/// Total columnar segments across a partition-key list — the layout
/// density `EXPLAIN` reports next to the partition fan-out.
fn segment_count(store: &EventStore, keys: &[aiql_storage::PartitionKey]) -> usize {
    keys.iter()
        .map(|&k| store.partition(k).map_or(0, |p| p.segment_count()))
        .sum()
}

/// Builds the `EXPLAIN` rendering of the physical operator tree — the same
/// shape [`crate::op::query_tree`] assembles for execution, annotated with
/// estimates, chosen access paths, and planned partition fan-out.
fn operator_tree(
    store: &EventStore,
    a: &AnalyzedMultievent,
    resolved: &schedule::ResolvedVars,
    plan: &schedule::Schedule,
    config: &EngineConfig,
) -> OpPlanNode {
    let threads = config.parallelism.max(1);
    let scans: Vec<OpPlanNode> = plan
        .order
        .iter()
        .enumerate()
        .map(|(position, &i)| {
            let p = &a.patterns[i];
            let filter = schedule::base_filter(a, i, resolved);
            let keys = store.partitions_for(&filter);
            let partitions = keys.len();
            let segments = segment_count(store, &keys);
            let parallel = config.partition_parallel
                && threads > 1
                && partitions > 1
                && plan.estimates[i] >= config.parallel_threshold;
            // Which of this pattern's variables earlier patterns will have
            // bound by the time it scans (the semi-join inputs).
            let earlier = &plan.order[..position];
            let mut narrowed_by: Vec<&str> = Vec::new();
            if config.semi_join_pushdown {
                for &e in earlier {
                    let ep = &a.patterns[e];
                    if [ep.subject, ep.object]
                        .iter()
                        .any(|v| *v == p.subject || *v == p.object)
                    {
                        narrowed_by.push(ep.name.as_str());
                    }
                }
            }
            let window_narrowed = config.temporal_narrowing
                && a.temporal.iter().any(|t| {
                    (t.left == i && earlier.contains(&t.right))
                        || (t.right == i && earlier.contains(&t.left))
                });
            let mut semi_detail = if narrowed_by.is_empty() {
                "pass-through".to_string()
            } else {
                format!("bindings from {}", narrowed_by.join(", "))
            };
            if window_narrowed {
                semi_detail.push_str(" | window narrowed");
            }
            OpPlanNode {
                kind: "PatternScan",
                detail: format!(
                    "{} est {} candidates | path {} | {} partition(s) / {} segment(s){}",
                    p.name,
                    plan.estimates[i],
                    store.access_path(&filter),
                    partitions,
                    segments,
                    if parallel {
                        format!(" | parallel ×{threads}")
                    } else {
                        String::new()
                    },
                ),
                children: vec![OpPlanNode {
                    kind: "SemiJoinNarrow",
                    detail: format!("{} {}", p.name, semi_detail),
                    children: Vec::new(),
                }],
            }
        })
        .collect();
    let join_fanout =
        if config.parallel_join && config.scan_pool && config.partition_parallel && threads > 1 {
            if config.join_partitions > 0 {
                config.join_partitions
            } else {
                threads * 4
            }
        } else {
            1
        };
    // The blocked demand-driven drive takes over multievent joins; its
    // work unit is the seed run, not a frontier range, and it probes whole
    // indexes rather than per-worker key shards.
    let blocked = config.blocked_join_drive && a.patterns.len() >= 2;
    // The probe-reduction layers in effect (time buckets only matter when
    // a temporal relation exists to prune by; the partitioned probe only
    // when the drive can fan out breadth-first).
    let mut layers: Vec<&str> = Vec::new();
    if config.time_bucket_join && !a.temporal.is_empty() {
        layers.push("time-bucket");
    }
    if config.partitioned_probe && join_fanout > 1 && !blocked {
        layers.push("key-partitioned probe");
    }
    if config.sideways_filters {
        layers.push("sideways filters");
    }
    let join = OpPlanNode {
        kind: "TemporalJoin",
        detail: format!(
            "{} pattern(s), {} temporal relation(s) | {} | max_intermediate {}{}",
            a.patterns.len(),
            a.temporal.len(),
            if blocked {
                if join_fanout > 1 {
                    format!(
                        "demand-driven blocked({}) drive, parallel ×{threads} worker(s)",
                        config.join_block_tuples
                    )
                } else {
                    format!(
                        "demand-driven blocked({}) drive, serial",
                        config.join_block_tuples
                    )
                }
            } else if join_fanout > 1 {
                format!("parallel ×{join_fanout} frontier partition(s)")
            } else {
                "serial".to_string()
            },
            config.max_intermediate,
            if layers.is_empty() {
                String::new()
            } else {
                format!(" | {}", layers.join(" + "))
            },
        ),
        children: scans,
    };
    let aggregated = !crate::exec::collect_aggs(a).is_empty() || !a.group_by.is_empty();
    OpPlanNode {
        kind: if aggregated { "Aggregate" } else { "Project" },
        detail: format!(
            "{} column(s){}{}{}",
            a.ret.items.len(),
            if a.group_by.is_empty() {
                String::new()
            } else {
                format!(" | group by {}", a.group_by.len())
            },
            if a.ret.distinct { " | distinct" } else { "" },
            match a.limit {
                Some(l) => format!(" | limit {l}"),
                None => String::new(),
            },
        ),
        children: vec![join],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, RawEvent};

    fn store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..300 {
            raws.push(RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(1, "sqlservr.exe", "mssql"),
                EntitySpec::file(&format!("/data/f{i}"), "mssql"),
                Timestamp::from_secs(i * 60),
                100,
            ));
        }
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(10),
            0,
        ));
        s.ingest_all(&raws);
        s
    }

    #[test]
    fn selective_pattern_is_scheduled_first_in_plan() {
        let store = store();
        let q = parse_query(
            r#"proc p3 write file f1 as big
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as rare
               return p1"#,
        )
        .unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        let rare = plan.patterns.iter().find(|p| p.name == "rare").unwrap();
        let big = plan.patterns.iter().find(|p| p.name == "big").unwrap();
        assert_eq!(rare.position, 0, "rare pattern must execute first");
        assert!(rare.estimate < big.estimate);
        assert_eq!(rare.subject_candidates, Some(1));
        assert!(big.subject_candidates.is_none());
    }

    #[test]
    fn dependency_plans_are_marked_rewritten() {
        let store = store();
        let q = parse_query(r#"forward: proc p1["%cmd.exe"] ->[start] proc p2 return p2"#).unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        assert!(plan.rewritten);
        assert_eq!(plan.kind, "dependency");
        assert_eq!(plan.temporal_relations, 0);
    }

    #[test]
    fn render_is_readable() {
        let store = store();
        let q = parse_query(
            r#"proc p1["%cmd.exe"] start proc p2 as e1
               proc p2 write file f as e2
               with e1 before e2
               return p1, f"#,
        )
        .unwrap();
        let plan = explain(&store, &q, &EngineConfig::default()).unwrap();
        let text = plan.render();
        assert!(text.contains("multievent query"));
        assert!(text.contains("1 temporal relation"));
        assert!(text.contains("#1"));
        assert!(text.contains("e1"));
    }

    #[test]
    fn operator_tree_matches_execution_shape() {
        let store = store();
        let q = parse_query(
            r#"proc p1["%cmd.exe"] start proc p2 as e1
               proc p2 write file f as e2
               with e1 before e2
               return p1, f, count(e2.amount) as n
               group by p1, f"#,
        )
        .unwrap();
        let config = EngineConfig {
            parallelism: 8,
            ..EngineConfig::default()
        };
        let plan = explain(&store, &q, &config).unwrap();
        // Root: aggregation; one join; one scan chain per pattern, each
        // with its narrowing child — the exact shape op::query_tree builds.
        assert_eq!(plan.operators.kind, "Aggregate");
        assert_eq!(plan.operators.children.len(), 1);
        let join = &plan.operators.children[0];
        assert_eq!(join.kind, "TemporalJoin");
        assert!(join
            .detail
            .contains("demand-driven blocked(4096) drive, parallel ×8 worker(s)"));
        assert_eq!(join.children.len(), 2);
        for scan in &join.children {
            assert_eq!(scan.kind, "PatternScan");
            assert_eq!(scan.children.len(), 1);
            assert_eq!(scan.children[0].kind, "SemiJoinNarrow");
        }
        // The selective start pattern runs first and uses entity postings;
        // the dependent write pattern receives its bindings.
        assert!(join.children[0].detail.contains("e1"));
        assert!(join.children[0].detail.contains("entity-postings"));
        assert!(join.children[1].children[0]
            .detail
            .contains("bindings from e1"));
        let text = plan.render();
        assert!(text.contains("physical operator tree:"));
        assert!(text.contains("TemporalJoin"));
    }

    #[test]
    fn overlay_state_is_surfaced_and_sealed_stores_stay_quiet() {
        // Fully sealed store: no overlay line.
        let sealed = store();
        let q = parse_query(r#"proc p write file f as e return p, f"#).unwrap();
        let plan = explain(&sealed, &q, &EngineConfig::default()).unwrap();
        assert!(plan.overlay.is_none());
        assert!(!plan.render().contains("novelty overlay"));
        // A store with unsealed overlay rows names them in the plan.
        let mut live = EventStore::new(aiql_storage::StoreConfig {
            batch_size: 4,
            dedup: false,
            novelty_flush_rows: 1 << 20,
            ..aiql_storage::StoreConfig::default()
        });
        let raws: Vec<RawEvent> = (0..8)
            .map(|i| {
                RawEvent::instant(
                    AgentId(1),
                    Operation::Write,
                    EntitySpec::process(1, "w.exe", "u"),
                    EntitySpec::file(&format!("/f{i}"), "u"),
                    Timestamp::from_secs(i),
                    1,
                )
            })
            .collect();
        live.ingest_all(&raws);
        assert!(live.stats().novelty_events > 0);
        let plan = explain(&live, &q, &EngineConfig::default()).unwrap();
        let overlay = plan.overlay.as_deref().expect("overlay line present");
        assert!(overlay.contains("unsealed row(s)"));
        assert!(plan.render().contains("novelty overlay:"));
    }

    #[test]
    fn serial_config_renders_serial_join() {
        let store = store();
        let q = parse_query(r#"proc p write file f as e return p, f"#).unwrap();
        let config = EngineConfig {
            parallelism: 1,
            ..EngineConfig::default()
        };
        let plan = explain(&store, &q, &config).unwrap();
        assert_eq!(plan.operators.kind, "Project");
        assert!(plan.operators.children[0].detail.contains("serial"));
    }

    #[test]
    fn source_order_without_pruning_priority() {
        let store = store();
        let q = parse_query(
            r#"proc p3 write file f1 as big
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as rare
               return p1"#,
        )
        .unwrap();
        let config = EngineConfig {
            prioritize_pruning: false,
            ..EngineConfig::default()
        };
        let plan = explain(&store, &q, &config).unwrap();
        let big = plan.patterns.iter().find(|p| p.name == "big").unwrap();
        assert_eq!(big.position, 0);
    }
}
