//! The query governor: per-query deadlines, cooperative cancellation, and
//! memory budgets.
//!
//! Interactive attack investigations share one store and one scan pool; a
//! runaway query must not starve the analysts next to it. The governor
//! generalizes the join's `max_intermediate` early-stop into a full
//! [`ExecBudget`]: a wall-clock deadline, a caller-held [`CancelToken`],
//! and a byte budget over the query's intermediate state (candidate
//! batches + the join frontier). Operators poll [`Governor::check`] at
//! batch boundaries — every [`GOV_CHECK_INTERVAL`] tuples in the scan,
//! join probe, and projection loops — so enforcement latency is bounded by
//! a few thousand cheap iterations while the fast path stays branch-cheap.
//!
//! A trip surfaces one of two ways:
//!
//! * **Error mode** (default): the query unwinds cleanly with
//!   `EngineError::{DeadlineExceeded, Cancelled, MemoryBudget}`. The store,
//!   plan cache, and shared pool are untouched.
//! * **Partial mode** (`EngineConfig::partial_results`): the pipeline stops
//!   extending the frontier and the query returns a *prefix-preserving*
//!   truncated table — for queries without `ORDER BY`/aggregation the rows
//!   are a prefix of the untripped result, byte-identical across serial
//!   and parallel join — carrying [`Warning`]s describing what fired.
//!
//! Trips are *sticky*: the first one wins and later polls return it
//! unchanged, so a deadline that fires mid-join reports as a deadline even
//! if the caller also cancels during unwind.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::EngineError;

pub use aiql_model::CancelToken;

/// How many tuples an execution loop may process between governor polls.
/// Matches the join budget's refresh stride: coarse enough to keep the
/// `Instant::now()` cost invisible, fine enough to bound cancel latency to
/// well under a millisecond of work.
pub const GOV_CHECK_INTERVAL: usize = 4096;

/// The governor's notion of time. The default [`SystemClock`] reads the
/// monotonic wall clock; tests inject a [`ManualClock`] so deadline and
/// fairness assertions advance time explicitly instead of sleeping —
/// deterministic on arbitrarily slow CI hosts.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant by this clock.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A hand-advanced clock for deterministic tests: time stands still until
/// [`advance`](ManualClock::advance) moves it. Clones share the same time.
#[derive(Debug, Clone)]
pub struct ManualClock {
    anchor: Instant,
    offset_nanos: Arc<AtomicU64>,
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ManualClock {
    /// A clock frozen at its creation instant.
    pub fn new() -> Self {
        ManualClock {
            anchor: Instant::now(),
            offset_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Moves time forward by `d` for every clone of this clock.
    pub fn advance(&self, d: Duration) {
        self.offset_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Release);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        self.anchor + Duration::from_nanos(self.offset_nanos.load(Ordering::Acquire))
    }
}

/// The per-query resource envelope. `None` fields are unlimited.
#[derive(Debug, Clone, Default)]
pub struct ExecBudget {
    /// Wall-clock deadline, measured from query start.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Byte budget over intermediate state (join arena + frontier).
    pub memory_bytes: Option<u64>,
    /// On a trip, return a prefix-preserving truncated table with
    /// [`Warning`]s instead of an error.
    pub partial_results: bool,
    /// Deadline clock override (`None` = the monotonic wall clock). Tests
    /// and the service's deterministic suites inject a [`ManualClock`].
    pub clock: Option<Arc<dyn Clock>>,
}

impl ExecBudget {
    /// An unlimited budget (every check passes).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the intermediate-state byte budget.
    pub fn with_memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Enables partial-result mode.
    pub fn with_partial_results(mut self, on: bool) -> Self {
        self.partial_results = on;
        self
    }

    /// Injects a deadline clock (tests use [`ManualClock`]).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Whether any limit is set (an unlimited, uncancellable budget needs
    /// no governor at all).
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some() || self.memory_bytes.is_some()
    }
}

/// Which limit fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The wall-clock deadline passed.
    Deadline,
    /// The caller cancelled.
    Cancelled,
    /// The memory budget was exceeded.
    Memory,
}

// Sticky-trip encoding for the atomic slot.
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;
const TRIP_MEMORY: u8 = 3;

/// A non-fatal condition attached to a (possibly truncated) result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// The deadline fired; rows are a prefix of the full result.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The query was cancelled; rows are a prefix of the full result.
    Cancelled,
    /// The memory budget fired; rows are a prefix of the full result.
    MemoryBudget {
        /// The configured budget, in bytes.
        budget_bytes: u64,
    },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Warning::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded; result truncated")
            }
            Warning::Cancelled => write!(f, "query cancelled; result truncated"),
            Warning::MemoryBudget { budget_bytes } => {
                write!(
                    f,
                    "memory budget of {budget_bytes} bytes exceeded; result truncated"
                )
            }
        }
    }
}

/// The runtime side of an [`ExecBudget`]: shared by every thread working on
/// one query, polled at batch boundaries.
#[derive(Debug)]
pub struct Governor {
    started: Instant,
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    cancel: Option<CancelToken>,
    memory_bytes: Option<u64>,
    /// Deadline clock; `None` reads the monotonic wall clock directly
    /// (the common case pays no dynamic dispatch).
    clock: Option<Arc<dyn Clock>>,
    /// Bytes of intermediate state currently charged.
    charged: AtomicU64,
    /// First trip, sticky (`TRIP_*` encoding).
    tripped: AtomicU8,
    partial: bool,
}

impl Governor {
    /// Starts governing a query under `budget`; the deadline clock begins
    /// now.
    pub fn new(budget: &ExecBudget) -> Self {
        let started = budget
            .clock
            .as_ref()
            .map(|c| c.now())
            .unwrap_or_else(Instant::now);
        Governor {
            started,
            deadline_at: budget.deadline.map(|d| started + d),
            deadline_ms: budget.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            cancel: budget.cancel.clone(),
            memory_bytes: budget.memory_bytes,
            clock: budget.clock.clone(),
            charged: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            partial: budget.partial_results,
        }
    }

    /// The current instant by the governor's clock.
    #[inline]
    fn now(&self) -> Instant {
        match &self.clock {
            Some(c) => c.now(),
            None => Instant::now(),
        }
    }

    /// Whether trips should truncate (partial mode) rather than error.
    pub fn partial(&self) -> bool {
        self.partial
    }

    /// Elapsed time since the query started, by the governor's clock.
    pub fn elapsed(&self) -> Duration {
        self.now().saturating_duration_since(self.started)
    }

    /// Polls cancellation and the deadline. Cheap enough for every few
    /// thousand tuples; sticky, so callers may re-check freely.
    pub fn check(&self) -> Result<(), Trip> {
        if let Some(t) = self.trip() {
            return Err(t);
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(self.record(Trip::Cancelled));
            }
        }
        if let Some(at) = self.deadline_at {
            if self.now() >= at {
                return Err(self.record(Trip::Deadline));
            }
        }
        Ok(())
    }

    /// Charges `bytes` of intermediate state against the memory budget,
    /// tripping if the running total exceeds it.
    pub fn charge(&self, bytes: u64) -> Result<(), Trip> {
        let total = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(limit) = self.memory_bytes {
            if total > limit {
                return Err(self.record(Trip::Memory));
            }
        }
        Ok(())
    }

    /// Releases previously charged bytes (a batch freed after its join
    /// step consumed it).
    pub fn uncharge(&self, bytes: u64) {
        // Saturating: a release can never un-trip or underflow.
        let mut cur = self.charged.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.charged.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes of memory budget still unspent (`u64::MAX` when unlimited).
    /// The join converts this into a deterministic row cap at each step, so
    /// serial and parallel execution truncate at the same tuple.
    pub fn remaining_bytes(&self) -> u64 {
        match self.memory_bytes {
            Some(limit) => limit.saturating_sub(self.charged.load(Ordering::Relaxed)),
            None => u64::MAX,
        }
    }

    /// Whether a memory budget is configured at all.
    pub fn has_memory_budget(&self) -> bool {
        self.memory_bytes.is_some()
    }

    /// The sticky first trip, if any.
    pub fn trip(&self) -> Option<Trip> {
        match self.tripped.load(Ordering::Acquire) {
            TRIP_DEADLINE => Some(Trip::Deadline),
            TRIP_CANCELLED => Some(Trip::Cancelled),
            TRIP_MEMORY => Some(Trip::Memory),
            _ => None,
        }
    }

    /// Records `t` as the trip unless one is already set; returns the
    /// winning trip either way.
    pub fn record(&self, t: Trip) -> Trip {
        let code = match t {
            Trip::Deadline => TRIP_DEADLINE,
            Trip::Cancelled => TRIP_CANCELLED,
            Trip::Memory => TRIP_MEMORY,
        };
        match self
            .tripped
            .compare_exchange(TRIP_NONE, code, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => t,
            Err(prev) => match prev {
                TRIP_DEADLINE => Trip::Deadline,
                TRIP_CANCELLED => Trip::Cancelled,
                TRIP_MEMORY => Trip::Memory,
                _ => t,
            },
        }
    }

    /// The error a trip maps to in error mode.
    pub fn error(&self, t: Trip) -> EngineError {
        match t {
            Trip::Deadline => EngineError::DeadlineExceeded {
                deadline_ms: self.deadline_ms,
            },
            Trip::Cancelled => EngineError::Cancelled,
            Trip::Memory => EngineError::MemoryBudget {
                budget_bytes: self.memory_bytes.unwrap_or(0),
            },
        }
    }

    /// The warning a trip maps to in partial mode.
    pub fn warning(&self, t: Trip) -> Warning {
        match t {
            Trip::Deadline => Warning::DeadlineExceeded {
                deadline_ms: self.deadline_ms,
            },
            Trip::Cancelled => Warning::Cancelled,
            Trip::Memory => Warning::MemoryBudget {
                budget_bytes: self.memory_bytes.unwrap_or(0),
            },
        }
    }
}

/// Amortized governor polling for hot loops: `tick()` costs one branch and
/// a decrement per tuple, and only every [`GOV_CHECK_INTERVAL`]-th call
/// reaches [`Governor::check`] (the `Instant::now()` syscall). A `None`
/// governor makes every tick free.
pub(crate) struct GovGate<'g> {
    gov: Option<&'g Governor>,
    left: usize,
}

impl<'g> GovGate<'g> {
    pub(crate) fn new(gov: Option<&'g Governor>) -> Self {
        GovGate {
            gov,
            left: GOV_CHECK_INTERVAL,
        }
    }

    /// Polls the governor once every [`GOV_CHECK_INTERVAL`] calls. Returns
    /// the trip when one fired (sticky — keeps returning it).
    #[inline]
    pub(crate) fn tick(&mut self) -> Option<Trip> {
        let g = self.gov?;
        self.left -= 1;
        if self.left == 0 {
            self.left = GOV_CHECK_INTERVAL;
            return g.check().err();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let gov = Governor::new(&ExecBudget::unlimited());
        for _ in 0..1000 {
            gov.check().unwrap();
            gov.charge(1 << 20).unwrap();
        }
        assert_eq!(gov.trip(), None);
    }

    #[test]
    fn cancel_trips_and_sticks() {
        let token = CancelToken::new();
        let gov = Governor::new(&ExecBudget::unlimited().with_cancel(token.clone()));
        gov.check().unwrap();
        token.cancel();
        assert_eq!(gov.check(), Err(Trip::Cancelled));
        assert_eq!(gov.trip(), Some(Trip::Cancelled));
        assert_eq!(gov.error(Trip::Cancelled), EngineError::Cancelled);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let gov = Governor::new(&ExecBudget::unlimited().with_deadline(Duration::ZERO));
        assert_eq!(gov.check(), Err(Trip::Deadline));
        assert!(matches!(
            gov.error(Trip::Deadline),
            EngineError::DeadlineExceeded { deadline_ms: 0 }
        ));
    }

    #[test]
    fn memory_budget_charges_and_releases() {
        let gov = Governor::new(&ExecBudget::unlimited().with_memory_bytes(100));
        gov.charge(60).unwrap();
        assert_eq!(gov.remaining_bytes(), 40);
        gov.uncharge(30);
        assert_eq!(gov.remaining_bytes(), 70);
        assert_eq!(gov.charge(80), Err(Trip::Memory));
        assert_eq!(gov.trip(), Some(Trip::Memory));
    }

    #[test]
    fn first_trip_wins() {
        let token = CancelToken::new();
        let gov = Governor::new(
            &ExecBudget::unlimited()
                .with_cancel(token.clone())
                .with_memory_bytes(10),
        );
        assert_eq!(gov.charge(100), Err(Trip::Memory));
        token.cancel();
        // The later cancel does not displace the memory trip.
        assert_eq!(gov.check(), Err(Trip::Memory));
    }

    #[test]
    fn manual_clock_makes_deadlines_deterministic() {
        let clock = ManualClock::new();
        let gov = Governor::new(
            &ExecBudget::unlimited()
                .with_deadline(Duration::from_millis(100))
                .with_clock(Arc::new(clock.clone())),
        );
        // No matter how much real time passes, the deadline holds until the
        // manual clock crosses it.
        gov.check().unwrap();
        clock.advance(Duration::from_millis(99));
        gov.check().unwrap();
        assert_eq!(gov.elapsed(), Duration::from_millis(99));
        clock.advance(Duration::from_millis(1));
        assert_eq!(gov.check(), Err(Trip::Deadline));
        assert_eq!(gov.trip(), Some(Trip::Deadline));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let clock = ManualClock::new();
        let other = clock.clone();
        let t0 = clock.now();
        other.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), t0 + Duration::from_secs(5));
    }

    #[test]
    fn warnings_render_the_limits() {
        let gov = Governor::new(
            &ExecBudget::unlimited()
                .with_deadline(Duration::from_millis(250))
                .with_memory_bytes(4096)
                .with_partial_results(true),
        );
        assert!(gov.partial());
        assert!(gov.warning(Trip::Deadline).to_string().contains("250"));
        assert!(gov.warning(Trip::Memory).to_string().contains("4096"));
    }
}
