//! Pruning-power scheduling.
//!
//! The first key insight of the engine (§2.3): "for a query with multiple
//! event patterns, we prioritize the search of event patterns with higher
//! pruning power, maximizing the reduction of irrelevant events as early as
//! possible." Pruning power is estimated from storage statistics: each
//! pattern's expected match count is computed from per-segment operation
//! counts and the dictionary-resolved entity id sets; patterns with smaller
//! expected counts run first, and their bindings shrink every later scan.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use aiql_model::EntityId;
use aiql_storage::{EventFilter, EventStore, IdSet, PartitionKey};

use crate::analyze::AnalyzedMultievent;

/// Per-variable resolved candidate id sets. `None` = unconstrained;
/// `Some(empty)` = unsatisfiable.
pub type ResolvedVars = Vec<Option<Vec<EntityId>>>;

/// Resolves every variable's entity constraints against the dictionary.
pub fn resolve_vars(a: &AnalyzedMultievent, store: &EventStore) -> ResolvedVars {
    resolve_vars_cached(a, store, None)
}

/// The one resolution loop both the cached and uncached paths share: the
/// unsatisfiable / unconstrained special cases are encoded exactly once,
/// and only the dictionary `find` is memoized.
fn resolve_vars_cached(
    a: &AnalyzedMultievent,
    store: &EventStore,
    cache: Option<&PlanCache>,
) -> ResolvedVars {
    a.vars
        .iter()
        .map(|v| {
            if v.unsatisfiable {
                return Some(Vec::new());
            }
            if v.constraints.is_empty() {
                return None;
            }
            let compute = || {
                store
                    .entities()
                    .find(v.kind, a.globals.agents.as_deref(), &v.constraints)
            };
            Some(match cache {
                Some(c) => c.resolved_var(store, &var_key(a, v), compute),
                None => compute(),
            })
        })
        .collect()
}

/// The execution plan for a multievent query.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Pattern indices in execution order.
    pub order: Vec<usize>,
    /// Estimated match count per pattern (source order).
    pub estimates: Vec<usize>,
}

/// Builds the base pushdown filter for one pattern (before binding
/// propagation).
pub fn base_filter(
    a: &AnalyzedMultievent,
    pattern_idx: usize,
    resolved: &ResolvedVars,
) -> EventFilter {
    let p = &a.patterns[pattern_idx];
    let mut filter = EventFilter::all()
        .with_window(a.globals.window)
        .with_ops(p.ops);
    if let Some(agents) = &a.globals.agents {
        filter = filter.with_agents(agents.clone());
    }
    if let Some(ids) = &resolved[p.subject] {
        filter = filter.with_subjects(IdSet::from_iter(ids.iter().copied()));
    }
    if let Some(ids) = &resolved[p.object] {
        filter = filter.with_objects(IdSet::from_iter(ids.iter().copied()));
    }
    filter
}

/// Plans the execution order of the query's patterns.
///
/// With `prioritize_pruning`, patterns are ordered by estimated match count
/// ascending (ties broken by source order for determinism); otherwise the
/// source order is kept — which is what a general-purpose engine does when
/// it trusts the textual join order.
pub fn plan(
    a: &AnalyzedMultievent,
    store: &EventStore,
    resolved: &ResolvedVars,
    prioritize_pruning: bool,
) -> Schedule {
    let estimates: Vec<usize> = (0..a.patterns.len())
        .map(|i| store.estimate(&base_filter(a, i, resolved)))
        .collect();
    Schedule {
        order: order_patterns(&estimates, prioritize_pruning),
        estimates,
    }
}

fn order_patterns(estimates: &[usize], prioritize_pruning: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    if prioritize_pruning {
        order.sort_by_key(|&i| (estimates[i], i));
    }
    order
}

/// The compiled shared phase of one query execution: resolved variable
/// candidate sets, per-pattern base pushdown filters, and the schedule.
///
/// Before this existed, both execution paths re-ran `resolve_vars`, built
/// every base filter twice (once for estimates, once for execution), and
/// `store.estimate` re-walked the partitions per pattern per scheduling
/// pass. [`prepare`] computes everything once; with a [`PlanCache`]
/// attached, repeated investigations (the paper's §6 interactive loop) skip
/// dictionary resolution and estimation entirely until the store mutates.
#[derive(Debug, Clone)]
pub struct PlanCtx {
    /// Per-variable resolved candidate id sets.
    pub resolved: ResolvedVars,
    /// Base pushdown filter per pattern (source order), before binding
    /// propagation and temporal narrowing.
    pub filters: Vec<EventFilter>,
    /// The execution schedule.
    pub plan: Schedule,
}

/// Builds the shared phase for one query, consulting `cache` when given.
pub fn prepare(
    a: &AnalyzedMultievent,
    store: &EventStore,
    prioritize_pruning: bool,
    cache: Option<&PlanCache>,
) -> PlanCtx {
    let resolved = resolve_vars_cached(a, store, cache);
    let filters: Vec<EventFilter> = (0..a.patterns.len())
        .map(|i| base_filter(a, i, &resolved))
        .collect();
    let estimates: Vec<usize> = filters
        .iter()
        .enumerate()
        .map(|(i, filter)| match cache {
            Some(c) => c.estimate(store, &estimate_key(a, i, &resolved), filter, || {
                store.estimate(filter)
            }),
            None => store.estimate(filter),
        })
        .collect();
    PlanCtx {
        resolved,
        filters,
        plan: Schedule {
            order: order_patterns(&estimates, prioritize_pruning),
            estimates,
        },
    }
}

/// Cache key of one variable's dictionary resolution: everything `find`
/// reads besides the store contents themselves (which the cache guards via
/// ⟨store id, epoch⟩).
fn var_key(a: &AnalyzedMultievent, v: &crate::analyze::VarInfo) -> String {
    let mut k = String::with_capacity(64);
    let _ = write!(k, "{:?}|{:?}|{:?}", v.kind, a.globals.agents, v.constraints);
    k
}

/// Cache key of one pattern's base-filter estimate: window, agents, op
/// set, and a fingerprint of the *resolved* subject/object id sets. Keying
/// on the resolution output (not the constraint text) makes the entry
/// content-addressed: a dictionary change that leaves this pattern's
/// resolution untouched keeps the key — and therefore the cached estimate —
/// valid, so only the partition dependencies remain to be checked.
fn estimate_key(a: &AnalyzedMultievent, pattern_idx: usize, resolved: &ResolvedVars) -> String {
    let p = &a.patterns[pattern_idx];
    let part = |vi: usize| -> String {
        match &resolved[vi] {
            None => "*".to_string(),
            Some(ids) => format!("{}:{:016x}", ids.len(), ids_fingerprint(ids)),
        }
    };
    format!(
        "{:?}|{:?}|{}|{}|{}",
        a.globals.window,
        a.globals.agents,
        p.ops.0,
        part(p.subject),
        part(p.object),
    )
}

/// FNV-1a over a resolved id list (order-sensitive; resolutions are
/// produced in dictionary order, so equal sets hash equal).
fn ids_fingerprint(ids: &[EntityId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        h ^= u64::from(id.raw());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cross-query plan-resolution cache: memoizes dictionary constraint
/// resolutions and base-filter estimates, keyed by their textual signature.
/// Invalidation is **partition-scoped** rather than wholesale:
///
/// * variable resolutions read only the entity dictionary, so they are
///   guarded by the store's ⟨id, dictionary epoch⟩ — committing events
///   never evicts them;
/// * estimates are content-addressed (their key embeds the resolved id
///   sets) and each entry records the ⟨partition, epoch⟩ dependency list
///   its computation read. An ingest invalidates only the entries whose
///   time buckets actually changed; when a *new* partition appears
///   (tracked by the store's partition-set epoch), the entry's dependency
///   list is recomputed from its filter and compared before reuse.
///
/// Bounded LRU (least-recently-used entry evicted beyond
/// [`PlanCache::CAPACITY`]).
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

/// One cached base-filter estimate with its partition dependencies.
#[derive(Debug)]
struct EstEntry {
    value: usize,
    /// Partition-set epoch the dependency list was computed (or last
    /// revalidated) against.
    pset_epoch: u64,
    /// Every partition the estimate read, with its epoch at compute time.
    deps: Vec<(PartitionKey, u64)>,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    store_id: u64,
    dict_epoch: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    vars: HashMap<String, (Vec<EntityId>, u64)>,
    estimates: HashMap<String, (EstEntry, u64)>,
}

impl PlanCache {
    /// Maximum retained entries per map.
    pub const CAPACITY: usize = 256;

    /// A cached (or freshly computed) variable resolution.
    pub fn resolved_var(
        &self,
        store: &EventStore,
        key: &str,
        compute: impl FnOnce() -> Vec<EntityId>,
    ) -> Vec<EntityId> {
        let mut g = self.lock_valid(store);
        let inner = &mut *g;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((ids, stamp)) = inner.vars.get_mut(key) {
            *stamp = tick;
            inner.hits += 1;
            return ids.clone();
        }
        drop(g);
        // Resolve outside the lock: dictionary scans can be the expensive
        // part, and concurrent queries must not serialize on each other.
        let ids = compute();
        let mut g = self.lock_valid(store);
        g.misses += 1;
        let tick = g.tick;
        g.vars.insert(key.to_string(), (ids.clone(), tick));
        evict_lru(&mut g.vars);
        ids
    }

    /// A cached (or freshly computed) base-filter estimate. `filter` is
    /// the estimated filter itself: it defines the entry's partition
    /// dependencies, and lets a surviving entry re-derive them after the
    /// partition set grows.
    pub fn estimate(
        &self,
        store: &EventStore,
        key: &str,
        filter: &EventFilter,
        compute: impl FnOnce() -> usize,
    ) -> usize {
        let mut g = self.lock_valid(store);
        let inner = &mut *g;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((entry, stamp)) = inner.estimates.get_mut(key) {
            let valid = if entry.pset_epoch == store.partition_set_epoch() {
                // No partition appeared since the entry was (re)validated:
                // the recorded dependencies are exhaustive, so checking
                // their epochs is the whole story.
                entry
                    .deps
                    .iter()
                    .all(|&(k, epoch)| store.partition_epoch(k) == Some(epoch))
            } else {
                // A partition appeared somewhere in the store; it is only
                // fatal if it falls inside this filter's range (or an
                // existing dependency also moved).
                let now = store.partition_deps(filter);
                if now == entry.deps {
                    entry.pset_epoch = store.partition_set_epoch();
                    true
                } else {
                    false
                }
            };
            if valid {
                *stamp = tick;
                inner.hits += 1;
                return entry.value;
            }
            inner.estimates.remove(key);
        }
        drop(g);
        let value = compute();
        // `store` is borrowed shared across compute, so the dependency
        // snapshot cannot race the estimate it guards.
        let entry = EstEntry {
            value,
            pset_epoch: store.partition_set_epoch(),
            deps: store.partition_deps(filter),
        };
        let mut g = self.lock_valid(store);
        g.misses += 1;
        let tick = g.tick;
        g.estimates.insert(key.to_string(), (entry, tick));
        evict_lru(&mut g.estimates);
        value
    }

    /// `(hits, misses)` counters, for tests and diagnostics.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (g.hits, g.misses)
    }

    /// Locks the cache, scoping invalidation to what actually changed: a
    /// different store clears everything; a dictionary change clears only
    /// the variable resolutions (estimates are content-addressed and carry
    /// their own partition dependencies, so event-side changes never evict
    /// them here).
    fn lock_valid(&self, store: &EventStore) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.store_id != store.store_id() {
            g.vars.clear();
            g.estimates.clear();
            g.store_id = store.store_id();
            g.dict_epoch = store.dict_epoch();
        } else if g.dict_epoch != store.dict_epoch() {
            g.vars.clear();
            g.dict_epoch = store.dict_epoch();
        }
        g
    }
}

fn evict_lru<T>(map: &mut HashMap<String, (T, u64)>) {
    while map.len() > PlanCache::CAPACITY {
        let Some(oldest) = map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        map.remove(&oldest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_multievent;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, EventStore, RawEvent};

    /// A store where writes vastly outnumber `osql.exe` process starts.
    fn skewed_store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..500 {
            raws.push(RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(1, "sqlservr.exe", "mssql"),
                EntitySpec::file(&format!("/data/f{i}"), "mssql"),
                Timestamp::from_secs(i),
                100,
            ));
        }
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(50),
            0,
        ));
        s.ingest_all(&raws);
        s
    }

    fn analyzed(src: &str, store: &EventStore) -> AnalyzedMultievent {
        let q = parse_query(src).unwrap();
        let aiql_lang::Query::Multievent(m) = q else {
            panic!()
        };
        analyze_multievent(&m, store).unwrap()
    }

    #[test]
    fn selective_pattern_scheduled_first() {
        let store = skewed_store();
        // Source order: the huge write pattern first, the rare start second.
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.order[0], 1, "start pattern must run first");
        assert!(plan.estimates[1] < plan.estimates[0]);
    }

    #[test]
    fn source_order_kept_without_prioritization() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, false);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn unsatisfiable_variable_resolves_to_empty() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p["not_in_dictionary.exe"] write file f as e return p"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        assert_eq!(resolved[0], Some(vec![]));
        // And the estimate reflects maximal pruning.
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.estimates[0], 0);
    }

    #[test]
    fn unconstrained_variable_resolves_to_none() {
        let store = skewed_store();
        let a = analyzed("proc p write file f as e return p", &store);
        let resolved = resolve_vars(&a, &store);
        assert!(resolved.iter().all(Option::is_none));
    }

    #[test]
    fn prepare_matches_uncached_resolution_and_plan() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let uncached = plan(&a, &store, &resolved, true);
        let cache = PlanCache::default();
        for round in 0..3 {
            let ctx = prepare(&a, &store, true, Some(&cache));
            assert_eq!(ctx.resolved, resolved, "round {round}");
            assert_eq!(ctx.plan.order, uncached.order);
            assert_eq!(ctx.plan.estimates, uncached.estimates);
        }
        let (hits, misses) = cache.counters();
        assert!(hits > 0, "repeat rounds must hit");
        assert!(misses > 0, "first round must miss");
    }

    #[test]
    fn plan_cache_invalidates_on_store_epoch_bump() {
        let mut store = skewed_store();
        let a = analyzed(r#"proc p["%osql.exe"] start proc q as e return p"#, &store);
        let cache = PlanCache::default();
        let before = prepare(&a, &store, true, Some(&cache));
        assert_eq!(before.resolved[0].as_ref().map(Vec::len), Some(1));
        // Ingest a second osql.exe process: the dictionary changes, the
        // epoch bumps, and the cached resolution must not survive.
        store.ingest_all(&[aiql_storage::RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(9, "cmd.exe", "admin"),
            EntitySpec::process(10, "/tools/osql.exe", "admin"),
            Timestamp::from_secs(60),
            0,
        )]);
        let after = prepare(&a, &store, true, Some(&cache));
        assert_eq!(after.resolved[0].as_ref().map(Vec::len), Some(2));
        let fresh = prepare(&a, &store, true, None);
        assert_eq!(after.resolved, fresh.resolved);
        assert_eq!(after.plan.estimates, fresh.plan.estimates);
    }

    #[test]
    fn plan_cache_survives_ingest_into_untouched_partition() {
        // All seed events live on day 01/01/1970 (bucket ~0); the query
        // windows itself to that day.
        let mut store = skewed_store();
        let a = analyzed(
            r#"(at "01/01/1970") proc p["%osql.exe"] start proc q as e return p"#,
            &store,
        );
        let cache = PlanCache::default();
        let first = prepare(&a, &store, true, Some(&cache));
        let (h0, m0) = cache.counters();
        assert!(m0 > 0);
        let warm = prepare(&a, &store, true, Some(&cache));
        let (h1, m1) = cache.counters();
        assert!(h1 > h0, "repeat execution must hit");
        assert_eq!(m1, m0);
        // Ingest two days later, reusing existing entity specs: a new
        // partition appears, but the dictionary and the day-0 buckets are
        // untouched — the cached plan must survive.
        store.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(1, "sqlservr.exe", "mssql"),
            EntitySpec::file("/data/f0", "mssql"),
            Timestamp::from_secs(2 * 86_400),
            100,
        )]);
        let after = prepare(&a, &store, true, Some(&cache));
        let (h2, m2) = cache.counters();
        assert!(h2 > h1, "ingest into an untouched partition must not evict");
        assert_eq!(m2, m1, "no entry may be recomputed");
        assert_eq!(after.plan.estimates, warm.plan.estimates);
        assert_eq!(after.resolved, first.resolved);
        // Ingest into the day the query reads: now the estimate must be
        // recomputed (and match a cache-free run).
        store.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(55),
            0,
        )]);
        let touched = prepare(&a, &store, true, Some(&cache));
        let (_, m3) = cache.counters();
        assert!(m3 > m2, "ingest into a read partition must recompute");
        let fresh = prepare(&a, &store, true, None);
        assert_eq!(touched.plan.estimates, fresh.plan.estimates);
    }

    #[test]
    fn estimate_cache_detects_new_partition_inside_range() {
        // Unwindowed query: every partition is in range, so a new time
        // bucket must invalidate the estimate even though no existing
        // partition changed.
        let mut store = skewed_store();
        let a = analyzed(r#"proc p write file f as e return p"#, &store);
        let cache = PlanCache::default();
        let before = prepare(&a, &store, true, Some(&cache));
        store.ingest_all(&[RawEvent::instant(
            AgentId(1),
            Operation::Write,
            EntitySpec::process(1, "sqlservr.exe", "mssql"),
            EntitySpec::file("/data/f0", "mssql"),
            Timestamp::from_secs(2 * 86_400),
            100,
        )]);
        let after = prepare(&a, &store, true, Some(&cache));
        let fresh = prepare(&a, &store, true, None);
        assert_eq!(after.plan.estimates, fresh.plan.estimates);
        assert!(
            after.plan.estimates[0] > before.plan.estimates[0],
            "the new partition's rows must be counted"
        );
    }

    #[test]
    fn plan_cache_is_store_scoped() {
        let store_a = skewed_store();
        let mut store_b = EventStore::default();
        store_b.ingest_all(&[aiql_storage::RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(1, "cmd.exe", "x"),
            EntitySpec::process(2, "osql.exe", "x"),
            Timestamp::from_secs(1),
            0,
        )]);
        let cache = PlanCache::default();
        let qa = analyzed(
            r#"proc p["%sqlservr.exe"] write file f as e return p"#,
            &store_a,
        );
        let ra = prepare(&qa, &store_a, true, Some(&cache));
        // Same constraint text against a different store must not reuse the
        // other store's cached ids.
        let qb = analyzed(
            r#"proc p["%sqlservr.exe"] write file f as e return p"#,
            &store_b,
        );
        let rb = prepare(&qb, &store_b, true, Some(&cache));
        assert_eq!(ra.resolved[0].as_ref().map(Vec::len), Some(1));
        assert_eq!(rb.resolved[0].as_ref().map(Vec::len), Some(0));
    }
}
