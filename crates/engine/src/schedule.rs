//! Pruning-power scheduling.
//!
//! The first key insight of the engine (§2.3): "for a query with multiple
//! event patterns, we prioritize the search of event patterns with higher
//! pruning power, maximizing the reduction of irrelevant events as early as
//! possible." Pruning power is estimated from storage statistics: each
//! pattern's expected match count is computed from per-segment operation
//! counts and the dictionary-resolved entity id sets; patterns with smaller
//! expected counts run first, and their bindings shrink every later scan.

use aiql_model::EntityId;
use aiql_storage::{EventFilter, EventStore, IdSet};

use crate::analyze::AnalyzedMultievent;

/// Per-variable resolved candidate id sets. `None` = unconstrained;
/// `Some(empty)` = unsatisfiable.
pub type ResolvedVars = Vec<Option<Vec<EntityId>>>;

/// Resolves every variable's entity constraints against the dictionary.
pub fn resolve_vars(a: &AnalyzedMultievent, store: &EventStore) -> ResolvedVars {
    a.vars
        .iter()
        .map(|v| {
            if v.unsatisfiable {
                return Some(Vec::new());
            }
            if v.constraints.is_empty() {
                return None;
            }
            Some(
                store
                    .entities()
                    .find(v.kind, a.globals.agents.as_deref(), &v.constraints),
            )
        })
        .collect()
}

/// The execution plan for a multievent query.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Pattern indices in execution order.
    pub order: Vec<usize>,
    /// Estimated match count per pattern (source order).
    pub estimates: Vec<usize>,
}

/// Builds the base pushdown filter for one pattern (before binding
/// propagation).
pub fn base_filter(
    a: &AnalyzedMultievent,
    pattern_idx: usize,
    resolved: &ResolvedVars,
) -> EventFilter {
    let p = &a.patterns[pattern_idx];
    let mut filter = EventFilter::all()
        .with_window(a.globals.window)
        .with_ops(p.ops);
    if let Some(agents) = &a.globals.agents {
        filter = filter.with_agents(agents.clone());
    }
    if let Some(ids) = &resolved[p.subject] {
        filter = filter.with_subjects(IdSet::from_iter(ids.iter().copied()));
    }
    if let Some(ids) = &resolved[p.object] {
        filter = filter.with_objects(IdSet::from_iter(ids.iter().copied()));
    }
    filter
}

/// Plans the execution order of the query's patterns.
///
/// With `prioritize_pruning`, patterns are ordered by estimated match count
/// ascending (ties broken by source order for determinism); otherwise the
/// source order is kept — which is what a general-purpose engine does when
/// it trusts the textual join order.
pub fn plan(
    a: &AnalyzedMultievent,
    store: &EventStore,
    resolved: &ResolvedVars,
    prioritize_pruning: bool,
) -> Schedule {
    let estimates: Vec<usize> = (0..a.patterns.len())
        .map(|i| store.estimate(&base_filter(a, i, resolved)))
        .collect();
    let mut order: Vec<usize> = (0..a.patterns.len()).collect();
    if prioritize_pruning {
        order.sort_by_key(|&i| (estimates[i], i));
    }
    Schedule { order, estimates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_multievent;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, EventStore, RawEvent};

    /// A store where writes vastly outnumber `osql.exe` process starts.
    fn skewed_store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..500 {
            raws.push(RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(1, "sqlservr.exe", "mssql"),
                EntitySpec::file(&format!("/data/f{i}"), "mssql"),
                Timestamp::from_secs(i),
                100,
            ));
        }
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(50),
            0,
        ));
        s.ingest_all(&raws);
        s
    }

    fn analyzed(src: &str, store: &EventStore) -> AnalyzedMultievent {
        let q = parse_query(src).unwrap();
        let aiql_lang::Query::Multievent(m) = q else {
            panic!()
        };
        analyze_multievent(&m, store).unwrap()
    }

    #[test]
    fn selective_pattern_scheduled_first() {
        let store = skewed_store();
        // Source order: the huge write pattern first, the rare start second.
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.order[0], 1, "start pattern must run first");
        assert!(plan.estimates[1] < plan.estimates[0]);
    }

    #[test]
    fn source_order_kept_without_prioritization() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, false);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn unsatisfiable_variable_resolves_to_empty() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p["not_in_dictionary.exe"] write file f as e return p"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        assert_eq!(resolved[0], Some(vec![]));
        // And the estimate reflects maximal pruning.
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.estimates[0], 0);
    }

    #[test]
    fn unconstrained_variable_resolves_to_none() {
        let store = skewed_store();
        let a = analyzed("proc p write file f as e return p", &store);
        let resolved = resolve_vars(&a, &store);
        assert!(resolved.iter().all(Option::is_none));
    }
}
