//! Pruning-power scheduling.
//!
//! The first key insight of the engine (§2.3): "for a query with multiple
//! event patterns, we prioritize the search of event patterns with higher
//! pruning power, maximizing the reduction of irrelevant events as early as
//! possible." Pruning power is estimated from storage statistics: each
//! pattern's expected match count is computed from per-segment operation
//! counts and the dictionary-resolved entity id sets; patterns with smaller
//! expected counts run first, and their bindings shrink every later scan.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use aiql_model::EntityId;
use aiql_storage::{EventFilter, EventStore, IdSet};

use crate::analyze::AnalyzedMultievent;

/// Per-variable resolved candidate id sets. `None` = unconstrained;
/// `Some(empty)` = unsatisfiable.
pub type ResolvedVars = Vec<Option<Vec<EntityId>>>;

/// Resolves every variable's entity constraints against the dictionary.
pub fn resolve_vars(a: &AnalyzedMultievent, store: &EventStore) -> ResolvedVars {
    resolve_vars_cached(a, store, None)
}

/// The one resolution loop both the cached and uncached paths share: the
/// unsatisfiable / unconstrained special cases are encoded exactly once,
/// and only the dictionary `find` is memoized.
fn resolve_vars_cached(
    a: &AnalyzedMultievent,
    store: &EventStore,
    cache: Option<&PlanCache>,
) -> ResolvedVars {
    a.vars
        .iter()
        .map(|v| {
            if v.unsatisfiable {
                return Some(Vec::new());
            }
            if v.constraints.is_empty() {
                return None;
            }
            let compute = || {
                store
                    .entities()
                    .find(v.kind, a.globals.agents.as_deref(), &v.constraints)
            };
            Some(match cache {
                Some(c) => c.resolved_var(store, &var_key(a, v), compute),
                None => compute(),
            })
        })
        .collect()
}

/// The execution plan for a multievent query.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Pattern indices in execution order.
    pub order: Vec<usize>,
    /// Estimated match count per pattern (source order).
    pub estimates: Vec<usize>,
}

/// Builds the base pushdown filter for one pattern (before binding
/// propagation).
pub fn base_filter(
    a: &AnalyzedMultievent,
    pattern_idx: usize,
    resolved: &ResolvedVars,
) -> EventFilter {
    let p = &a.patterns[pattern_idx];
    let mut filter = EventFilter::all()
        .with_window(a.globals.window)
        .with_ops(p.ops);
    if let Some(agents) = &a.globals.agents {
        filter = filter.with_agents(agents.clone());
    }
    if let Some(ids) = &resolved[p.subject] {
        filter = filter.with_subjects(IdSet::from_iter(ids.iter().copied()));
    }
    if let Some(ids) = &resolved[p.object] {
        filter = filter.with_objects(IdSet::from_iter(ids.iter().copied()));
    }
    filter
}

/// Plans the execution order of the query's patterns.
///
/// With `prioritize_pruning`, patterns are ordered by estimated match count
/// ascending (ties broken by source order for determinism); otherwise the
/// source order is kept — which is what a general-purpose engine does when
/// it trusts the textual join order.
pub fn plan(
    a: &AnalyzedMultievent,
    store: &EventStore,
    resolved: &ResolvedVars,
    prioritize_pruning: bool,
) -> Schedule {
    let estimates: Vec<usize> = (0..a.patterns.len())
        .map(|i| store.estimate(&base_filter(a, i, resolved)))
        .collect();
    Schedule {
        order: order_patterns(&estimates, prioritize_pruning),
        estimates,
    }
}

fn order_patterns(estimates: &[usize], prioritize_pruning: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    if prioritize_pruning {
        order.sort_by_key(|&i| (estimates[i], i));
    }
    order
}

/// The compiled shared phase of one query execution: resolved variable
/// candidate sets, per-pattern base pushdown filters, and the schedule.
///
/// Before this existed, both execution paths re-ran `resolve_vars`, built
/// every base filter twice (once for estimates, once for execution), and
/// `store.estimate` re-walked the partitions per pattern per scheduling
/// pass. [`prepare`] computes everything once; with a [`PlanCache`]
/// attached, repeated investigations (the paper's §6 interactive loop) skip
/// dictionary resolution and estimation entirely until the store mutates.
#[derive(Debug, Clone)]
pub struct PlanCtx {
    /// Per-variable resolved candidate id sets.
    pub resolved: ResolvedVars,
    /// Base pushdown filter per pattern (source order), before binding
    /// propagation and temporal narrowing.
    pub filters: Vec<EventFilter>,
    /// The execution schedule.
    pub plan: Schedule,
}

/// Builds the shared phase for one query, consulting `cache` when given.
pub fn prepare(
    a: &AnalyzedMultievent,
    store: &EventStore,
    prioritize_pruning: bool,
    cache: Option<&PlanCache>,
) -> PlanCtx {
    let resolved = resolve_vars_cached(a, store, cache);
    let filters: Vec<EventFilter> = (0..a.patterns.len())
        .map(|i| base_filter(a, i, &resolved))
        .collect();
    let estimates: Vec<usize> = filters
        .iter()
        .enumerate()
        .map(|(i, filter)| match cache {
            Some(c) => c.estimate(store, &estimate_key(a, i), || store.estimate(filter)),
            None => store.estimate(filter),
        })
        .collect();
    PlanCtx {
        resolved,
        filters,
        plan: Schedule {
            order: order_patterns(&estimates, prioritize_pruning),
            estimates,
        },
    }
}

/// Cache key of one variable's dictionary resolution: everything `find`
/// reads besides the store contents themselves (which the cache guards via
/// ⟨store id, epoch⟩).
fn var_key(a: &AnalyzedMultievent, v: &crate::analyze::VarInfo) -> String {
    let mut k = String::with_capacity(64);
    let _ = write!(k, "{:?}|{:?}|{:?}", v.kind, a.globals.agents, v.constraints);
    k
}

/// Cache key of one pattern's base-filter estimate: window, agents, op set,
/// and the resolution keys of its subject/object variables (the resolved id
/// sets are functions of those under a fixed store epoch).
fn estimate_key(a: &AnalyzedMultievent, pattern_idx: usize) -> String {
    let p = &a.patterns[pattern_idx];
    let part = |vi: usize| -> String {
        let v = &a.vars[vi];
        if v.unsatisfiable {
            "!".to_string()
        } else if v.constraints.is_empty() {
            "*".to_string()
        } else {
            var_key(a, v)
        }
    };
    format!(
        "{:?}|{:?}|{}|{}|{}",
        a.globals.window,
        a.globals.agents,
        p.ops.0,
        part(p.subject),
        part(p.object),
    )
}

/// A cross-query plan-resolution cache: memoizes dictionary constraint
/// resolutions and base-filter estimates, keyed by their textual signature
/// and guarded by the owning store's ⟨id, epoch⟩ — any store mutation
/// (ingest, commit, snapshot load, mutable dictionary access) invalidates
/// the whole cache on the next lookup. Bounded LRU (least-recently-used
/// entry evicted beyond [`PlanCache::CAPACITY`]).
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    store_id: u64,
    epoch: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    vars: HashMap<String, (Vec<EntityId>, u64)>,
    estimates: HashMap<String, (usize, u64)>,
}

impl PlanCache {
    /// Maximum retained entries per map.
    pub const CAPACITY: usize = 256;

    /// A cached (or freshly computed) variable resolution.
    pub fn resolved_var(
        &self,
        store: &EventStore,
        key: &str,
        compute: impl FnOnce() -> Vec<EntityId>,
    ) -> Vec<EntityId> {
        let mut g = self.lock_valid(store);
        let inner = &mut *g;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((ids, stamp)) = inner.vars.get_mut(key) {
            *stamp = tick;
            inner.hits += 1;
            return ids.clone();
        }
        drop(g);
        // Resolve outside the lock: dictionary scans can be the expensive
        // part, and concurrent queries must not serialize on each other.
        let ids = compute();
        let mut g = self.lock_valid(store);
        g.misses += 1;
        let tick = g.tick;
        g.vars.insert(key.to_string(), (ids.clone(), tick));
        evict_lru(&mut g.vars);
        ids
    }

    /// A cached (or freshly computed) base-filter estimate.
    pub fn estimate(
        &self,
        store: &EventStore,
        key: &str,
        compute: impl FnOnce() -> usize,
    ) -> usize {
        let mut g = self.lock_valid(store);
        let inner = &mut *g;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((est, stamp)) = inner.estimates.get_mut(key) {
            *stamp = tick;
            inner.hits += 1;
            return *est;
        }
        drop(g);
        let est = compute();
        let mut g = self.lock_valid(store);
        g.misses += 1;
        let tick = g.tick;
        g.estimates.insert(key.to_string(), (est, tick));
        evict_lru(&mut g.estimates);
        est
    }

    /// `(hits, misses)` counters, for tests and diagnostics.
    pub fn counters(&self) -> (u64, u64) {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (g.hits, g.misses)
    }

    /// Locks the cache, clearing it first if it was built against a
    /// different store or an older epoch of the same store.
    fn lock_valid(&self, store: &EventStore) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.store_id != store.store_id() || g.epoch != store.epoch() {
            g.vars.clear();
            g.estimates.clear();
            g.store_id = store.store_id();
            g.epoch = store.epoch();
        }
        g
    }
}

fn evict_lru<T>(map: &mut HashMap<String, (T, u64)>) {
    while map.len() > PlanCache::CAPACITY {
        let Some(oldest) = map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        map.remove(&oldest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_multievent;
    use aiql_lang::parse_query;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, EventStore, RawEvent};

    /// A store where writes vastly outnumber `osql.exe` process starts.
    fn skewed_store() -> EventStore {
        let mut s = EventStore::default();
        let mut raws = Vec::new();
        for i in 0..500 {
            raws.push(RawEvent::instant(
                AgentId(1),
                Operation::Write,
                EntitySpec::process(1, "sqlservr.exe", "mssql"),
                EntitySpec::file(&format!("/data/f{i}"), "mssql"),
                Timestamp::from_secs(i),
                100,
            ));
        }
        raws.push(RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(2, "cmd.exe", "admin"),
            EntitySpec::process(3, "osql.exe", "admin"),
            Timestamp::from_secs(50),
            0,
        ));
        s.ingest_all(&raws);
        s
    }

    fn analyzed(src: &str, store: &EventStore) -> AnalyzedMultievent {
        let q = parse_query(src).unwrap();
        let aiql_lang::Query::Multievent(m) = q else {
            panic!()
        };
        analyze_multievent(&m, store).unwrap()
    }

    #[test]
    fn selective_pattern_scheduled_first() {
        let store = skewed_store();
        // Source order: the huge write pattern first, the rare start second.
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.order[0], 1, "start pattern must run first");
        assert!(plan.estimates[1] < plan.estimates[0]);
    }

    #[test]
    fn source_order_kept_without_prioritization() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let plan = plan(&a, &store, &resolved, false);
        assert_eq!(plan.order, vec![0, 1]);
    }

    #[test]
    fn unsatisfiable_variable_resolves_to_empty() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p["not_in_dictionary.exe"] write file f as e return p"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        assert_eq!(resolved[0], Some(vec![]));
        // And the estimate reflects maximal pruning.
        let plan = plan(&a, &store, &resolved, true);
        assert_eq!(plan.estimates[0], 0);
    }

    #[test]
    fn unconstrained_variable_resolves_to_none() {
        let store = skewed_store();
        let a = analyzed("proc p write file f as e return p", &store);
        let resolved = resolve_vars(&a, &store);
        assert!(resolved.iter().all(Option::is_none));
    }

    #[test]
    fn prepare_matches_uncached_resolution_and_plan() {
        let store = skewed_store();
        let a = analyzed(
            r#"proc p3 write file f1 as evt2
               proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               return p1"#,
            &store,
        );
        let resolved = resolve_vars(&a, &store);
        let uncached = plan(&a, &store, &resolved, true);
        let cache = PlanCache::default();
        for round in 0..3 {
            let ctx = prepare(&a, &store, true, Some(&cache));
            assert_eq!(ctx.resolved, resolved, "round {round}");
            assert_eq!(ctx.plan.order, uncached.order);
            assert_eq!(ctx.plan.estimates, uncached.estimates);
        }
        let (hits, misses) = cache.counters();
        assert!(hits > 0, "repeat rounds must hit");
        assert!(misses > 0, "first round must miss");
    }

    #[test]
    fn plan_cache_invalidates_on_store_epoch_bump() {
        let mut store = skewed_store();
        let a = analyzed(r#"proc p["%osql.exe"] start proc q as e return p"#, &store);
        let cache = PlanCache::default();
        let before = prepare(&a, &store, true, Some(&cache));
        assert_eq!(before.resolved[0].as_ref().map(Vec::len), Some(1));
        // Ingest a second osql.exe process: the dictionary changes, the
        // epoch bumps, and the cached resolution must not survive.
        store.ingest_all(&[aiql_storage::RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(9, "cmd.exe", "admin"),
            EntitySpec::process(10, "/tools/osql.exe", "admin"),
            Timestamp::from_secs(60),
            0,
        )]);
        let after = prepare(&a, &store, true, Some(&cache));
        assert_eq!(after.resolved[0].as_ref().map(Vec::len), Some(2));
        let fresh = prepare(&a, &store, true, None);
        assert_eq!(after.resolved, fresh.resolved);
        assert_eq!(after.plan.estimates, fresh.plan.estimates);
    }

    #[test]
    fn plan_cache_is_store_scoped() {
        let store_a = skewed_store();
        let mut store_b = EventStore::default();
        store_b.ingest_all(&[aiql_storage::RawEvent::instant(
            AgentId(1),
            Operation::Start,
            EntitySpec::process(1, "cmd.exe", "x"),
            EntitySpec::process(2, "osql.exe", "x"),
            Timestamp::from_secs(1),
            0,
        )]);
        let cache = PlanCache::default();
        let qa = analyzed(
            r#"proc p["%sqlservr.exe"] write file f as e return p"#,
            &store_a,
        );
        let ra = prepare(&qa, &store_a, true, Some(&cache));
        // Same constraint text against a different store must not reuse the
        // other store's cached ids.
        let qb = analyzed(
            r#"proc p["%sqlservr.exe"] write file f as e return p"#,
            &store_b,
        );
        let rb = prepare(&qb, &store_b, true, Some(&cache));
        assert_eq!(ra.resolved[0].as_ref().map(Vec::len), Some(1));
        assert_eq!(rb.resolved[0].as_ref().map(Vec::len), Some(0));
    }
}
