//! Multievent query execution: per-pattern data queries with binding
//! propagation, parallel partition scans, multi-way join, and projection.
//!
//! Two data paths exist, selected by `EngineConfig::late_materialization`:
//!
//! * **Late materialization** (default): candidate lists, binding
//!   propagation, and the multi-way join carry [`EventRef`]s — ⟨partition,
//!   row⟩ pairs resolved against the columnar segments on demand. Full
//!   `Event` structs are built exactly once, for the tuples that survive
//!   the join.
//! * **Materializing** (the seed's path, kept for ablation): every scan
//!   copies events out of the segments and the join clones them through
//!   each intermediate tuple.

use std::collections::HashMap;
use std::sync::Arc;

use aiql_lang::{CmpOp, Expr, SortDir, TemporalOp};
use aiql_model::{EntityId, Event, Timestamp, Value};
use aiql_storage::{EventFilter, EventStore, IdSet, PartitionKey, Segment};

use crate::analyze::AnalyzedMultievent;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::eval::{self, agg_key, RowCtx, SlotEnv, SlotExpr, SlotRow};
use crate::pool::ScanPool;
use crate::result::ResultTable;
use crate::schedule::{self, PlanCache, PlanCtx};

/// One candidate match: an event per pattern plus the implied variable
/// bindings.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Event per pattern, in source order.
    pub events: Vec<Option<Event>>,
    /// Entity binding per variable.
    pub vars: Vec<Option<EntityId>>,
}

/// A row reference: index into the query's partition table plus the row
/// inside that partition's segment. 8 bytes instead of the 56-byte `Event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventRef {
    /// Index into [`PartTable::keys`].
    pub part: u32,
    /// Row inside the partition's segment.
    pub row: u32,
}

/// Sentinel for "no event placed for this pattern yet".
const NO_REF: EventRef = EventRef {
    part: u32::MAX,
    row: u32::MAX,
};

/// Sentinel for "variable unbound" in the arena's binding columns
/// (entity ids are dense store indices, nowhere near `u32::MAX`).
const NO_VAR: u32 = u32::MAX;

/// Intermediate tuples of the late-materialization join, stored as two flat
/// arrays with fixed strides (`npatterns` refs + `nvars` bindings per
/// tuple). Growing the frontier copies plain `u32`/8-byte rows — no
/// per-tuple heap allocation, unlike the materializing join's
/// `Vec<Option<Event>>` clones.
#[derive(Debug, Default)]
struct RefArena {
    npatterns: usize,
    nvars: usize,
    events: Vec<EventRef>,
    vars: Vec<u32>,
}

impl RefArena {
    fn new(npatterns: usize, nvars: usize) -> Self {
        RefArena {
            npatterns,
            nvars,
            events: Vec::new(),
            vars: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        // Queries always bind at least one variable, but keep the
        // degenerate nvars == 0 case well-defined.
        self.vars
            .len()
            .checked_div(self.nvars)
            .unwrap_or_else(|| usize::from(!self.events.is_empty()))
    }

    fn events_of(&self, i: usize) -> &[EventRef] {
        &self.events[i * self.npatterns..(i + 1) * self.npatterns]
    }

    fn vars_of(&self, i: usize) -> &[u32] {
        &self.vars[i * self.nvars..(i + 1) * self.nvars]
    }

    /// Appends a copy of tuple `i` of `src`, returning the new tuple index.
    fn push_from(&mut self, src: &RefArena, i: usize) -> usize {
        self.events.extend_from_slice(src.events_of(i));
        self.vars.extend_from_slice(src.vars_of(i));
        self.len() - 1
    }

    fn set_event(&mut self, i: usize, pattern: usize, r: EventRef) {
        self.events[i * self.npatterns + pattern] = r;
    }

    fn set_var(&mut self, i: usize, var: usize, id: EntityId) {
        self.vars[i * self.nvars + var] = id.raw();
    }
}

/// Snapshot of the store's partitions for one query: the address space
/// [`EventRef`]s resolve against. Keys are ascending (the store's partition
/// order), so a sorted key lookup gives the partition index.
struct PartTable<'a> {
    keys: Vec<PartitionKey>,
    segs: Vec<&'a Segment>,
}

impl<'a> PartTable<'a> {
    fn build(store: &'a EventStore) -> Self {
        let keys = store.partition_list();
        let segs = keys
            .iter()
            .map(|&k| store.segment(k).expect("listed partition exists"))
            .collect();
        PartTable { keys, segs }
    }

    #[inline]
    fn index_of(&self, key: PartitionKey) -> u32 {
        self.keys
            .binary_search(&key)
            .expect("partition key in table") as u32
    }

    #[inline]
    fn seg(&self, r: EventRef) -> &'a Segment {
        self.segs[r.part as usize]
    }

    #[inline]
    fn subject(&self, r: EventRef) -> EntityId {
        self.seg(r).subject_at(r.row)
    }

    #[inline]
    fn object(&self, r: EventRef) -> EntityId {
        self.seg(r).object_at(r.row)
    }

    #[inline]
    fn start(&self, r: EventRef) -> Timestamp {
        self.seg(r).start_at(r.row)
    }

    #[inline]
    fn end(&self, r: EventRef) -> Timestamp {
        self.seg(r).end_at(r.row)
    }

    /// Materializes the referenced event (the single materialization point
    /// of the late path).
    #[inline]
    fn event(&self, r: EventRef) -> Event {
        self.seg(r)
            .event_at(self.keys[r.part as usize].agent, r.row as usize)
    }
}

/// The multievent executor.
pub struct MultieventExec<'a> {
    store: &'a EventStore,
    a: &'a AnalyzedMultievent,
    config: &'a EngineConfig,
    pool: Option<Arc<ScanPool>>,
    plan_cache: Option<Arc<PlanCache>>,
}

/// Statistics of one execution, surfaced for benches and ablations.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Events fetched per pattern (source order).
    pub fetched: Vec<usize>,
    /// Pattern execution order used.
    pub order: Vec<usize>,
    /// Final joined tuple count.
    pub tuples: usize,
}

impl<'a> MultieventExec<'a> {
    /// Creates an executor over a store.
    pub fn new(store: &'a EventStore, a: &'a AnalyzedMultievent, config: &'a EngineConfig) -> Self {
        MultieventExec {
            store,
            a,
            config,
            pool: None,
            plan_cache: None,
        }
    }

    /// Attaches a persistent scan pool (parallel scans otherwise spawn
    /// scoped threads per scan, which is the ablation baseline).
    #[must_use]
    pub fn with_pool(mut self, pool: Option<Arc<ScanPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches a cross-query plan-resolution cache (ignored when
    /// `EngineConfig::plan_cache` is off).
    #[must_use]
    pub fn with_plan_cache(mut self, cache: Option<Arc<PlanCache>>) -> Self {
        self.plan_cache = cache;
        self
    }

    /// Builds the shared phase of this execution: resolved vars, base
    /// filters, and the schedule — computed once per query, memoized across
    /// queries when a plan cache is attached.
    fn prepare(&self) -> PlanCtx {
        let cache = if self.config.plan_cache {
            self.plan_cache.as_deref()
        } else {
            None
        };
        schedule::prepare(self.a, self.store, self.config.prioritize_pruning, cache)
    }

    /// Runs the query to a result table.
    pub fn run(&self) -> Result<ResultTable, EngineError> {
        self.run_with_stats().map(|(table, _)| table)
    }

    /// Runs the query and also returns execution statistics.
    pub fn run_with_stats(&self) -> Result<(ResultTable, ExecStats), EngineError> {
        if self.config.late_materialization {
            // Late pipeline straight into projection: surviving tuples are
            // materialized one at a time into a reused row context — no
            // intermediate `Vec<Tuple>` is ever built. With
            // `compiled_projection`, the context is a slot row (dense
            // arrays, no hashing) and only the event slots the projection
            // reads are materialized at all.
            let parts = PartTable::build(self.store);
            let (arena, truncated, stats) = self.match_refs(&parts)?;
            let compiled = self
                .config
                .compiled_projection
                .then(|| compile_projection(self.store, self.a))
                .flatten();
            let mut table = match &compiled {
                Some(cp) => project_compiled(self.store, self.a, cp, arena.len(), |i, row| {
                    fill_slots_arena(&arena, &parts, cp, i, row);
                })?,
                None => project_with(self.store, self.a, arena.len(), |i, ctx| {
                    fill_ctx_arena(self.a, &arena, &parts, i, ctx);
                })?,
            };
            table.truncated = truncated;
            Ok((table, stats))
        } else {
            let (tuples, truncated, stats) = self.match_tuples_materializing()?;
            let mut table = project(self.store, self.a, &tuples)?;
            table.truncated = truncated;
            Ok((table, stats))
        }
    }

    /// Finds all joined tuples satisfying the query's pattern constraints.
    ///
    /// With `late_materialization` the pipeline carries [`EventRef`]s end to
    /// end and materializes events only for the surviving tuples returned
    /// here; otherwise the seed's materializing pipeline runs. (Callers that
    /// only need projection should use [`MultieventExec::run`], which skips
    /// this materialization entirely.)
    pub fn match_tuples(&self) -> Result<(Vec<Tuple>, bool, ExecStats), EngineError> {
        if !self.config.late_materialization {
            return self.match_tuples_materializing();
        }
        let parts = PartTable::build(self.store);
        let (arena, truncated, stats) = self.match_refs(&parts)?;
        // The single materialization point: survivors only.
        let tuples = (0..arena.len())
            .map(|ti| Tuple {
                events: arena
                    .events_of(ti)
                    .iter()
                    .map(|&r| (r != NO_REF).then(|| parts.event(r)))
                    .collect(),
                vars: arena
                    .vars_of(ti)
                    .iter()
                    .map(|&v| (v != NO_VAR).then_some(EntityId(v)))
                    .collect(),
            })
            .collect();
        Ok((tuples, truncated, stats))
    }

    /// Late-materialization pipeline: selection-vector scans produce row
    /// references and the join works over a flat arena of refs.
    fn match_refs(
        &self,
        parts: &PartTable<'a>,
    ) -> Result<(RefArena, bool, ExecStats), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let ctx = self.prepare();
        let plan = &ctx.plan;

        let mut candidates: Vec<Option<Vec<EventRef>>> = vec![None; n];
        let mut bound: HashMap<usize, IdSet> = HashMap::new();
        // (min_start, max_start, min_end, max_end) per executed pattern.
        let mut time_stats: Vec<Option<(i64, i64, i64, i64)>> = vec![None; n];
        let mut stats = ExecStats {
            fetched: vec![0; n],
            order: plan.order.clone(),
            tuples: 0,
        };

        for &i in &plan.order {
            let mut filter = ctx.filters[i].clone();
            let p = &a.patterns[i];
            if !self.config.entity_pushdown {
                if a.vars[p.subject].unsatisfiable || a.vars[p.object].unsatisfiable {
                    return Ok((RefArena::new(n, a.vars.len()), false, stats));
                }
                filter.subjects = None;
                filter.objects = None;
            }
            if self.config.semi_join_pushdown {
                for (var, is_subject) in [(p.subject, true), (p.object, false)] {
                    if let Some(b) = bound.get(&var) {
                        let slot = if is_subject {
                            &mut filter.subjects
                        } else {
                            &mut filter.objects
                        };
                        match slot {
                            // In-place bitmap AND — no per-pattern set rebuild.
                            Some(existing) => existing.intersect_with(b),
                            None => *slot = Some(b.clone()),
                        }
                    }
                }
            }
            if self.config.temporal_narrowing {
                self.narrow_window(&mut filter, i, &time_stats);
            }
            let mut refs = self.scan_refs(parts, &filter, plan.estimates[i]);
            // Enforce the declared entity kinds and (without entity
            // pushdown) the per-variable attribute constraints, reading the
            // entity columns through the refs.
            let (sub_kind, obj_kind) = (a.vars[p.subject].kind, a.vars[p.object].kind);
            let same_var = p.subject == p.object;
            let entities = self.store.entities();
            refs.retain(|&r| {
                let (subj, obj) = (parts.subject(r), parts.object(r));
                if entities.get(subj).kind() != sub_kind
                    || entities.get(obj).kind() != obj_kind
                    || (same_var && subj != obj)
                {
                    return false;
                }
                if !self.config.entity_pushdown {
                    for (var_idx, id) in [(p.subject, subj), (p.object, obj)] {
                        let entity = entities.get(id);
                        for c in &a.vars[var_idx].constraints {
                            if !entities.eval(entity, c) {
                                return false;
                            }
                        }
                    }
                }
                true
            });
            stats.fetched[i] = refs.len();
            if refs.is_empty() {
                return Ok((RefArena::new(n, a.vars.len()), false, stats));
            }
            // Update bindings and time statistics for later patterns.
            if self.config.semi_join_pushdown {
                bound.insert(
                    p.subject,
                    IdSet::from_iter(refs.iter().map(|&r| parts.subject(r))),
                );
                bound.insert(
                    p.object,
                    IdSet::from_iter(refs.iter().map(|&r| parts.object(r))),
                );
            }
            let mut ts = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
            for &r in &refs {
                let (start, end) = (parts.start(r).micros(), parts.end(r).micros());
                ts.0 = ts.0.min(start);
                ts.1 = ts.1.max(start);
                ts.2 = ts.2.min(end);
                ts.3 = ts.3.max(end);
            }
            time_stats[i] = Some(ts);
            candidates[i] = Some(refs);
        }

        let (arena, truncated) = self.join_refs(parts, candidates)?;
        stats.tuples = arena.len();
        Ok((arena, truncated, stats))
    }

    /// The seed's materializing pipeline (kept intact for the ablation
    /// benches): scans copy full events; the join clones them per tuple.
    fn match_tuples_materializing(&self) -> Result<(Vec<Tuple>, bool, ExecStats), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let ctx = self.prepare();
        let plan = &ctx.plan;

        let mut candidates: Vec<Option<Vec<Event>>> = vec![None; n];
        let mut bound: HashMap<usize, IdSet> = HashMap::new();
        // (min_start, max_start, min_end, max_end) per executed pattern.
        let mut time_stats: Vec<Option<(i64, i64, i64, i64)>> = vec![None; n];
        let mut stats = ExecStats {
            fetched: vec![0; n],
            order: plan.order.clone(),
            tuples: 0,
        };

        for &i in &plan.order {
            let mut filter = ctx.filters[i].clone();
            let p = &a.patterns[i];
            if !self.config.entity_pushdown {
                // Without the domain-specific pushdown the scan cannot use
                // entity posting lists; constraints are verified per row
                // below (but unsatisfiable constraints still short-circuit).
                if a.vars[p.subject].unsatisfiable || a.vars[p.object].unsatisfiable {
                    return Ok((Vec::new(), false, stats));
                }
                filter.subjects = None;
                filter.objects = None;
            }
            if self.config.semi_join_pushdown {
                for (var, is_subject) in [(p.subject, true), (p.object, false)] {
                    if let Some(b) = bound.get(&var) {
                        let slot = if is_subject {
                            &mut filter.subjects
                        } else {
                            &mut filter.objects
                        };
                        match slot {
                            // In-place bitmap AND — no per-pattern set rebuild.
                            Some(existing) => existing.intersect_with(b),
                            None => *slot = Some(b.clone()),
                        }
                    }
                }
            }
            if self.config.temporal_narrowing {
                self.narrow_window(&mut filter, i, &time_stats);
            }
            let mut events = self.scan(&filter, plan.estimates[i]);
            // Enforce the declared entity kinds: an unconstrained variable
            // carries no id set, but `proc p write ip i` must still reject
            // file-write events. Without entity pushdown the attribute
            // constraints are verified per row here as well.
            let (sub_kind, obj_kind) = (a.vars[p.subject].kind, a.vars[p.object].kind);
            let same_var = p.subject == p.object;
            let entities = self.store.entities();
            events.retain(|e| {
                if entities.get(e.subject).kind() != sub_kind
                    || entities.get(e.object).kind() != obj_kind
                    || (same_var && e.subject != e.object)
                {
                    return false;
                }
                if !self.config.entity_pushdown {
                    for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
                        let entity = entities.get(id);
                        for c in &a.vars[var_idx].constraints {
                            if !entities.eval(entity, c) {
                                return false;
                            }
                        }
                    }
                }
                true
            });
            stats.fetched[i] = events.len();
            if events.is_empty() {
                return Ok((Vec::new(), false, stats));
            }
            // Update bindings and time statistics for later patterns.
            if self.config.semi_join_pushdown {
                bound.insert(
                    p.subject,
                    IdSet::from_iter(events.iter().map(|e| e.subject)),
                );
                bound.insert(p.object, IdSet::from_iter(events.iter().map(|e| e.object)));
            }
            let mut ts = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
            for e in &events {
                ts.0 = ts.0.min(e.start_time.micros());
                ts.1 = ts.1.max(e.start_time.micros());
                ts.2 = ts.2.min(e.end_time.micros());
                ts.3 = ts.3.max(e.end_time.micros());
            }
            time_stats[i] = Some(ts);
            candidates[i] = Some(events);
        }

        let (tuples, truncated) = self.join(candidates)?;
        stats.tuples = tuples.len();
        Ok((tuples, truncated, stats))
    }

    /// Narrows a pattern's scan window using the observed time bounds of
    /// already-executed patterns it is temporally related to.
    fn narrow_window(
        &self,
        filter: &mut EventFilter,
        idx: usize,
        time_stats: &[Option<(i64, i64, i64, i64)>],
    ) {
        use aiql_model::{TimeWindow, Timestamp};
        let mut lo = filter.window.start.micros();
        let mut hi = filter.window.end.micros();
        for t in &self.a.temporal {
            // `left before right`: left.end <= right.start.
            let (before_left, before_right) = match &t.op {
                TemporalOp::Before(b) => ((t.left, t.right), b),
                TemporalOp::After(b) => ((t.right, t.left), b),
            };
            let (l, r) = before_left;
            if r == idx {
                if let Some((_, _, min_end, max_end)) = time_stats[l] {
                    lo = lo.max(min_end);
                    if let Some(bound) = before_right {
                        hi = hi.min(max_end.saturating_add(bound.micros()).saturating_add(1));
                    }
                }
            }
            if l == idx {
                if let Some((_, max_start, ..)) = time_stats[r] {
                    // This pattern's events must end (hence start) no later
                    // than the latest start of the other side.
                    hi = hi.min(max_start.saturating_add(1));
                }
            }
        }
        if lo > filter.window.start.micros() || hi < filter.window.end.micros() {
            filter.window = TimeWindow::new(Timestamp(lo), Timestamp(hi.max(lo)));
        }
    }

    /// Whether a scan over `parts` partitions should fan out.
    /// `base_estimate` is the pattern's planned match estimate — an upper
    /// bound for the (possibly narrowed) `filter` actually scanned — so the
    /// common small-scan case skips the per-scan partition-statistics walk
    /// entirely. Only when the base estimate clears the threshold is the
    /// narrowed filter re-estimated, preventing fan-out for a scan that
    /// binding propagation has already shrunk to near-nothing.
    fn parallel_scan(&self, filter: &EventFilter, parts: usize, base_estimate: usize) -> bool {
        let threads = self.config.parallelism.max(1);
        if !(self.config.partition_parallel && threads > 1 && parts > 1) {
            return false;
        }
        if self.config.parallel_threshold == 0 {
            return true;
        }
        base_estimate >= self.config.parallel_threshold
            && self.store.estimate(filter) >= self.config.parallel_threshold
    }

    /// Runs `work(chunk_index, output_slot)` for every chunk of `keys`,
    /// fanning out on the persistent pool when attached (or scoped threads
    /// otherwise — the seed's per-scan spawn, kept for ablation). Outputs
    /// land in chunk order, so parallel scans stay deterministic.
    fn scan_chunked<T: Send>(
        &self,
        keys: &[PartitionKey],
        work: impl Fn(&[PartitionKey], &mut Vec<T>) + Sync + Send,
    ) -> Vec<T> {
        let threads = self.config.parallelism.max(1);
        // Chunks finer than the thread count let the pool's self-scheduling
        // balance skewed partitions.
        let chunk = keys.len().div_ceil(threads * 4).max(1);
        let groups: Vec<&[PartitionKey]> = keys.chunks(chunk).collect();
        let slots: Vec<std::sync::Mutex<Vec<T>>> = groups
            .iter()
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        match &self.pool {
            Some(pool) => {
                pool.run_chunks(groups.len(), &|i| {
                    let mut out = Vec::new();
                    work(groups[i], &mut out);
                    *slots[i].lock().expect("scan slot") = out;
                });
            }
            None => {
                let work = &work;
                std::thread::scope(|s| {
                    let per = groups.len().div_ceil(threads).max(1);
                    for (slot_group, group_group) in slots.chunks(per).zip(groups.chunks(per)) {
                        s.spawn(move || {
                            for (slot, group) in slot_group.iter().zip(group_group) {
                                let mut out = Vec::new();
                                work(group, &mut out);
                                *slot.lock().expect("scan slot") = out;
                            }
                        });
                    }
                });
            }
        }
        let mut out = Vec::new();
        for slot in slots {
            out.append(&mut slot.into_inner().expect("scan slot"));
        }
        out
    }

    /// Scans the store for one data query, in parallel across hypertable
    /// partitions when enabled, applying residual global predicates.
    /// Materializing path: events are copied out of the segments.
    fn scan(&self, filter: &EventFilter, estimate: usize) -> Vec<Event> {
        let residual = &self.a.globals.residual;
        let parts = self.store.partitions_for(filter);
        if !self.parallel_scan(filter, parts.len(), estimate) {
            let mut out = Vec::new();
            for key in parts {
                self.store.scan_partition(key, filter, &mut |e| {
                    if residual_ok(e, residual) {
                        out.push(*e);
                    }
                });
            }
            return out;
        }
        let store = self.store;
        self.scan_chunked(&parts, |group, out| {
            for &key in group {
                store.scan_partition(key, filter, &mut |e| {
                    if residual_ok(e, residual) {
                        out.push(*e);
                    }
                });
            }
        })
    }

    /// Late-materialization scan: selection vectors per partition become
    /// [`EventRef`]s; residual global predicates are verified against the
    /// columns without building events.
    fn scan_refs(
        &self,
        table: &PartTable<'a>,
        filter: &EventFilter,
        estimate: usize,
    ) -> Vec<EventRef> {
        let residual = &self.a.globals.residual;
        let parts = self.store.partitions_for(filter);
        let collect_part = |key: PartitionKey, out: &mut Vec<EventRef>| {
            let part = table.index_of(key);
            let seg = table.segs[part as usize];
            for row in self.store.select_partition(key, filter) {
                let r = EventRef { part, row };
                if residual.is_empty()
                    || residual_ok(&seg.event_at(key.agent, row as usize), residual)
                {
                    out.push(r);
                }
            }
        };
        if !self.parallel_scan(filter, parts.len(), estimate) {
            let mut out = Vec::new();
            for key in parts {
                collect_part(key, &mut out);
            }
            return out;
        }
        self.scan_chunked(&parts, |group, out| {
            for &key in group {
                collect_part(key, out);
            }
        })
    }

    /// Multi-way hash join over the per-pattern candidate lists, verifying
    /// shared-variable equality and temporal relationships.
    fn join(&self, candidates: Vec<Option<Vec<Event>>>) -> Result<(Vec<Tuple>, bool), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let nvars = a.vars.len();
        // Join order: smallest candidate list first.
        let mut join_order: Vec<usize> = (0..n).collect();
        join_order.sort_by_key(|&i| {
            (
                candidates[i].as_ref().map(Vec::len).unwrap_or(usize::MAX),
                i,
            )
        });

        let mut tuples: Vec<Tuple> = vec![Tuple {
            events: vec![None; n],
            vars: vec![None; nvars],
        }];
        let mut truncated = false;

        for &i in &join_order {
            let p = &a.patterns[i];
            let events = candidates[i].as_ref().expect("all patterns fetched");
            // Vars of this pattern, deduped (subject may equal object).
            let pattern_vars: Vec<usize> = if p.subject == p.object {
                vec![p.subject]
            } else {
                vec![p.subject, p.object]
            };
            let mut next: Vec<Tuple> = Vec::new();
            // Index events by the entity ids of vars that are already bound
            // in at least one tuple. For simplicity (and since tuples at a
            // given step share the same bound-var set), use the first tuple
            // as the prototype.
            let proto_bound: Vec<usize> = pattern_vars
                .iter()
                .copied()
                .filter(|&v| tuples.first().map(|t| t.vars[v].is_some()).unwrap_or(false))
                .collect();
            let mut index: HashMap<Vec<EntityId>, Vec<&Event>> = HashMap::new();
            for e in events {
                if p.subject == p.object && e.subject != e.object {
                    continue;
                }
                let key: Vec<EntityId> = proto_bound
                    .iter()
                    .map(|&v| if v == p.subject { e.subject } else { e.object })
                    .collect();
                index.entry(key).or_default().push(e);
            }
            'tuples: for t in &tuples {
                let key: Vec<EntityId> = proto_bound
                    .iter()
                    .map(|&v| t.vars[v].expect("prototype bound var"))
                    .collect();
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                for e in matches {
                    if !self.temporal_ok(i, e, t) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.events[i] = Some(**e);
                    nt.vars[p.subject] = Some(e.subject);
                    nt.vars[p.object] = Some(e.object);
                    next.push(nt);
                    if next.len() >= self.config.max_intermediate {
                        truncated = true;
                        break 'tuples;
                    }
                }
            }
            tuples = next;
            if tuples.is_empty() {
                return Ok((tuples, truncated));
            }
        }
        Ok((tuples, truncated))
    }

    /// Multi-way hash join over per-pattern *reference* lists: identical
    /// traversal to [`MultieventExec::join`], but the tuple frontier lives
    /// in a flat [`RefArena`] (no per-tuple allocation) and join keys pack
    /// the at-most-two bound entity ids of a pattern into one `u64`.
    fn join_refs(
        &self,
        parts: &PartTable<'a>,
        candidates: Vec<Option<Vec<EventRef>>>,
    ) -> Result<(RefArena, bool), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let nvars = a.vars.len();
        // Join order: smallest candidate list first.
        let mut join_order: Vec<usize> = (0..n).collect();
        join_order.sort_by_key(|&i| {
            (
                candidates[i].as_ref().map(Vec::len).unwrap_or(usize::MAX),
                i,
            )
        });

        let mut tuples = RefArena::new(n, nvars);
        tuples.events.resize(n, NO_REF);
        tuples.vars.resize(nvars, NO_VAR);
        let mut truncated = false;

        for &i in &join_order {
            let p = &a.patterns[i];
            let refs = candidates[i].as_ref().expect("all patterns fetched");
            let same_var = p.subject == p.object;
            // A pattern binds at most two variables, so the bound-var key
            // packs into one u64 (`NO_VAR` pads the unused half).
            let pattern_vars: [usize; 2] = [p.subject, p.object];
            let proto_vars = tuples.vars_of(0);
            let bound_vars: Vec<usize> = pattern_vars
                .iter()
                .take(if same_var { 1 } else { 2 })
                .copied()
                .filter(|&v| proto_vars[v] != NO_VAR)
                .collect();
            let pack = |ids: [u32; 2]| (u64::from(ids[0]) << 32) | u64::from(ids[1]);
            let key_of_ref = |r: EventRef| {
                let mut ids = [NO_VAR; 2];
                for (slot, &v) in ids.iter_mut().zip(&bound_vars) {
                    *slot = if v == p.subject {
                        parts.subject(r).raw()
                    } else {
                        parts.object(r).raw()
                    };
                }
                pack(ids)
            };
            let mut index: HashMap<u64, Vec<EventRef>> = HashMap::new();
            for &r in refs {
                if same_var && parts.subject(r) != parts.object(r) {
                    continue;
                }
                index.entry(key_of_ref(r)).or_default().push(r);
            }
            let mut next = RefArena::new(n, nvars);
            'tuples: for t in 0..tuples.len() {
                let tvars = tuples.vars_of(t);
                let mut ids = [NO_VAR; 2];
                for (slot, &v) in ids.iter_mut().zip(&bound_vars) {
                    *slot = tvars[v];
                }
                let Some(matches) = index.get(&pack(ids)) else {
                    continue;
                };
                for &r in matches {
                    if !self.temporal_ok_refs(parts, i, r, &tuples, t) {
                        continue;
                    }
                    let ti = next.push_from(&tuples, t);
                    next.set_event(ti, i, r);
                    next.set_var(ti, p.subject, parts.subject(r));
                    next.set_var(ti, p.object, parts.object(r));
                    if next.len() >= self.config.max_intermediate {
                        truncated = true;
                        break 'tuples;
                    }
                }
            }
            tuples = next;
            if tuples.len() == 0 {
                return Ok((tuples, truncated));
            }
        }
        Ok((tuples, truncated))
    }

    /// Temporal verification of the ref join, reading only the time columns.
    fn temporal_ok_refs(
        &self,
        parts: &PartTable<'a>,
        i: usize,
        r: EventRef,
        tuples: &RefArena,
        t: usize,
    ) -> bool {
        let events = tuples.events_of(t);
        for rel in &self.a.temporal {
            let (l, rt, bound) = match &rel.op {
                TemporalOp::Before(b) => (rel.left, rel.right, b),
                // (after is before with sides swapped)
                TemporalOp::After(b) => (rel.right, rel.left, b),
            };
            let (left_end, right_start) = if l == i && events[rt] != NO_REF {
                (parts.end(r), parts.start(events[rt]))
            } else if rt == i && events[l] != NO_REF {
                (parts.end(events[l]), parts.start(r))
            } else {
                continue;
            };
            if left_end > right_start {
                return false;
            }
            if let Some(b) = bound {
                if (right_start - left_end) > *b {
                    return false;
                }
            }
        }
        true
    }

    /// Verifies every temporal relationship between pattern `i`'s candidate
    /// event and the events already placed in the tuple.
    fn temporal_ok(&self, i: usize, e: &Event, t: &Tuple) -> bool {
        for rel in &self.a.temporal {
            let (l, r, bound, is_before) = match &rel.op {
                TemporalOp::Before(b) => (rel.left, rel.right, b, true),
                TemporalOp::After(b) => (rel.right, rel.left, b, true),
                // (after is before with sides swapped)
            };
            let _ = is_before;
            let (left_event, right_event) = if l == i && t.events[r].is_some() {
                (*e, t.events[r].expect("checked"))
            } else if r == i && t.events[l].is_some() {
                (t.events[l].expect("checked"), *e)
            } else {
                continue;
            };
            if left_event.end_time > right_event.start_time {
                return false;
            }
            if let Some(b) = bound {
                if (right_event.start_time - left_event.end_time) > *b {
                    return false;
                }
            }
        }
        true
    }
}

/// Checks the residual global predicates against one event.
pub fn residual_ok(e: &Event, residual: &[(String, CmpOp, Value)]) -> bool {
    residual.iter().all(|(attr, op, value)| {
        let Ok(actual) = e.get(attr) else {
            return false;
        };
        let bin = match op {
            CmpOp::Eq => aiql_lang::BinOp::Eq,
            CmpOp::Ne => aiql_lang::BinOp::Ne,
            CmpOp::Lt => aiql_lang::BinOp::Lt,
            CmpOp::Le => aiql_lang::BinOp::Le,
            CmpOp::Gt => aiql_lang::BinOp::Gt,
            CmpOp::Ge => aiql_lang::BinOp::Ge,
        };
        eval::apply_binop(bin, actual, *value).truthy()
    })
}

/// Resets a reused row context (keeping map capacity across tuples).
fn clear_ctx(ctx: &mut RowCtx<'_>) {
    ctx.var_entity.clear();
    ctx.events.clear();
    ctx.aliases.clear();
    ctx.agg_values.clear();
}

/// Populates the row context from a materialized tuple.
fn fill_ctx_tuple<'a>(a: &'a AnalyzedMultievent, t: &Tuple, ctx: &mut RowCtx<'a>) {
    clear_ctx(ctx);
    for (vi, var) in a.vars.iter().enumerate() {
        if let Some(id) = t.vars[vi] {
            ctx.var_entity.insert(var.name.as_str(), id);
        }
    }
    for (pi, p) in a.patterns.iter().enumerate() {
        if let Some(e) = t.events[pi] {
            ctx.events.insert(p.name.as_str(), e);
        }
    }
}

/// Populates the row context straight from the ref arena, materializing the
/// tuple's events on the fly.
fn fill_ctx_arena<'a>(
    a: &'a AnalyzedMultievent,
    arena: &RefArena,
    parts: &PartTable<'_>,
    i: usize,
    ctx: &mut RowCtx<'a>,
) {
    clear_ctx(ctx);
    for (vi, var) in a.vars.iter().enumerate() {
        let id = arena.vars_of(i)[vi];
        if id != NO_VAR {
            ctx.var_entity.insert(var.name.as_str(), EntityId(id));
        }
    }
    for (pi, p) in a.patterns.iter().enumerate() {
        let r = arena.events_of(i)[pi];
        if r != NO_REF {
            ctx.events.insert(p.name.as_str(), parts.event(r));
        }
    }
}

/// Aggregate accumulator.
#[derive(Debug, Clone, Default)]
struct AggAcc {
    count: u64,
    sum: f64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    fn new() -> Self {
        AggAcc {
            all_int: true,
            ..Default::default()
        }
    }

    fn add(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        if !matches!(v, Value::Int(_)) {
            self.all_int = false;
        }
        self.min = Some(match self.min {
            Some(m) if eval::cmp_values(&m, &v).is_le() => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if eval::cmp_values(&m, &v).is_ge() => m,
            _ => v,
        });
    }

    fn finalize(&self, func: aiql_lang::AggFunc) -> Value {
        use aiql_lang::AggFunc::*;
        match func {
            Count => Value::Int(self.count as i64),
            Sum => {
                if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.unwrap_or(Value::Null),
            Max => self.max.unwrap_or(Value::Null),
        }
    }
}

/// Collects every aggregate node appearing in the return items and having
/// clause.
pub(crate) fn collect_aggs(a: &AnalyzedMultievent) -> Vec<(String, aiql_lang::AggFunc, Expr)> {
    let mut out: Vec<(String, aiql_lang::AggFunc, Expr)> = Vec::new();
    let mut visit = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::Agg { func, arg } = node {
                let key = agg_key(node);
                if !out.iter().any(|(k, _, _)| k == &key) {
                    out.push((key, *func, (**arg).clone()));
                }
            }
        });
    };
    for item in &a.ret.items {
        visit(&item.expr);
    }
    if let Some(h) = &a.having {
        visit(h);
    }
    out
}

/// Column header for a return item.
fn column_name(item: &aiql_lang::ReturnItem) -> String {
    item.alias
        .clone()
        .unwrap_or_else(|| aiql_lang::pretty::print_expr(&item.expr))
}

/// A fully slot-compiled projection: return items, grouping keys, having
/// filter, and aggregate arguments with every name resolved to a dense
/// slot, plus the sets of event/variable slots the projection actually
/// reads. Tuples bind into a reused [`SlotRow`] — no per-tuple hash maps —
/// and events outside `used_events` are never materialized.
struct CompiledProjection {
    /// Compiled return items, in column order.
    items: Vec<SlotExpr>,
    /// Alias slot written after evaluating each item (aggregated path).
    alias_slot: Vec<Option<usize>>,
    /// Number of alias slots.
    naliases: usize,
    /// Compiled grouping keys.
    group_by: Vec<SlotExpr>,
    /// Compiled having filter.
    having: Option<SlotExpr>,
    /// Aggregates: function + compiled argument, in [`collect_aggs`] order
    /// (the dense index [`SlotExpr::Agg`] nodes refer to).
    aggs: Vec<(aiql_lang::AggFunc, SlotExpr)>,
    /// Event slots referenced anywhere in the projection.
    used_events: Vec<usize>,
    /// Variable slots referenced anywhere in the projection.
    used_vars: Vec<usize>,
}

/// Compiles a query's projection to slots. `None` when any expression
/// resists compilation (unknown name, historical access) — the caller then
/// keeps the dynamic [`RowCtx`] path, which reproduces legacy behavior
/// bit for bit, errors included.
fn compile_projection(store: &EventStore, a: &AnalyzedMultievent) -> Option<CompiledProjection> {
    let aggs_src = collect_aggs(a);
    let mut env = SlotEnv {
        vars: a
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect(),
        events: a
            .patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect(),
        aliases: HashMap::new(),
        aggs: aggs_src
            .iter()
            .enumerate()
            .map(|(i, (k, _, _))| (k.clone(), i))
            .collect(),
    };
    // Compile items in order; each alias becomes visible to later items,
    // the grouping keys, the having clause, and the aggregate arguments —
    // the same progressive scope the analyzer validated against.
    let mut items = Vec::with_capacity(a.ret.items.len());
    let mut alias_slot = Vec::with_capacity(a.ret.items.len());
    let mut naliases = 0usize;
    for item in &a.ret.items {
        items.push(eval::compile_slots(&item.expr, store, &env)?);
        alias_slot.push(item.alias.as_ref().map(|alias| {
            let slot = naliases;
            naliases += 1;
            env.aliases.insert(alias.as_str(), slot);
            slot
        }));
    }
    let group_by: Vec<SlotExpr> = a
        .group_by
        .iter()
        .map(|g| eval::compile_slots(g, store, &env))
        .collect::<Option<_>>()?;
    let having = match &a.having {
        Some(h) => Some(eval::compile_slots(h, store, &env)?),
        None => None,
    };
    let aggs: Vec<(aiql_lang::AggFunc, SlotExpr)> = aggs_src
        .iter()
        .map(|(_, func, arg)| Some((*func, eval::compile_slots(arg, store, &env)?)))
        .collect::<Option<_>>()?;

    let mut used_events: Vec<usize> = Vec::new();
    let mut used_vars: Vec<usize> = Vec::new();
    {
        let mut mark = |e: &SlotExpr| {
            e.visit(&mut |node| match node {
                SlotExpr::Event { slot, .. } if !used_events.contains(slot) => {
                    used_events.push(*slot);
                }
                SlotExpr::Entity { slot, .. } if !used_vars.contains(slot) => {
                    used_vars.push(*slot);
                }
                _ => {}
            });
        };
        for e in items.iter().chain(&group_by).chain(having.iter()) {
            mark(e);
        }
        for (_, arg) in &aggs {
            mark(arg);
        }
    }
    Some(CompiledProjection {
        items,
        alias_slot,
        naliases,
        group_by,
        having,
        aggs,
        used_events,
        used_vars,
    })
}

/// Populates a slot row from the ref arena, materializing only the event
/// slots the compiled projection reads.
fn fill_slots_arena(
    arena: &RefArena,
    parts: &PartTable<'_>,
    cp: &CompiledProjection,
    i: usize,
    row: &mut SlotRow,
) {
    for &v in &cp.used_vars {
        let id = arena.vars_of(i)[v];
        row.entities[v] = (id != NO_VAR).then_some(EntityId(id));
    }
    for &pi in &cp.used_events {
        let r = arena.events_of(i)[pi];
        row.events[pi] = (r != NO_REF).then(|| parts.event(r));
    }
}

/// Projection over slot rows: the same traversal as [`project_with`]
/// (grouping by first occurrence, per-item alias scope, having-after-items)
/// so the output is byte-identical — but every name lookup is an indexed
/// array access and the row context is filled without hashing.
fn project_compiled(
    store: &EventStore,
    a: &AnalyzedMultievent,
    cp: &CompiledProjection,
    ntuples: usize,
    mut fill: impl FnMut(usize, &mut SlotRow),
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a.ret.items.iter().map(column_name).collect();
    let mut table = ResultTable::new(columns);
    let aggregated = !cp.aggs.is_empty() || !a.group_by.is_empty();
    let mut ctx = SlotRow::new(a.vars.len(), a.patterns.len(), cp.naliases, cp.aggs.len());

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if !aggregated {
        for i in 0..ntuples {
            fill(i, &mut ctx);
            let mut row = Vec::with_capacity(cp.items.len());
            for item in &cp.items {
                row.push(item.eval(store, &ctx)?);
            }
            if let Some(h) = &cp.having {
                // having without aggregation degenerates to a row filter.
                if !h.eval(store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    } else {
        struct Group {
            rep: usize,
            accs: Vec<AggAcc>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for ti in 0..ntuples {
            fill(ti, &mut ctx);
            let mut key_vals = Vec::with_capacity(cp.group_by.len());
            for g in &cp.group_by {
                key_vals.push(g.eval(store, &ctx)?);
            }
            let key = ResultTable::row_key(&key_vals);
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    group_order.push(key.clone());
                    groups.entry(key).or_insert(Group {
                        rep: ti,
                        accs: cp.aggs.iter().map(|_| AggAcc::new()).collect(),
                    })
                }
            };
            for ((_, arg), acc) in cp.aggs.iter().zip(group.accs.iter_mut()) {
                acc.add(arg.eval(store, &ctx)?);
            }
        }
        for key in &group_order {
            let group = &groups[key];
            fill(group.rep, &mut ctx);
            for (slot, ((func, _), acc)) in cp.aggs.iter().zip(group.accs.iter()).enumerate() {
                ctx.aggs[slot] = acc.finalize(*func);
            }
            ctx.aliases.iter_mut().for_each(|v| *v = None);
            let mut row = Vec::with_capacity(cp.items.len());
            for (item, alias) in cp.items.iter().zip(&cp.alias_slot) {
                let v = item.eval(store, &ctx)?;
                if let Some(slot) = alias {
                    ctx.aliases[*slot] = Some(v);
                }
                row.push(v);
            }
            if let Some(h) = &cp.having {
                if !h.eval(store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    }

    finish_rows(a, &mut rows)?;
    table.rows = rows;
    Ok(table)
}

/// Projects joined tuples into the final result table (aggregation,
/// having, distinct, order by, limit).
pub fn project(
    store: &EventStore,
    a: &AnalyzedMultievent,
    tuples: &[Tuple],
) -> Result<ResultTable, EngineError> {
    project_with(store, a, tuples.len(), |i, ctx| {
        fill_ctx_tuple(a, &tuples[i], ctx);
    })
}

/// Core projection over any tuple source: `fill(i, ctx)` populates the
/// (reused) row context for tuple `i`. The late-materialization path feeds
/// its ref arena through this, building each surviving tuple's events
/// exactly once and never allocating an intermediate tuple vector.
fn project_with<'a>(
    store: &EventStore,
    a: &'a AnalyzedMultievent,
    ntuples: usize,
    fill: impl Fn(usize, &mut RowCtx<'a>),
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a.ret.items.iter().map(column_name).collect();
    let mut table = ResultTable::new(columns);
    let aggs = collect_aggs(a);
    let aggregated = !aggs.is_empty() || !a.group_by.is_empty();
    let mut ctx = RowCtx::default();

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if !aggregated {
        for i in 0..ntuples {
            fill(i, &mut ctx);
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                row.push(eval::eval(&item.expr, store, &ctx)?);
            }
            if let Some(h) = &a.having {
                // having without aggregation degenerates to a row filter.
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    } else {
        // Group tuples.
        struct Group {
            rep: usize,
            accs: Vec<AggAcc>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for ti in 0..ntuples {
            fill(ti, &mut ctx);
            let mut key_vals = Vec::with_capacity(a.group_by.len());
            for g in &a.group_by {
                key_vals.push(eval::eval(g, store, &ctx)?);
            }
            let key = ResultTable::row_key(&key_vals);
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    group_order.push(key.clone());
                    groups.entry(key).or_insert(Group {
                        rep: ti,
                        accs: aggs.iter().map(|_| AggAcc::new()).collect(),
                    })
                }
            };
            for ((_, _, arg), acc) in aggs.iter().zip(group.accs.iter_mut()) {
                acc.add(eval::eval(arg, store, &ctx)?);
            }
        }
        for key in &group_order {
            let group = &groups[key];
            fill(group.rep, &mut ctx);
            for ((k, func, _), acc) in aggs.iter().zip(group.accs.iter()) {
                ctx.agg_values.insert(k.clone(), acc.finalize(*func));
            }
            // Alias environment (items may be referenced by alias in having).
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                let v = eval::eval(&item.expr, store, &ctx)?;
                if let Some(alias) = &item.alias {
                    ctx.aliases.insert(alias.clone(), v);
                }
                row.push(v);
            }
            if let Some(h) = &a.having {
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    }

    finish_rows(a, &mut rows)?;
    table.rows = rows;
    Ok(table)
}

/// The projection tail shared by the dynamic and slot-compiled paths:
/// distinct, order by, limit.
fn finish_rows(a: &AnalyzedMultievent, rows: &mut Vec<Vec<Value>>) -> Result<(), EngineError> {
    if a.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(ResultTable::row_key(r)));
    }

    if !a.order_by.is_empty() {
        // Each order key must correspond to an output column.
        let mut key_cols = Vec::with_capacity(a.order_by.len());
        for o in &a.order_by {
            let idx = a
                .ret
                .items
                .iter()
                .position(|item| {
                    item.expr == o.expr
                        || matches!(
                            (&o.expr, &item.alias),
                            (Expr::Ref { var, attr: None }, Some(alias)) if var == alias
                        )
                })
                .ok_or_else(|| {
                    EngineError::Analysis(
                        "order by must reference a returned column or alias".into(),
                    )
                })?;
            key_cols.push((idx, o.dir));
        }
        rows.sort_by(|x, y| {
            for (idx, dir) in &key_cols {
                let ord = eval::cmp_values(&x[*idx], &y[*idx]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = a.limit {
        rows.truncate(limit as usize);
    }
    Ok(())
}
