//! Multievent query execution: per-pattern data queries with binding
//! propagation, parallel partition scans, multi-way join, and projection.

use std::collections::HashMap;

use aiql_lang::{CmpOp, Expr, SortDir, TemporalOp};
use aiql_model::{EntityId, Event, Value};
use aiql_storage::{EventFilter, EventStore, IdSet};

use crate::analyze::AnalyzedMultievent;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::eval::{self, agg_key, RowCtx};
use crate::result::ResultTable;
use crate::schedule::{self, ResolvedVars};

/// One candidate match: an event per pattern plus the implied variable
/// bindings.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Event per pattern, in source order.
    pub events: Vec<Option<Event>>,
    /// Entity binding per variable.
    pub vars: Vec<Option<EntityId>>,
}

/// The multievent executor.
pub struct MultieventExec<'a> {
    store: &'a EventStore,
    a: &'a AnalyzedMultievent,
    config: &'a EngineConfig,
}

/// Statistics of one execution, surfaced for benches and ablations.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Events fetched per pattern (source order).
    pub fetched: Vec<usize>,
    /// Pattern execution order used.
    pub order: Vec<usize>,
    /// Final joined tuple count.
    pub tuples: usize,
}

impl<'a> MultieventExec<'a> {
    /// Creates an executor over a store.
    pub fn new(store: &'a EventStore, a: &'a AnalyzedMultievent, config: &'a EngineConfig) -> Self {
        MultieventExec { store, a, config }
    }

    /// Runs the query to a result table.
    pub fn run(&self) -> Result<ResultTable, EngineError> {
        let (tuples, truncated, _) = self.match_tuples()?;
        let mut table = project(self.store, self.a, &tuples)?;
        table.truncated = truncated;
        Ok(table)
    }

    /// Runs the query and also returns execution statistics.
    pub fn run_with_stats(&self) -> Result<(ResultTable, ExecStats), EngineError> {
        let (tuples, truncated, stats) = self.match_tuples()?;
        let mut table = project(self.store, self.a, &tuples)?;
        table.truncated = truncated;
        Ok((table, stats))
    }

    /// Finds all joined tuples satisfying the query's pattern constraints.
    pub fn match_tuples(&self) -> Result<(Vec<Tuple>, bool, ExecStats), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let resolved: ResolvedVars = schedule::resolve_vars(a, self.store);
        let plan = schedule::plan(a, self.store, &resolved, self.config.prioritize_pruning);

        let mut candidates: Vec<Option<Vec<Event>>> = vec![None; n];
        let mut bound: HashMap<usize, IdSet> = HashMap::new();
        // (min_start, max_start, min_end, max_end) per executed pattern.
        let mut time_stats: Vec<Option<(i64, i64, i64, i64)>> = vec![None; n];
        let mut stats = ExecStats {
            fetched: vec![0; n],
            order: plan.order.clone(),
            tuples: 0,
        };

        for &i in &plan.order {
            let mut filter = schedule::base_filter(a, i, &resolved);
            let p = &a.patterns[i];
            if !self.config.entity_pushdown {
                // Without the domain-specific pushdown the scan cannot use
                // entity posting lists; constraints are verified per row
                // below (but unsatisfiable constraints still short-circuit).
                if a.vars[p.subject].unsatisfiable || a.vars[p.object].unsatisfiable {
                    return Ok((Vec::new(), false, stats));
                }
                filter.subjects = None;
                filter.objects = None;
            }
            if self.config.semi_join_pushdown {
                for (var, is_subject) in [(p.subject, true), (p.object, false)] {
                    if let Some(b) = bound.get(&var) {
                        let narrowed = match if is_subject {
                            filter.subjects.take()
                        } else {
                            filter.objects.take()
                        } {
                            Some(existing) => {
                                IdSet::from_iter(existing.iter().filter(|id| b.contains(*id)))
                            }
                            None => b.clone(),
                        };
                        if is_subject {
                            filter.subjects = Some(narrowed);
                        } else {
                            filter.objects = Some(narrowed);
                        }
                    }
                }
            }
            if self.config.temporal_narrowing {
                self.narrow_window(&mut filter, i, &time_stats);
            }
            let mut events = self.scan(&filter);
            // Enforce the declared entity kinds: an unconstrained variable
            // carries no id set, but `proc p write ip i` must still reject
            // file-write events. Without entity pushdown the attribute
            // constraints are verified per row here as well.
            let (sub_kind, obj_kind) = (a.vars[p.subject].kind, a.vars[p.object].kind);
            let same_var = p.subject == p.object;
            let entities = self.store.entities();
            events.retain(|e| {
                if entities.get(e.subject).kind() != sub_kind
                    || entities.get(e.object).kind() != obj_kind
                    || (same_var && e.subject != e.object)
                {
                    return false;
                }
                if !self.config.entity_pushdown {
                    for (var_idx, id) in [(p.subject, e.subject), (p.object, e.object)] {
                        let entity = entities.get(id);
                        for c in &a.vars[var_idx].constraints {
                            if !entities.eval(entity, c) {
                                return false;
                            }
                        }
                    }
                }
                true
            });
            stats.fetched[i] = events.len();
            if events.is_empty() {
                return Ok((Vec::new(), false, stats));
            }
            // Update bindings and time statistics for later patterns.
            if self.config.semi_join_pushdown {
                bound.insert(p.subject, IdSet::from_iter(events.iter().map(|e| e.subject)));
                bound.insert(p.object, IdSet::from_iter(events.iter().map(|e| e.object)));
            }
            let mut ts = (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
            for e in &events {
                ts.0 = ts.0.min(e.start_time.micros());
                ts.1 = ts.1.max(e.start_time.micros());
                ts.2 = ts.2.min(e.end_time.micros());
                ts.3 = ts.3.max(e.end_time.micros());
            }
            time_stats[i] = Some(ts);
            candidates[i] = Some(events);
        }

        let (tuples, truncated) = self.join(candidates)?;
        stats.tuples = tuples.len();
        Ok((tuples, truncated, stats))
    }

    /// Narrows a pattern's scan window using the observed time bounds of
    /// already-executed patterns it is temporally related to.
    fn narrow_window(
        &self,
        filter: &mut EventFilter,
        idx: usize,
        time_stats: &[Option<(i64, i64, i64, i64)>],
    ) {
        use aiql_model::{TimeWindow, Timestamp};
        let mut lo = filter.window.start.micros();
        let mut hi = filter.window.end.micros();
        for t in &self.a.temporal {
            // `left before right`: left.end <= right.start.
            let (before_left, before_right) = match &t.op {
                TemporalOp::Before(b) => ((t.left, t.right), b),
                TemporalOp::After(b) => ((t.right, t.left), b),
            };
            let (l, r) = before_left;
            if r == idx {
                if let Some((_, _, min_end, max_end)) = time_stats[l] {
                    lo = lo.max(min_end);
                    if let Some(bound) = before_right {
                        hi = hi.min(max_end.saturating_add(bound.micros()).saturating_add(1));
                    }
                }
            }
            if l == idx {
                if let Some((_, max_start, ..)) = time_stats[r] {
                    // This pattern's events must end (hence start) no later
                    // than the latest start of the other side.
                    hi = hi.min(max_start.saturating_add(1));
                }
            }
        }
        if lo > filter.window.start.micros() || hi < filter.window.end.micros() {
            filter.window = TimeWindow::new(Timestamp(lo), Timestamp(hi.max(lo)));
        }
    }

    /// Scans the store for one data query, in parallel across hypertable
    /// partitions when enabled, applying residual global predicates.
    fn scan(&self, filter: &EventFilter) -> Vec<Event> {
        let residual = &self.a.globals.residual;
        let keep = |e: &Event| residual_ok(e, residual);
        let parts = self.store.partitions_for(filter);
        let threads = self.config.parallelism.max(1);
        let big_enough = self.config.parallel_threshold == 0
            || self.store.estimate(filter) >= self.config.parallel_threshold;
        if !self.config.partition_parallel || threads <= 1 || parts.len() <= 1 || !big_enough {
            let mut out = Vec::new();
            for key in parts {
                self.store.scan_partition(key, filter, &mut |e| {
                    if keep(e) {
                        out.push(*e);
                    }
                });
            }
            return out;
        }
        let chunk = parts.len().div_ceil(threads);
        let store = self.store;
        let mut results: Vec<Vec<Event>> = Vec::new();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = parts
                .chunks(chunk)
                .map(|group| {
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        for &key in group {
                            store.scan_partition(key, filter, &mut |e| {
                                if residual_ok(e, residual) {
                                    out.push(*e);
                                }
                            });
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("partition scan thread panicked"));
            }
        })
        .expect("crossbeam scope");
        results.concat()
    }

    /// Multi-way hash join over the per-pattern candidate lists, verifying
    /// shared-variable equality and temporal relationships.
    fn join(
        &self,
        candidates: Vec<Option<Vec<Event>>>,
    ) -> Result<(Vec<Tuple>, bool), EngineError> {
        let a = self.a;
        let n = a.patterns.len();
        let nvars = a.vars.len();
        // Join order: smallest candidate list first.
        let mut join_order: Vec<usize> = (0..n).collect();
        join_order.sort_by_key(|&i| {
            (
                candidates[i].as_ref().map(Vec::len).unwrap_or(usize::MAX),
                i,
            )
        });

        let mut tuples: Vec<Tuple> = vec![Tuple {
            events: vec![None; n],
            vars: vec![None; nvars],
        }];
        let mut truncated = false;

        for &i in &join_order {
            let p = &a.patterns[i];
            let events = candidates[i].as_ref().expect("all patterns fetched");
            // Vars of this pattern, deduped (subject may equal object).
            let pattern_vars: Vec<usize> = if p.subject == p.object {
                vec![p.subject]
            } else {
                vec![p.subject, p.object]
            };
            let mut next: Vec<Tuple> = Vec::new();
            // Index events by the entity ids of vars that are already bound
            // in at least one tuple. For simplicity (and since tuples at a
            // given step share the same bound-var set), use the first tuple
            // as the prototype.
            let proto_bound: Vec<usize> = pattern_vars
                .iter()
                .copied()
                .filter(|&v| tuples.first().map(|t| t.vars[v].is_some()).unwrap_or(false))
                .collect();
            let mut index: HashMap<Vec<EntityId>, Vec<&Event>> = HashMap::new();
            for e in events {
                if p.subject == p.object && e.subject != e.object {
                    continue;
                }
                let key: Vec<EntityId> = proto_bound
                    .iter()
                    .map(|&v| if v == p.subject { e.subject } else { e.object })
                    .collect();
                index.entry(key).or_default().push(e);
            }
            'tuples: for t in &tuples {
                let key: Vec<EntityId> = proto_bound
                    .iter()
                    .map(|&v| t.vars[v].expect("prototype bound var"))
                    .collect();
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                for e in matches {
                    if !self.temporal_ok(i, e, t) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.events[i] = Some(**e);
                    nt.vars[p.subject] = Some(e.subject);
                    nt.vars[p.object] = Some(e.object);
                    next.push(nt);
                    if next.len() >= self.config.max_intermediate {
                        truncated = true;
                        break 'tuples;
                    }
                }
            }
            tuples = next;
            if tuples.is_empty() {
                return Ok((tuples, truncated));
            }
        }
        Ok((tuples, truncated))
    }

    /// Verifies every temporal relationship between pattern `i`'s candidate
    /// event and the events already placed in the tuple.
    fn temporal_ok(&self, i: usize, e: &Event, t: &Tuple) -> bool {
        for rel in &self.a.temporal {
            let (l, r, bound, is_before) = match &rel.op {
                TemporalOp::Before(b) => (rel.left, rel.right, b, true),
                TemporalOp::After(b) => (rel.right, rel.left, b, true),
                // (after is before with sides swapped)
            };
            let _ = is_before;
            let (left_event, right_event) = if l == i && t.events[r].is_some() {
                (*e, t.events[r].expect("checked"))
            } else if r == i && t.events[l].is_some() {
                (t.events[l].expect("checked"), *e)
            } else {
                continue;
            };
            if left_event.end_time > right_event.start_time {
                return false;
            }
            if let Some(b) = bound {
                if (right_event.start_time - left_event.end_time) > *b {
                    return false;
                }
            }
        }
        true
    }
}

/// Checks the residual global predicates against one event.
pub fn residual_ok(e: &Event, residual: &[(String, CmpOp, Value)]) -> bool {
    residual.iter().all(|(attr, op, value)| {
        let Ok(actual) = e.get(attr) else {
            return false;
        };
        let bin = match op {
            CmpOp::Eq => aiql_lang::BinOp::Eq,
            CmpOp::Ne => aiql_lang::BinOp::Ne,
            CmpOp::Lt => aiql_lang::BinOp::Lt,
            CmpOp::Le => aiql_lang::BinOp::Le,
            CmpOp::Gt => aiql_lang::BinOp::Gt,
            CmpOp::Ge => aiql_lang::BinOp::Ge,
        };
        eval::apply_binop(bin, actual, *value).truthy()
    })
}

/// Builds the row context for one tuple.
fn tuple_ctx<'a>(a: &'a AnalyzedMultievent, t: &Tuple) -> RowCtx<'a> {
    let mut ctx = RowCtx::default();
    for (vi, var) in a.vars.iter().enumerate() {
        if let Some(id) = t.vars[vi] {
            ctx.var_entity.insert(var.name.as_str(), id);
        }
    }
    for (pi, p) in a.patterns.iter().enumerate() {
        if let Some(e) = t.events[pi] {
            ctx.events.insert(p.name.as_str(), e);
        }
    }
    ctx
}

/// Aggregate accumulator.
#[derive(Debug, Clone, Default)]
struct AggAcc {
    count: u64,
    sum: f64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    fn new() -> Self {
        AggAcc {
            all_int: true,
            ..Default::default()
        }
    }

    fn add(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        if !matches!(v, Value::Int(_)) {
            self.all_int = false;
        }
        self.min = Some(match self.min {
            Some(m) if eval::cmp_values(&m, &v).is_le() => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if eval::cmp_values(&m, &v).is_ge() => m,
            _ => v,
        });
    }

    fn finalize(&self, func: aiql_lang::AggFunc) -> Value {
        use aiql_lang::AggFunc::*;
        match func {
            Count => Value::Int(self.count as i64),
            Sum => {
                if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            Min => self.min.unwrap_or(Value::Null),
            Max => self.max.unwrap_or(Value::Null),
        }
    }
}

/// Collects every aggregate node appearing in the return items and having
/// clause.
pub(crate) fn collect_aggs(a: &AnalyzedMultievent) -> Vec<(String, aiql_lang::AggFunc, Expr)> {
    let mut out: Vec<(String, aiql_lang::AggFunc, Expr)> = Vec::new();
    let mut visit = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::Agg { func, arg } = node {
                let key = agg_key(node);
                if !out.iter().any(|(k, _, _)| k == &key) {
                    out.push((key, *func, (**arg).clone()));
                }
            }
        });
    };
    for item in &a.ret.items {
        visit(&item.expr);
    }
    if let Some(h) = &a.having {
        visit(h);
    }
    out
}

/// Column header for a return item.
fn column_name(item: &aiql_lang::ReturnItem) -> String {
    item.alias
        .clone()
        .unwrap_or_else(|| aiql_lang::pretty::print_expr(&item.expr))
}

/// Projects joined tuples into the final result table (aggregation,
/// having, distinct, order by, limit).
pub fn project(
    store: &EventStore,
    a: &AnalyzedMultievent,
    tuples: &[Tuple],
) -> Result<ResultTable, EngineError> {
    let columns: Vec<String> = a.ret.items.iter().map(column_name).collect();
    let mut table = ResultTable::new(columns);
    let aggs = collect_aggs(a);
    let aggregated = !aggs.is_empty() || !a.group_by.is_empty();

    let mut rows: Vec<Vec<Value>> = Vec::new();
    if !aggregated {
        for t in tuples {
            let ctx = tuple_ctx(a, t);
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                row.push(eval::eval(&item.expr, store, &ctx)?);
            }
            if let Some(h) = &a.having {
                // having without aggregation degenerates to a row filter.
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    } else {
        // Group tuples.
        struct Group {
            rep: usize,
            accs: Vec<AggAcc>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        let mut group_order: Vec<String> = Vec::new();
        for (ti, t) in tuples.iter().enumerate() {
            let ctx = tuple_ctx(a, t);
            let mut key_vals = Vec::with_capacity(a.group_by.len());
            for g in &a.group_by {
                key_vals.push(eval::eval(g, store, &ctx)?);
            }
            let key = ResultTable::row_key(&key_vals);
            let group = match groups.get_mut(&key) {
                Some(g) => g,
                None => {
                    group_order.push(key.clone());
                    groups.entry(key).or_insert(Group {
                        rep: ti,
                        accs: aggs.iter().map(|_| AggAcc::new()).collect(),
                    })
                }
            };
            for ((_, _, arg), acc) in aggs.iter().zip(group.accs.iter_mut()) {
                acc.add(eval::eval(arg, store, &ctx)?);
            }
        }
        for key in &group_order {
            let group = &groups[key];
            let mut ctx = tuple_ctx(a, &tuples[group.rep]);
            for ((k, func, _), acc) in aggs.iter().zip(group.accs.iter()) {
                ctx.agg_values.insert(k.clone(), acc.finalize(*func));
            }
            // Alias environment (items may be referenced by alias in having).
            let mut row = Vec::with_capacity(a.ret.items.len());
            for item in &a.ret.items {
                let v = eval::eval(&item.expr, store, &ctx)?;
                if let Some(alias) = &item.alias {
                    ctx.aliases.insert(alias.clone(), v);
                }
                row.push(v);
            }
            if let Some(h) = &a.having {
                if !eval::eval(h, store, &ctx)?.truthy() {
                    continue;
                }
            }
            rows.push(row);
        }
    }

    if a.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(ResultTable::row_key(r)));
    }

    if !a.order_by.is_empty() {
        // Each order key must correspond to an output column.
        let mut key_cols = Vec::with_capacity(a.order_by.len());
        for o in &a.order_by {
            let idx = a
                .ret
                .items
                .iter()
                .position(|item| {
                    item.expr == o.expr
                        || matches!(
                            (&o.expr, &item.alias),
                            (Expr::Ref { var, attr: None }, Some(alias)) if var == alias
                        )
                })
                .ok_or_else(|| {
                    EngineError::Analysis(
                        "order by must reference a returned column or alias".into(),
                    )
                })?;
            key_cols.push((idx, o.dir));
        }
        rows.sort_by(|x, y| {
            for (idx, dir) in &key_cols {
                let ord = eval::cmp_values(&x[*idx], &y[*idx]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = a.limit {
        rows.truncate(limit as usize);
    }
    table.rows = rows;
    Ok(table)
}
