//! Multievent query execution: the driver over the physical operator
//! pipeline ([`crate::op`]).
//!
//! The executor assembles the operator tree the scheduler planned —
//! `SemiJoinNarrow → PatternScan` per pattern in schedule order, feeding
//! `TemporalJoin`, closed by `Project`/`Aggregate` — and executes it
//! post-order, timing every operator into [`ExecStats::ops`]. All data
//! movement lives in the operators; this module only prepares the shared
//! phase (plan context, partition table, pool handle) and adapts the
//! pipeline's outputs to the public API.
//!
//! Two data paths exist, selected by `EngineConfig::late_materialization`:
//!
//! * **Late materialization** (default): candidate lists, binding
//!   propagation, and the multi-way join carry [`EventRef`]s — ⟨partition,
//!   row⟩ pairs resolved against the columnar segments on demand. Full
//!   `Event` structs are built exactly once, for the tuples that survive
//!   the join.
//! * **Materializing** (the seed's path, kept for ablation): every scan
//!   copies events out of the segments and the join clones them through
//!   each intermediate tuple.

use std::sync::Arc;

use crate::analyze::AnalyzedMultievent;
use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::governor::Governor;
use crate::op::{self, ExecEnv, Frontier, PartTable, PipelineState, NO_REF, NO_VAR};
use crate::pool::ScanPool;
use crate::result::ResultTable;
use crate::schedule::{self, PlanCache};

use aiql_model::EntityId;
use aiql_storage::EventStore;

// Public API surface kept stable across the operator-pipeline refactor:
// the baselines and tests reach these through `aiql_engine::exec`.
pub(crate) use crate::op::project::collect_aggs;
pub use crate::op::project::project;
pub use crate::op::scan::residual_ok;
pub use crate::op::{EventRef, ExecStats, OpStat, Tuple};

/// The multievent executor.
pub struct MultieventExec<'a> {
    store: &'a EventStore,
    a: &'a AnalyzedMultievent,
    config: &'a EngineConfig,
    pool: Option<Arc<ScanPool>>,
    plan_cache: Option<Arc<PlanCache>>,
    governor: Option<Arc<Governor>>,
}

impl<'a> MultieventExec<'a> {
    /// Creates an executor over a store.
    pub fn new(store: &'a EventStore, a: &'a AnalyzedMultievent, config: &'a EngineConfig) -> Self {
        MultieventExec {
            store,
            a,
            config,
            pool: None,
            plan_cache: None,
            governor: None,
        }
    }

    /// Attaches a persistent scan pool (parallel scans otherwise spawn
    /// scoped threads per scan, which is the ablation baseline).
    #[must_use]
    pub fn with_pool(mut self, pool: Option<Arc<ScanPool>>) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches a cross-query plan-resolution cache (ignored when
    /// `EngineConfig::plan_cache` is off).
    #[must_use]
    pub fn with_plan_cache(mut self, cache: Option<Arc<PlanCache>>) -> Self {
        self.plan_cache = cache;
        self
    }

    /// Attaches a query governor ([`crate::governor`]). `None` — the
    /// default — executes ungoverned with zero budget-checking overhead.
    #[must_use]
    pub fn with_governor(mut self, governor: Option<Arc<Governor>>) -> Self {
        self.governor = governor;
        self
    }

    /// Builds the execution environment: the compiled shared phase
    /// (resolved vars, base filters, schedule — memoized across queries
    /// when a plan cache is attached) plus the partition address space.
    fn env(&self) -> ExecEnv<'a> {
        let cache = if self.config.plan_cache {
            self.plan_cache.as_deref()
        } else {
            None
        };
        ExecEnv {
            store: self.store,
            a: self.a,
            config: self.config,
            pool: self.pool.clone(),
            ctx: schedule::prepare(self.a, self.store, self.config.prioritize_pruning, cache),
            parts: PartTable::build(self.store),
            governor: self.governor.clone(),
        }
    }

    /// Runs the query to a result table.
    pub fn run(&self) -> Result<ResultTable, EngineError> {
        self.run_with_stats().map(|(table, _)| table)
    }

    /// Runs the query and also returns execution statistics.
    pub fn run_with_stats(&self) -> Result<(ResultTable, ExecStats), EngineError> {
        let env = self.env();
        let tree = op::query_tree(self.a, &env.ctx.plan.order);
        let mut st = PipelineState::new(
            self.a,
            &env.ctx.plan.order,
            self.config.late_materialization,
        );
        tree.execute(&env, &mut st)?;
        let mut table = st
            .table
            .take()
            .ok_or_else(|| op::internal("projection operator left no result table"))?;
        // A sticky governor trip in partial mode means the pipeline stopped
        // early somewhere: surface it as a truncation plus a warning so the
        // caller can tell a budgeted prefix from a complete result.
        if let Some(g) = &self.governor {
            if let Some(t) = g.trip() {
                table.truncated = true;
                table.warnings.push(g.warning(t));
            }
        }
        Ok((table, st.stats))
    }

    /// Finds all joined tuples satisfying the query's pattern constraints.
    ///
    /// Runs the operator tree without its projection root. On the late
    /// path the surviving tuples are materialized here — callers that only
    /// need projection should use [`MultieventExec::run`], which skips
    /// this materialization entirely.
    pub fn match_tuples(&self) -> Result<(Vec<Tuple>, bool, ExecStats), EngineError> {
        let env = self.env();
        let tree = op::join_tree(&env.ctx.plan.order);
        let mut st = PipelineState::new(
            self.a,
            &env.ctx.plan.order,
            self.config.late_materialization,
        );
        tree.execute(&env, &mut st)?;
        let tuples = match st.frontier {
            Frontier::Events(tuples) => tuples,
            Frontier::Refs(arena) => (0..arena.len())
                .map(|ti| Tuple {
                    events: arena
                        .events_of(ti)
                        .iter()
                        .map(|&r| (r != NO_REF).then(|| env.parts.event(r)))
                        .collect(),
                    vars: arena
                        .vars_of(ti)
                        .iter()
                        .map(|&v| (v != NO_VAR).then_some(EntityId(v)))
                        .collect(),
                })
                .collect(),
        };
        let tripped = self.governor.as_ref().is_some_and(|g| g.trip().is_some());
        Ok((tuples, st.truncated || tripped, st.stats))
    }
}
