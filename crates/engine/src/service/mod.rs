//! The multi-tenant query service.
//!
//! Everything below the service executes *one* query well: the engine
//! plans and runs it, the governor (PR 6) stops it at its budget, the
//! shared scan pool survives its panics. This module is the controller
//! above them that lets **many concurrent investigations** share one
//! process without sharing their failures:
//!
//! * [`SessionManager`] — one [`Engine`] per analyst session, so plan
//!   caches and `$name` variable bindings are per-tenant while the scan
//!   executor stays process-wide;
//! * [`DrrScheduler`] — deficit-round-robin over bounded per-session
//!   queues: dispatch order converges to the sessions' weight ratios, so
//!   a chatty tenant fills its own queue instead of starving the rest;
//! * [`AdmissionController`] — a global memory pool carved into per-query
//!   grants that become governor byte budgets; under pressure grants
//!   degrade to `partial_results` mode (truncated prefix + warnings)
//!   instead of failing, and when a queue is full the submit is **shed**
//!   immediately with [`ServiceError::Overloaded`] carrying a
//!   `retry_after_ms` hint for the client's jittered backoff
//!   ([`retry_overloaded`]);
//! * fault containment — a faulted query (worker panic, IO fault, cancel,
//!   deadline) answers only its own caller; dispatchers, the pool, and
//!   every other session keep running (`catch_unwind` backstops even a
//!   non-pool panic as [`EngineError::Internal`]).
//!
//! Enforcement stays at batch boundaries inside the engine — the service
//! only *derives* budgets, it never preempts. Shutdown is a drain: queued
//! requests answer `ShuttingDown`, in-flight queries are cancelled through
//! their governor tokens, and cancellable maintenance (storage compaction)
//! aborts with its partial merges discarded.

mod admission;
mod retry;
mod scheduler;
mod session;

pub use admission::{AdmissionController, MemoryGrant};
pub use retry::{retry_overloaded, retry_overloaded_with, BackoffPolicy};
pub use scheduler::{DrrScheduler, SubmitError, REQUEST_COST};
pub use session::{SessionId, SessionManager};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use aiql_storage::{CompactionReport, SharedStore};

use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use crate::explain::QueryPlan;
use crate::governor::{CancelToken, Clock, ExecBudget};
use crate::result::ResultTable;

/// Service tunables.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatcher threads — the service's concurrency slots. Each runs at
    /// most one query at a time; queries parallelize internally on the
    /// process-wide scan pool. 0 is valid (tests drive dispatch manually).
    pub dispatchers: usize,
    /// Concurrent-session cap.
    pub max_sessions: usize,
    /// Bounded per-session queue depth; a submit beyond it is shed.
    pub session_queue_cap: usize,
    /// Deficit units a weight-1 session earns per scheduler round
    /// ([`REQUEST_COST`] ⇒ weight = dispatches per round).
    pub drr_quantum: u64,
    /// Global memory pool for intermediate query state.
    pub total_memory_bytes: u64,
    /// Full per-query grant (the governor byte budget when unpressured).
    pub per_query_memory_bytes: u64,
    /// Degraded floor grant under memory pressure (`partial_results`).
    pub min_grant_bytes: u64,
    /// Per-query wall-clock deadline in ms; 0 disables.
    pub default_deadline_ms: u64,
    /// Shed hint scale: `retry_after_ms = hint × queue depth`.
    pub retry_hint_ms: u64,
    /// Template for per-session engines.
    pub engine: EngineConfig,
    /// Deadline clock override for deterministic tests.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            dispatchers: 4,
            max_sessions: 1024,
            session_queue_cap: 32,
            drr_quantum: REQUEST_COST,
            total_memory_bytes: 512 << 20,
            per_query_memory_bytes: 64 << 20,
            min_grant_bytes: 8 << 20,
            default_deadline_ms: 30_000,
            retry_hint_ms: 5,
            engine: EngineConfig::default(),
            clock: None,
        }
    }
}

/// Why the service refused or failed a request.
#[derive(Debug)]
pub enum ServiceError {
    /// Shed: the session's queue is full. Come back in `retry_after_ms`
    /// (see [`retry_overloaded`] for the client side).
    Overloaded {
        /// Backoff hint, scaled by the queue depth that caused the shed.
        retry_after_ms: u64,
    },
    /// No such session (never opened, or closed).
    UnknownSession {
        /// The offending id.
        session: u64,
    },
    /// The session registry is at its cap.
    SessionLimit {
        /// The configured cap.
        max: usize,
    },
    /// The service is draining; nothing new is accepted.
    ShuttingDown,
    /// The query itself failed — parse, analysis, budget trip, worker
    /// panic. Scoped to this request; the session stays usable.
    Engine(EngineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            ServiceError::UnknownSession { session } => write!(f, "unknown session {session}"),
            ServiceError::SessionLimit { max } => {
                write!(f, "session limit reached ({max} concurrent sessions)")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// A completed query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The result. In degraded mode this is a prefix-preserving truncated
    /// table whose warnings name the tripped limit.
    pub table: ResultTable,
    /// True when admission downgraded this query to `partial_results`
    /// under memory pressure.
    pub degraded: bool,
    /// Time spent queued before a dispatcher picked the query up.
    pub queue_wait: Duration,
    /// Execution time on the dispatcher.
    pub exec: Duration,
}

/// A submitted query: cancel it, or wait for its result.
#[derive(Debug)]
pub struct QueryTicket {
    cancel: CancelToken,
    rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
}

impl QueryTicket {
    /// Requests cancellation; the query observes it at its next batch
    /// boundary (or before dispatch, if still queued).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The cancellation handle, for cancelling from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks for the result.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }
}

/// Monotonic service counters (atomics; read via [`QueryService::stats`]).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submits received (admitted + shed + unknown-session refusals).
    pub submitted: u64,
    /// Requests accepted into a session queue.
    pub admitted: u64,
    /// Requests refused with [`ServiceError::Overloaded`].
    pub shed: u64,
    /// Queries that returned a result table.
    pub completed: u64,
    /// Admitted queries downgraded to `partial_results` under pressure.
    pub degraded: u64,
    /// Queries that returned an engine error other than `Cancelled`.
    pub failed: u64,
    /// Queries cancelled (before or during execution).
    pub cancelled: u64,
}

/// One queued query.
struct Request {
    text: String,
    engine: Engine,
    cancel: CancelToken,
    reply: mpsc::Sender<Result<QueryResponse, ServiceError>>,
    enqueued: Instant,
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request").field("text", &self.text).finish()
    }
}

#[derive(Debug)]
struct ServiceInner {
    store: SharedStore,
    config: ServiceConfig,
    sessions: SessionManager,
    sched: DrrScheduler<Request>,
    admission: AdmissionController,
    counters: Counters,
    /// Cancel handles of queries currently executing, for prompt drain.
    inflight: Mutex<std::collections::HashMap<u64, CancelToken>>,
    next_req: AtomicU64,
    /// Set once at shutdown; also aborts cancellable maintenance.
    drain: CancelToken,
}

impl ServiceInner {
    fn budget_for(&self, req: &Request, grant: &MemoryGrant) -> ExecBudget {
        let mut budget = ExecBudget::unlimited()
            .with_cancel(req.cancel.clone())
            .with_memory_bytes(grant.bytes)
            .with_partial_results(grant.degraded || self.config.engine.partial_results);
        if self.config.default_deadline_ms > 0 {
            budget = budget.with_deadline(Duration::from_millis(self.config.default_deadline_ms));
        }
        if let Some(clock) = &self.config.clock {
            budget = budget.with_clock(clock.clone());
        }
        budget
    }

    fn retry_hint(&self, queued: usize) -> u64 {
        self.config.retry_hint_ms.max(1) * (queued.max(1) as u64)
    }

    /// Executes one dequeued request end-to-end and answers its caller.
    fn serve(&self, req: Request) {
        let queue_wait = req.enqueued.elapsed();
        if req.cancel.is_cancelled() {
            self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = req
                .reply
                .send(Err(ServiceError::Engine(EngineError::Cancelled)));
            return;
        }
        let grant = match self.admission.acquire() {
            Ok(g) => g,
            Err(_) => {
                let _ = req.reply.send(Err(ServiceError::ShuttingDown));
                return;
            }
        };
        if grant.degraded {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let budget = self.budget_for(&req, &grant);
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(req_id, req.cancel.clone());
        let started = Instant::now();
        // catch_unwind backstops panics that escape the engine outside
        // pooled tasks: the dispatcher must survive any single query.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.store
                .read(|s| req.engine.execute_text_with_budget(s, &req.text, &budget))
        }));
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&req_id);
        self.admission.release(grant);
        let exec = started.elapsed();
        let msg = match outcome {
            Ok(Ok(table)) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                Ok(QueryResponse {
                    table,
                    degraded: grant.degraded,
                    queue_wait,
                    exec,
                })
            }
            Ok(Err(e)) => {
                if matches!(e, EngineError::Cancelled) {
                    self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServiceError::Engine(e))
            }
            Err(panic) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Engine(EngineError::Internal {
                    message: panic_message(panic),
                }))
            }
        };
        let _ = req.reply.send(msg);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The multi-tenant query service. See the module docs for the design.
#[derive(Debug)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Starts a service over a shared store, spawning the configured
    /// dispatcher threads.
    pub fn new(store: SharedStore, config: ServiceConfig) -> Self {
        let dispatchers = config.dispatchers;
        let inner = Arc::new(ServiceInner {
            sessions: SessionManager::new(config.max_sessions),
            sched: DrrScheduler::new(config.drr_quantum, config.session_queue_cap),
            admission: AdmissionController::new(
                config.total_memory_bytes,
                config.per_query_memory_bytes,
                config.min_grant_bytes,
            ),
            counters: Counters::default(),
            inflight: Mutex::new(std::collections::HashMap::new()),
            next_req: AtomicU64::new(0),
            drain: CancelToken::new(),
            store,
            config,
        });
        // Deferred store maintenance (background compaction behind
        // `background_compaction`) runs on the process-wide scan pool and
        // aborts on the service drain token, so shutdown never waits behind
        // a merge.
        inner
            .store
            .set_maintenance(crate::pool::shared(), inner.drain.clone());
        let workers = (0..dispatchers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("aiql-dispatch-{i}"))
                    .spawn(move || {
                        while let Some((_sid, req)) = inner.sched.next() {
                            inner.serve(req);
                        }
                    })
                    .expect("spawn dispatcher thread")
            })
            .collect();
        QueryService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Opens a session with the default engine template and weight 1.
    pub fn create_session(&self) -> Result<SessionId, ServiceError> {
        self.create_session_with(1, self.inner.config.engine.clone())
    }

    /// Opens a session with a fairness weight and a per-session engine
    /// configuration (chaos tests inject faulty configs this way without
    /// touching anyone else's session).
    pub fn create_session_with(
        &self,
        weight: u32,
        engine: EngineConfig,
    ) -> Result<SessionId, ServiceError> {
        if self.inner.drain.is_cancelled() {
            return Err(ServiceError::ShuttingDown);
        }
        let id = self
            .inner
            .sessions
            .create(engine, weight)
            .map_err(|e| ServiceError::SessionLimit { max: e.max })?;
        self.inner.sched.register(id.0, weight);
        Ok(id)
    }

    /// Closes a session: still-queued requests answer `UnknownSession`,
    /// in-flight queries finish on their engine clone.
    pub fn close_session(&self, id: SessionId) -> bool {
        let existed = self.inner.sessions.close(id);
        for req in self.inner.sched.deregister(id.0) {
            let _ = req
                .reply
                .send(Err(ServiceError::UnknownSession { session: id.0 }));
        }
        existed
    }

    /// Binds `$name` to `value` in the session (textual expansion at
    /// submit time). False for an unknown session or a non-identifier
    /// name.
    pub fn bind(&self, id: SessionId, name: &str, value: &str) -> bool {
        self.inner.sessions.bind(id, name, value)
    }

    /// Submits a query; returns a ticket to wait on (or cancel). Sheds
    /// with [`ServiceError::Overloaded`] when the session queue is full.
    pub fn submit(&self, session: SessionId, text: &str) -> Result<QueryTicket, ServiceError> {
        let inner = &self.inner;
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let Some((engine, text)) = inner.sessions.prepare(session, text) else {
            return Err(ServiceError::UnknownSession { session: session.0 });
        };
        let (tx, rx) = mpsc::channel();
        let cancel = CancelToken::new();
        let req = Request {
            text,
            engine,
            cancel: cancel.clone(),
            reply: tx,
            enqueued: Instant::now(),
        };
        match inner.sched.submit(session.0, req) {
            Ok(_depth) => {
                inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(QueryTicket { cancel, rx })
            }
            Err(SubmitError::QueueFull { queued }) => {
                inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    retry_after_ms: inner.retry_hint(queued),
                })
            }
            Err(SubmitError::UnknownSession) => {
                Err(ServiceError::UnknownSession { session: session.0 })
            }
            Err(SubmitError::Shutdown) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Submit + wait: the blocking client call.
    pub fn query(&self, session: SessionId, text: &str) -> Result<QueryResponse, ServiceError> {
        self.submit(session, text)?.wait()
    }

    /// Plans a query without executing it (the EXPLAIN endpoint). Runs
    /// inline — planning is microseconds and needs no admission.
    pub fn explain(&self, session: SessionId, text: &str) -> Result<QueryPlan, ServiceError> {
        let Some((engine, text)) = self.inner.sessions.prepare(session, text) else {
            return Err(ServiceError::UnknownSession { session: session.0 });
        };
        let query = aiql_lang::parse_query(&text).map_err(EngineError::from)?;
        self.inner
            .store
            .read(|s| crate::explain::explain(s, &query, engine.config()))
            .map_err(ServiceError::from)
    }

    /// Runs a cancellable storage compaction pass as service maintenance:
    /// a shutdown drain aborts it cleanly with partial merges discarded
    /// and epochs untouched (mapped to `ShuttingDown`). Queries are never
    /// blocked behind the merge — they keep reading the last published
    /// snapshot while the pass rewrites the writer store, and only see the
    /// compacted layout once it publishes.
    pub fn compact_store(&self) -> Result<CompactionReport, ServiceError> {
        self.inner
            .store
            .write(|s| s.compact_with_cancel(&self.inner.drain))
            .map_err(|_| ServiceError::ShuttingDown)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Open sessions.
    pub fn session_count(&self) -> usize {
        self.inner.sessions.count()
    }

    /// Queued (admitted, not yet dispatched) requests.
    pub fn queued(&self) -> usize {
        self.inner.sched.queued()
    }

    /// Dispatches one queued request on the calling thread — lets tests
    /// with `dispatchers: 0` drive the service deterministically. Returns
    /// whether anything was dispatched.
    pub fn dispatch_one(&self) -> bool {
        match self.inner.sched.try_next() {
            Some((_sid, req)) => {
                self.inner.serve(req);
                true
            }
            None => false,
        }
    }

    /// Drains the service: sheds the queue with `ShuttingDown`, cancels
    /// in-flight queries through their governor tokens, aborts cancellable
    /// maintenance, and joins the dispatchers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.drain.cancel();
        for token in self
            .inner
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            token.cancel();
        }
        for (_sid, req) in self.inner.sched.shutdown() {
            let _ = req.reply.send(Err(ServiceError::ShuttingDown));
        }
        self.inner.admission.close();
        let workers: Vec<_> = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{AgentId, Operation, Timestamp};
    use aiql_storage::{EntitySpec, EventStore, RawEvent, SharedStore, StoreConfig};

    /// ~60 events over 3 agents: enough rows for multievent joins without
    /// slowing the suite down.
    fn tiny_store() -> SharedStore {
        let mut store = EventStore::new(StoreConfig {
            dedup: false,
            ..StoreConfig::default()
        });
        let raws: Vec<RawEvent> = (0..60u64)
            .map(|i| {
                RawEvent::instant(
                    AgentId((i % 3) as u32),
                    if i % 2 == 0 {
                        Operation::Read
                    } else {
                        Operation::Write
                    },
                    EntitySpec::process(100 + (i % 4) as u32, &format!("exe{}.bin", i % 4), "u"),
                    EntitySpec::file(&format!("/data/f{}", i % 5), "u"),
                    Timestamp::from_secs(i as i64),
                    i,
                )
            })
            .collect();
        store.ingest_all(&raws);
        SharedStore::new(store)
    }

    const SIMPLE: &str = "proc p read file f as evt return distinct p, f";

    fn serial_engine_config() -> EngineConfig {
        EngineConfig {
            parallelism: 1,
            ..EngineConfig::default()
        }
    }

    fn small_service(dispatchers: usize) -> QueryService {
        QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn query_through_the_service_matches_a_direct_run() {
        let service = small_service(2);
        let session = service.create_session().unwrap();
        let resp = service.query(session, SIMPLE).unwrap();
        assert!(!resp.degraded);
        let direct = tiny_store().read(|s| {
            Engine::new(serial_engine_config())
                .execute_text(s, SIMPLE)
                .unwrap()
        });
        assert_eq!(resp.table.columns, direct.columns);
        assert_eq!(
            resp.table.rows, direct.rows,
            "service must not alter results"
        );
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.shed, 0);
        service.shutdown();
    }

    #[test]
    fn bindings_parameterize_session_queries() {
        let service = small_service(1);
        let s = service.create_session().unwrap();
        assert!(service.bind(s, "exe", "\"exe2.bin\""));
        let resp = service
            .query(s, "proc p[$exe] read file f as evt return distinct p, f")
            .unwrap();
        assert!(!resp.table.rows.is_empty());
        // The unexpanded text is a parse error — proof expansion happened.
        let raw = service.query(s, "proc p[$nope] read file f as evt return p");
        assert!(matches!(
            raw,
            Err(ServiceError::Engine(EngineError::Parse(_)))
        ));
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        // No dispatchers: the queue can only fill.
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 0,
                session_queue_cap: 2,
                retry_hint_ms: 7,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let s = service.create_session().unwrap();
        let t1 = service.submit(s, SIMPLE).unwrap();
        let _t2 = service.submit(s, SIMPLE).unwrap();
        match service.submit(s, SIMPLE) {
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 14, "hint scales with queue depth");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(service.stats().shed, 1);
        // Draining one admits again — and the result is still correct.
        assert!(service.dispatch_one());
        let resp = t1.wait().unwrap();
        assert!(!resp.table.rows.is_empty());
        assert!(service.submit(s, SIMPLE).is_ok());
    }

    #[test]
    fn memory_pressure_degrades_instead_of_failing() {
        // Pool fits one full grant plus one floor share; the tiny floor
        // grant actually trips on a real query.
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 0,
                total_memory_bytes: (1 << 20) + 64,
                per_query_memory_bytes: 1 << 20,
                min_grant_bytes: 64,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let s = service.create_session().unwrap();
        // Hold the whole pool hostage, then serve a query: admission must
        // degrade it to a floor grant rather than fail or deadlock.
        let hostage = service.inner.admission.acquire().unwrap();
        assert!(!hostage.degraded);
        let ticket = service.submit(s, SIMPLE).unwrap();
        assert!(service.dispatch_one());
        let resp = ticket.wait().unwrap();
        assert!(resp.degraded, "pressure must mark the response degraded");
        assert!(
            !resp.table.warnings.is_empty() || resp.table.truncated,
            "a 1-byte budget trips: the prefix carries a warning"
        );
        assert_eq!(service.stats().degraded, 1);
        service.inner.admission.release(hostage);
        // Pool restored: the next query gets a full grant again.
        let ticket = service.submit(s, SIMPLE).unwrap();
        assert!(service.dispatch_one());
        assert!(!ticket.wait().unwrap().degraded);
    }

    #[test]
    fn cancelled_ticket_answers_without_running() {
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 0,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let s = service.create_session().unwrap();
        let ticket = service.submit(s, SIMPLE).unwrap();
        ticket.cancel();
        assert!(service.dispatch_one());
        assert!(matches!(
            ticket.wait(),
            Err(ServiceError::Engine(EngineError::Cancelled))
        ));
        assert_eq!(service.stats().cancelled, 1);
        assert_eq!(service.stats().completed, 0);
    }

    #[test]
    fn session_lifecycle_errors_are_structured() {
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 0,
                max_sessions: 1,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let s = service.create_session().unwrap();
        assert!(matches!(
            service.create_session(),
            Err(ServiceError::SessionLimit { max: 1 })
        ));
        let queued = service.submit(s, SIMPLE).unwrap();
        assert!(service.close_session(s));
        // The queued request answers instead of vanishing.
        assert!(matches!(
            queued.wait(),
            Err(ServiceError::UnknownSession { .. })
        ));
        assert!(matches!(
            service.query(s, SIMPLE),
            Err(ServiceError::UnknownSession { .. })
        ));
        // Slot freed: a new session opens.
        assert!(service.create_session().is_ok());
    }

    #[test]
    fn a_worker_panic_is_contained_to_its_session() {
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 2,
                ..ServiceConfig::default()
            },
        );
        let healthy = service.create_session().unwrap();
        let faulty = service
            .create_session_with(
                1,
                EngineConfig {
                    parallelism: 2,
                    parallel_threshold: 0,
                    inject_scan_panic: true,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
        let boom = service.query(faulty, SIMPLE);
        assert!(matches!(
            boom,
            Err(ServiceError::Engine(EngineError::WorkerPanic { .. }))
        ));
        // The dispatcher, the pool, and other sessions are unharmed.
        for _ in 0..3 {
            assert!(service.query(healthy, SIMPLE).is_ok());
        }
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn explain_plans_without_executing() {
        let service = small_service(1);
        let s = service.create_session().unwrap();
        let plan = service.explain(s, SIMPLE).unwrap();
        assert!(plan.render().contains("physical operator tree"));
        assert_eq!(service.stats().completed, 0, "explain is not execution");
    }

    #[test]
    fn shutdown_drains_and_answers_everyone() {
        let service = QueryService::new(
            tiny_store(),
            ServiceConfig {
                dispatchers: 0,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let s = service.create_session().unwrap();
        let queued = service.submit(s, SIMPLE).unwrap();
        service.shutdown();
        assert!(matches!(queued.wait(), Err(ServiceError::ShuttingDown)));
        assert!(matches!(
            service.submit(s, SIMPLE),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            service.create_session(),
            Err(ServiceError::ShuttingDown)
        ));
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn maintenance_compaction_is_drain_cancellable() {
        let store = {
            let mut s = EventStore::new(StoreConfig {
                batch_size: 8,
                compaction: false,
                dedup: false,
                ..StoreConfig::default()
            });
            let raws: Vec<RawEvent> = (0..100u64)
                .map(|i| {
                    RawEvent::instant(
                        AgentId(1),
                        Operation::Read,
                        EntitySpec::process(100, "exe.bin", "u"),
                        EntitySpec::file(&format!("/f{}", i % 9), "u"),
                        Timestamp::from_secs(i as i64),
                        1,
                    )
                })
                .collect();
            s.ingest_all(&raws);
            SharedStore::new(s)
        };
        let service = QueryService::new(
            store,
            ServiceConfig {
                dispatchers: 0,
                engine: serial_engine_config(),
                ..ServiceConfig::default()
            },
        );
        let report = service.compact_store().unwrap();
        assert!(report.partitions_compacted > 0);
        service.shutdown();
        // Fragment the store again: a post-drain pass with real merge work
        // must abort cleanly (partial merges discarded, epochs untouched).
        service.inner.store.write(|s| {
            let raws: Vec<RawEvent> = (100..160u64)
                .map(|i| {
                    RawEvent::instant(
                        AgentId(1),
                        Operation::Read,
                        EntitySpec::process(100, "exe.bin", "u"),
                        EntitySpec::file(&format!("/f{}", i % 9), "u"),
                        Timestamp::from_secs(i as i64),
                        1,
                    )
                })
                .collect();
            s.ingest_all(&raws);
        });
        let epoch = service.inner.store.read(|s| s.epoch());
        assert!(matches!(
            service.compact_store(),
            Err(ServiceError::ShuttingDown)
        ));
        assert_eq!(
            service.inner.store.read(|s| s.epoch()),
            epoch,
            "aborted maintenance must not move epochs"
        );
    }
}
