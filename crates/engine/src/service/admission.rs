//! Admission control: a global memory pool carved into per-query grants.
//!
//! The controller owns the service-wide byte budget for intermediate query
//! state. Every admitted query must hold a [`MemoryGrant`] while it runs;
//! the grant's size becomes the query's governor `memory_bytes`, so
//! enforcement stays exactly where PR 6 put it — at batch boundaries
//! inside the engine — and the controller never has to preempt anything.
//!
//! Grant policy (graceful degradation):
//! * pool has a full share free → full grant, error-mode budget;
//! * pool is under pressure but a floor share remains → a **degraded**
//!   grant at the floor size with `partial_results` mode, so the query
//!   returns a truncated prefix with warnings instead of failing;
//! * pool exhausted → the dispatcher waits for a release (admission is
//!   already bounded by the dispatcher count, so the wait is short and
//!   deadlock-free: waiters only exist while other grants are held).

use std::sync::{Condvar, Mutex};

/// A lease on pool memory. Must be handed back via
/// [`AdmissionController::release`]; the service's dispatch loop does this
/// on every path (success, error, panic-caught).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGrant {
    /// Leased bytes — the admitted query's governor byte budget.
    pub bytes: u64,
    /// True when the pool was under pressure and the grant was cut to the
    /// floor share: the query runs in `partial_results` mode.
    pub degraded: bool,
}

/// The pool is draining; no new grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionClosed;

#[derive(Debug)]
struct PoolState {
    available: u64,
    closed: bool,
}

/// The global memory pool + grant policy.
#[derive(Debug)]
pub struct AdmissionController {
    state: Mutex<PoolState>,
    freed: Condvar,
    total: u64,
    full_grant: u64,
    min_grant: u64,
}

impl AdmissionController {
    /// Creates a pool of `total` bytes handing out `full_grant`-byte
    /// leases, degrading to `min_grant`-byte leases under pressure. Grants
    /// are clamped so a lone query can always be admitted.
    pub fn new(total: u64, full_grant: u64, min_grant: u64) -> Self {
        let total = total.max(1);
        let full_grant = full_grant.clamp(1, total);
        AdmissionController {
            state: Mutex::new(PoolState {
                available: total,
                closed: false,
            }),
            freed: Condvar::new(),
            total,
            full_grant,
            min_grant: min_grant.clamp(1, full_grant),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Leases memory for one query, blocking while the pool is exhausted.
    pub fn acquire(&self) -> Result<MemoryGrant, AdmissionClosed> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(AdmissionClosed);
            }
            if st.available >= self.full_grant {
                st.available -= self.full_grant;
                return Ok(MemoryGrant {
                    bytes: self.full_grant,
                    degraded: false,
                });
            }
            if st.available >= self.min_grant {
                st.available -= self.min_grant;
                return Ok(MemoryGrant {
                    bytes: self.min_grant,
                    degraded: true,
                });
            }
            st = self.freed.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns a lease to the pool.
    pub fn release(&self, grant: MemoryGrant) {
        let mut st = self.lock();
        st.available = (st.available + grant.bytes).min(self.total);
        drop(st);
        self.freed.notify_all();
    }

    /// Currently unleased bytes.
    pub fn available(&self) -> u64 {
        self.lock().available
    }

    /// Closes the pool: blocked and future acquires fail with
    /// [`AdmissionClosed`] (releases still work during the drain).
    pub fn close(&self) {
        self.lock().closed = true;
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_then_degraded_then_wait() {
        // Pool fits one full grant plus one floor grant.
        let pool = AdmissionController::new(96, 64, 32);
        let a = pool.acquire().unwrap();
        assert_eq!(
            a,
            MemoryGrant {
                bytes: 64,
                degraded: false
            }
        );
        // Pressure: only 32 left → degraded floor grant, not a failure.
        let b = pool.acquire().unwrap();
        assert_eq!(
            b,
            MemoryGrant {
                bytes: 32,
                degraded: true
            }
        );
        assert_eq!(pool.available(), 0);
        // Exhausted: a third acquire waits until someone releases.
        let pool = Arc::new(pool);
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.acquire().unwrap())
        };
        pool.release(a);
        let c = waiter.join().unwrap();
        assert!(!c.degraded, "released share re-enables full grants");
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.available(), 96);
    }

    #[test]
    fn close_unblocks_waiters() {
        let pool = Arc::new(AdmissionController::new(10, 10, 5));
        let held = pool.acquire().unwrap();
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.acquire())
        };
        pool.close();
        assert_eq!(waiter.join().unwrap(), Err(AdmissionClosed));
        pool.release(held); // release during drain is fine
        assert_eq!(pool.available(), 10);
    }

    #[test]
    fn grants_are_clamped_to_sane_bounds() {
        let pool = AdmissionController::new(8, 100, 200);
        // full_grant clamps to the pool, min_grant to the full grant.
        let g = pool.acquire().unwrap();
        assert_eq!(g.bytes, 8);
        assert!(!g.degraded);
    }
}
